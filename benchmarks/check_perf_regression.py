"""Fail when key benchmark metrics regress versus a committed baseline.

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline baseline.json --current benchmarks/results/BENCH_kernel.json \
        --keys zero_delay_events_per_sec transport_msgs_per_sec \
        --tolerance 0.20

The baseline is typically the committed ``BENCH_kernel.json`` (extracted
in CI via ``git show``); the current file is the one the bench job just
wrote.  All compared keys are higher-is-better rates: the check fails when
``current < (1 - tolerance) * baseline``.  Keys missing from the baseline
are skipped (first run after a metric is introduced); keys missing from
the current run fail.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as handle:
        payload = json.load(handle)
    return payload.get("metrics", payload)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed benchmark JSON (the reference)")
    parser.add_argument("--current", required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--keys", nargs="+", required=True,
                        help="higher-is-better metric keys to compare")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    args = parser.parse_args(argv)

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    failures = []
    for key in args.keys:
        reference = baseline.get(key)
        if reference is None:
            print("perf-check: %s not in baseline, skipping" % key)
            continue
        value = current.get(key)
        if value is None:
            failures.append("%s missing from current results" % key)
            continue
        floor = (1.0 - args.tolerance) * reference
        verdict = "OK" if value >= floor else "REGRESSED"
        print("perf-check: %s  baseline=%.0f  current=%.0f  floor=%.0f  %s"
              % (key, reference, value, floor, verdict))
        if value < floor:
            failures.append(
                "%s regressed: %.0f < %.0f (baseline %.0f, tolerance %d%%)"
                % (key, value, floor, reference, args.tolerance * 100)
            )
    if failures:
        for failure in failures:
            print("perf-check: FAIL - %s" % failure, file=sys.stderr)
        return 1
    print("perf-check: all compared metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
