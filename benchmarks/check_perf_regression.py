"""Fail when key benchmark metrics regress versus a committed baseline.

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline baseline.json --current benchmarks/results/BENCH_kernel.json \
        --keys zero_delay_events_per_sec transport_msgs_per_sec \
        --tolerance 0.20

The baseline is typically the committed ``BENCH_kernel.json`` (extracted
in CI via ``git show``); the current file is the one the bench job just
wrote.  All compared keys are higher-is-better rates: the check fails when
``current < (1 - tolerance) * baseline``.  Keys missing from the baseline
are skipped (first run after a metric is introduced); keys missing from
the current run fail.

``--floor key=value`` adds an *absolute* minimum on top of the relative
gate: unlike the baseline comparison, it cannot drift downward when a
regressed baseline is (re-)committed.  Used to pin hard-won improvements
-- e.g. ``--floor spawn_join_per_sec=90000`` keeps the slim spawn/join
win from ever silently eroding back to the pre-wheel ~68k/s level.

``--ratio NUM/DEN=MAX`` gates a *lower-is-better* relationship between
two metrics of the same current run (no baseline involved): the check
fails when ``current[NUM] > MAX * current[DEN]``.  Used for scaling
laws -- e.g. ``--ratio
bigtopo5000_wall_per_device/bigtopo1000_wall_per_device=1.3`` keeps the
sharded 5000-device run's per-device wall cost within 1.3x the
1000-device figure (near-linear scale-out).
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as handle:
        payload = json.load(handle)
    return payload.get("metrics", payload)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed benchmark JSON (the reference)")
    parser.add_argument("--current", required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--keys", nargs="+", required=True,
                        help="higher-is-better metric keys to compare")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--floor", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="absolute minimum for a metric, independent of "
                             "the baseline (repeatable)")
    parser.add_argument("--ratio", action="append", default=[],
                        metavar="NUM/DEN=MAX",
                        help="lower-is-better ceiling on current[NUM] / "
                             "current[DEN], independent of the baseline "
                             "(repeatable)")
    args = parser.parse_args(argv)

    floors = {}
    for item in args.floor:
        key, _, raw = item.partition("=")
        if not key or not raw:
            parser.error("--floor expects KEY=VALUE, got %r" % item)
        try:
            floors[key] = float(raw)
        except ValueError:
            parser.error("--floor value for %s is not a number: %r"
                         % (key, raw))

    ratios = []
    for item in args.ratio:
        keys, _, raw = item.partition("=")
        numerator, slash, denominator = keys.partition("/")
        if not numerator or not slash or not denominator or not raw:
            parser.error("--ratio expects NUM/DEN=MAX, got %r" % item)
        try:
            ratios.append((numerator, denominator, float(raw)))
        except ValueError:
            parser.error("--ratio ceiling for %s is not a number: %r"
                         % (keys, raw))

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    failures = []
    for key in args.keys:
        reference = baseline.get(key)
        if reference is None:
            print("perf-check: %s not in baseline, skipping" % key)
            continue
        value = current.get(key)
        if value is None:
            failures.append("%s missing from current results" % key)
            continue
        floor = (1.0 - args.tolerance) * reference
        verdict = "OK" if value >= floor else "REGRESSED"
        print("perf-check: %s  baseline=%.0f  current=%.0f  floor=%.0f  %s"
              % (key, reference, value, floor, verdict))
        if value < floor:
            failures.append(
                "%s regressed: %.0f < %.0f (baseline %.0f, tolerance %d%%)"
                % (key, value, floor, reference, args.tolerance * 100)
            )
    for key, minimum in sorted(floors.items()):
        value = current.get(key)
        if value is None:
            failures.append("%s missing from current results (floor %.0f)"
                            % (key, minimum))
            continue
        verdict = "OK" if value >= minimum else "BELOW FLOOR"
        print("perf-check: %s  absolute-floor=%.0f  current=%.0f  %s"
              % (key, minimum, value, verdict))
        if value < minimum:
            failures.append("%s below absolute floor: %.0f < %.0f"
                            % (key, value, minimum))
    for numerator, denominator, maximum in ratios:
        label = "%s/%s" % (numerator, denominator)
        top = current.get(numerator)
        bottom = current.get(denominator)
        if top is None or bottom is None:
            missing = [key for key, value
                       in ((numerator, top), (denominator, bottom))
                       if value is None]
            failures.append("%s missing from current results (ratio gate "
                            "%s<=%.3g)" % (", ".join(missing), label, maximum))
            continue
        if bottom <= 0:
            failures.append("%s denominator is %.3g, cannot gate ratio %s"
                            % (denominator, bottom, label))
            continue
        ratio = top / bottom
        verdict = "OK" if ratio <= maximum else "ABOVE CEILING"
        print("perf-check: %s  ratio=%.3f  ceiling=%.3f  "
              "(num=%.4g den=%.4g)  %s"
              % (label, ratio, maximum, top, bottom, verdict))
        if ratio > maximum:
            failures.append(
                "%s ratio above ceiling: %.3f > %.3f (scaling is no longer "
                "near-linear)" % (label, ratio, maximum)
            )
    if failures:
        for failure in failures:
            print("perf-check: FAIL - %s" % failure, file=sys.stderr)
        return 1
    print("perf-check: all compared metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
