"""Fail when the telemetry flight recorder costs more than it should.

Usage::

    python benchmarks/check_telemetry_overhead.py \
        --results benchmarks/results/BENCH_kernel.json --tolerance 0.10

Telemetry is designed to be pay-for-what-you-trace: attaching the session
recorder (profiler off) must leave the kernel hot loop and the end-to-end
Figure-6c run within ``tolerance`` of the telemetry-free measurements from
the same bench run.  Two comparisons, both from one ``BENCH_kernel.json``
so machine speed cancels out:

* ``zero_delay_telemetry_events_per_sec`` vs ``zero_delay_events_per_sec``
  (higher-is-better rate: the with-telemetry rate must stay above
  ``(1 - tolerance) * without``);
* ``figure6c_telemetry_wall_seconds`` vs ``figure6c_wall_seconds``
  (lower-is-better time: the with-telemetry time must stay below
  ``(1 + tolerance) * without``).
"""

import argparse
import json
import sys

#: (with-telemetry key, baseline key, True when higher is better)
COMPARISONS = (
    ("zero_delay_telemetry_events_per_sec",
     "zero_delay_events_per_sec", True),
    ("figure6c_telemetry_wall_seconds",
     "figure6c_wall_seconds", False),
)


def load_metrics(path):
    with open(path) as handle:
        payload = json.load(handle)
    return payload.get("metrics", payload)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", required=True,
                        help="benchmark JSON holding both measurements")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional overhead (default 0.10)")
    args = parser.parse_args(argv)

    metrics = load_metrics(args.results)
    failures = []
    for telemetry_key, baseline_key, higher_is_better in COMPARISONS:
        telemetry_value = metrics.get(telemetry_key)
        baseline_value = metrics.get(baseline_key)
        if telemetry_value is None or baseline_value is None:
            failures.append("missing %s or %s in %s"
                            % (telemetry_key, baseline_key, args.results))
            continue
        if higher_is_better:
            limit = (1.0 - args.tolerance) * baseline_value
            passed = telemetry_value >= limit
        else:
            limit = (1.0 + args.tolerance) * baseline_value
            passed = telemetry_value <= limit
        print("telemetry-overhead: %s=%.4g vs %s=%.4g  limit=%.4g  %s"
              % (telemetry_key, telemetry_value, baseline_key,
                 baseline_value, limit, "OK" if passed else "TOO SLOW"))
        if not passed:
            failures.append(
                "%s (%.4g) exceeds %d%% overhead vs %s (%.4g)"
                % (telemetry_key, telemetry_value, args.tolerance * 100,
                   baseline_key, baseline_value)
            )
    if failures:
        for failure in failures:
            print("telemetry-overhead: FAIL - %s" % failure, file=sys.stderr)
        return 1
    print("telemetry-overhead: recorder cost within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
