"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's evaluation artifacts (or an
extension experiment from DESIGN.md's per-experiment index) and:

* asserts the qualitative claim it reproduces (so a silent regression
  fails the suite), and
* renders the paper-style table both to stdout and to
  ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = "\n===== %s =====\n" % name
    print(banner + text)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1,
        )

    return runner
