"""Profile the bigtopo ``requests_per_type=50`` config (ROADMAP item 1).

Runs the 500-device scaling scenario with the kernel profiler on and
writes the per-callback hot-spot summary to
``benchmarks/results/PROFILE_bigtopo_rpt50.{txt,json}`` -- the scoping
evidence for the collector/analyzer sharding work (ROADMAP item 1).

Measured outcome (recorded in the results files): the config completes at
makespan 762.5 sim-seconds, far inside the 8000 sim-second timeout, and
the makespan is device-count invariant -- only *wall* time grows with the
topology (7.9s at 500 devices, 17.2s at 1000, 36.4s at 2000).  The cost
lives in ``Simulator._step`` (agent behaviour bodies), not queue ops, so
sharding scoping should target wall-clock at devices>=5000 rather than a
sim-time saturation point.

Usage::

    PYTHONPATH=src python benchmarks/profile_bigtopo.py \\
        [--devices 500] [--rpt 50] [--shards 1]

With the default ``--devices 500`` the results keep their historical
``PROFILE_bigtopo_rpt50`` name; any other device count writes
``PROFILE_bigtopo_d{N}.{txt,json}`` so profiles at several sizes can sit
side by side.
"""

import argparse
import json
import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

DEFAULT_DEVICES = 500
COLLECTORS = 16
ANALYZERS = 14
TIMEOUT = 8000.0
SEED = 42


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=DEFAULT_DEVICES,
                        help="managed-device count (default %d)"
                             % DEFAULT_DEVICES)
    parser.add_argument("--rpt", "--requests", dest="requests", type=int,
                        default=50,
                        help="requests per type (default 50, the config "
                             "that misses the timeout)")
    parser.add_argument("--shards", type=int, default=1,
                        help="classifier/storage shards (default 1; the "
                             "5000-device profile wants 8)")
    args = parser.parse_args()

    from repro.evaluation.experiments import run_scenario_on_grid
    from repro.workloads.scenarios import scaling_scenario

    scenario = scaling_scenario(args.devices, args.requests)
    start = time.perf_counter()
    result = run_scenario_on_grid(
        scenario, seed=SEED, timeout=TIMEOUT,
        collector_count=COLLECTORS, analyzer_count=ANALYZERS,
        dataset_threshold=scenario.total_requests,
        telemetry={"profile": True},
        shards=args.shards,
    )
    wall = time.perf_counter() - start
    system = result.system
    profiler = system.telemetry.profiler
    rows = profiler.top(limit=25)
    total_wall = sum(total for _, total in profiler.stats.values())

    records = result.records_analyzed
    header = (
        "bigtopo profile: devices=%d requests_per_type=%d shards=%d "
        "seed=%d\n"
        "completed=%s  makespan=%.1f sim-s (timeout %.0f)  wall=%.1fs\n"
        "records analyzed: %d of %d requested\n"
        "callback total: %.2fs across %d distinct callbacks\n"
        % (args.devices, args.requests, args.shards, SEED, result.completed,
           result.makespan, TIMEOUT, wall, records, scenario.total_requests,
           total_wall, len(profiler.stats))
    )
    lines = [header, "%-55s %10s %10s %8s" %
             ("callback", "events", "total s", "share")]
    for name, count, total in rows:
        share = total / total_wall if total_wall else 0.0
        lines.append("%-55s %10d %10.3f %7.1f%%" %
                     (name, count, total, 100.0 * share))
    text = "\n".join(lines) + "\n"
    print(text)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    if args.devices == DEFAULT_DEVICES:
        stem = "PROFILE_bigtopo_rpt50"  # historical name, other tools read it
    else:
        stem = "PROFILE_bigtopo_d%d" % args.devices
    txt_path = os.path.join(RESULTS_DIR, stem + ".txt")
    with open(txt_path, "w") as handle:
        handle.write(text)
    json_path = os.path.join(RESULTS_DIR, stem + ".json")
    with open(json_path, "w") as handle:
        json.dump({
            "devices": args.devices,
            "shards": args.shards,
            "requests_per_type": args.requests,
            "seed": SEED,
            "completed": result.completed,
            "makespan_sim_seconds": result.makespan,
            "timeout_sim_seconds": TIMEOUT,
            "wall_seconds": wall,
            "records_analyzed": records,
            "records_requested": scenario.total_requests,
            "hotspots": [
                {"callback": name, "events": count, "total_seconds": total}
                for name, count, total in rows
            ],
        }, handle, indent=1)
    print("written: %s and %s" % (txt_path, json_path))


if __name__ == "__main__":
    main()
