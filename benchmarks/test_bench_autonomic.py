"""X11 -- Autonomic mobility balancing; X12 -- storage replication.

Both close the paper's future-work items with measurements:

* X11: jobs pile on a weak analyzer host (round-robin over one registered
  container); the :class:`MobilityBalancer` notices the pressure gap and
  migrates the analyzer to the idle fast host, without any driver help.
* X12: asynchronous replication mirrors the primary store; the bench
  quantifies its overhead (replica CPU/disk/NIC) and proves fetch failover
  keeps analysis running after the primary storage agent dies.
"""

from repro.core.autonomic import MobilityBalancer
from repro.core.replication import ReplicationService, attach_failover
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.baselines.centralized import default_devices
from repro.evaluation.tables import format_table

from conftest import emit


def _slow_analyzer_spec(seed):
    return GridTopologySpec(
        devices=default_devices(3),
        collector_hosts=[HostSpec("col1")],
        analysis_hosts=[HostSpec("slow-host", cpu_capacity=2.0)],
        storage_host=HostSpec("stor"),
        interface_host=HostSpec("iface"),
        seed=seed,
        dataset_threshold=10,
        job_timeout=10.0,
    )


def _run_autonomic(balance):
    system = GridManagementSystem(_slow_analyzer_spec(seed=23))
    fast_host = system.network.add_host("fast-host", "site1",
                                        role="analysis", cpu_capacity=20.0)
    fast_container = system.platform.create_container(
        "fast-container", fast_host, services=("analysis",))
    balancer = None
    if balance:
        balancer = MobilityBalancer(
            system.platform,
            [system.analysis_containers[0], fast_container],
            period=10.0, imbalance_threshold=5.0,
        )
    system.assign_goals(system.make_paper_goals(polls_per_type=10))
    completed = system.run_until_records(30, timeout=8000)
    system.stop_devices()
    return {
        "completed": completed,
        "makespan": max(r.generated_at for r in system.interface.reports),
        "records": sum(r.records_analyzed for r in system.interface.reports),
        "migrations": balancer.migrations if balancer else 0,
        "fast_cpu": fast_host.cpu.total_units,
    }


def test_autonomic_balancing(once):
    def run_both():
        return _run_autonomic(balance=False), _run_autonomic(balance=True)

    static, balanced = once(run_both)
    emit("autonomic_balancing", format_table(
        ("run", "records", "makespan (s)", "migrations",
         "fast-host CPU units"),
        [
            ("static (slow host only)", static["records"],
             "%.1f" % static["makespan"], 0, "%.0f" % static["fast_cpu"]),
            ("autonomic balancer", balanced["records"],
             "%.1f" % balanced["makespan"], balanced["migrations"],
             "%.0f" % balanced["fast_cpu"]),
        ],
        title="X11: mobility balancer vs static placement (2 vs 20 "
              "units/s hosts)",
    ))
    assert static["completed"] and balanced["completed"]
    assert balanced["migrations"] >= 1
    assert balanced["fast_cpu"] > 0          # work genuinely moved
    assert balanced["makespan"] < 0.9 * static["makespan"]


def test_replication_and_failover(once):
    def run():
        spec = GridTopologySpec(
            devices=default_devices(2),
            collector_hosts=[HostSpec("col1")],
            analysis_hosts=[HostSpec("inf1")],
            storage_host=HostSpec("stor"),
            interface_host=HostSpec("iface"),
            seed=29,
            dataset_threshold=6,
        )
        system = GridManagementSystem(spec)
        replica_host = system.network.add_host(
            "stor-replica", "site1", role="storage")
        service = ReplicationService(system, replica_host, lag=0.2)
        for analyzer in system.analyzers:
            attach_failover(analyzer, service.failover_storage_host(),
                            fetch_timeout=10.0)
        system.sim.schedule(
            20.0,
            lambda: system.storage_container.remove(system.storage_agent))
        system.assign_goals(system.make_paper_goals(polls_per_type=4))
        completed = system.run_until_records(12, timeout=4000)
        system.stop_devices()
        return {
            "completed": completed,
            "records": sum(r.records_analyzed
                           for r in system.interface.reports),
            "replicated": service.records_replicated,
            "failovers": sum(a.fetch_failovers for a in system.analyzers),
            "replica_fetches": service.replica_store.fetches_served,
            "replica_disk": replica_host.disk.total_units,
            "replica_nic": replica_host.nic.total_units,
        }

    result = once(run)
    emit("replication_failover", format_table(
        ("metric", "value"),
        [
            ("workload completed", result["completed"]),
            ("records analyzed", result["records"]),
            ("records replicated", result["replicated"]),
            ("fetch failovers", result["failovers"]),
            ("fetches served by replica", result["replica_fetches"]),
            ("replica disk units (overhead)", "%.0f" % result["replica_disk"]),
            ("replica NIC units (overhead)", "%.1f" % result["replica_nic"]),
        ],
        title="X12: async replication + fetch failover "
              "(primary storage agent killed @20s)",
    ))
    assert result["completed"]
    assert result["records"] == 12
    assert result["replicated"] == 12
    assert result["failovers"] > 0
    assert result["replica_fetches"] > 0
    assert result["replica_disk"] > 0
