"""X6 -- Classifier clustering strategies vs. analysis distribution.

Section 3.2: the classifier's data-clustering is "precisely" what lets
analysis be divided without loss of meaning.  The strategy determines the
job granularity the processor grid can spread: by-group yields 3 clusters,
by-device yields one per device, by-site collapses everything at one site.
More clusters = finer placement, at the price of more jobs/messages.
"""

from repro.core.system import GridManagementSystem
from repro.evaluation.experiments import _grid_spec_for
from repro.evaluation.tables import format_table
from repro.simkernel.resources import ResourceKind
from repro.workloads.scenarios import scaling_scenario

from conftest import emit

STRATEGIES = ("by-group", "by-device", "by-site")


def _run(strategy):
    scenario = scaling_scenario(6, 6)  # 6 devices, 18 requests
    spec = _grid_spec_for(
        scenario, seed=21, cluster_strategy=strategy, analyzer_count=3,
        dataset_threshold=scenario.total_requests,
    )
    system = GridManagementSystem(spec)
    system.assign_goals(system.make_paper_goals(polls_per_type=6))
    completed = system.run_until_records(18, timeout=6000)
    report = system.utilization_report(strategy)
    analysis_rows = [row for row in report if row.role == "analysis"]
    cluster_jobs = [
        job for job in system.root.jobs.values() if job.level < 3
    ]
    return {
        "strategy": strategy,
        "completed": completed,
        "jobs": len(cluster_jobs),
        "busy_analyzers": sum(1 for row in analysis_rows
                              if row.cpu_units > 0),
        "balance": report.balance_index(ResourceKind.CPU),
        "makespan": max(r.generated_at for r in system.interface.reports),
        "records": sum(r.records_analyzed for r in system.interface.reports),
    }


def test_classifier_strategies(once):
    rows = once(lambda: [_run(strategy) for strategy in STRATEGIES])
    emit("classifier_clustering", format_table(
        ("strategy", "cluster jobs", "busy analyzers", "balance",
         "makespan (s)"),
        [
            (row["strategy"], row["jobs"], row["busy_analyzers"],
             "%.2f" % row["balance"], "%.1f" % row["makespan"])
            for row in rows
        ],
        title="X6: clustering strategy vs. analysis distribution "
              "(6 devices, 3 analyzers)",
    ))
    by_strategy = {row["strategy"]: row for row in rows}
    assert all(row["completed"] for row in rows)
    assert all(row["records"] == 18 for row in rows)
    # job granularity: one per metric group / device / site
    assert by_strategy["by-group"]["jobs"] == 3
    assert by_strategy["by-device"]["jobs"] == 6
    assert by_strategy["by-site"]["jobs"] == 1
    # a single cluster cannot use more than one analyzer
    assert by_strategy["by-site"]["busy_analyzers"] == 1
    # finer clustering engages at least as many analyzers
    assert by_strategy["by-device"]["busy_analyzers"] >= \
        by_strategy["by-site"]["busy_analyzers"]
