"""X1 -- Crossover: where does the agent grid start paying off?

Paper, section 4: "the utilization of agent grids appears to be most
attractive when the volume of information to be analyzed on the network is
relatively large.  In less busy environments, traditional approaches [...]
still prove to be more cost-effective" -- and finding the exact point is
listed as future work.  This bench sweeps the request volume and reports
the makespan winner at each point.
"""

from repro.evaluation.experiments import crossover_experiment
from repro.evaluation.tables import format_table
from repro.workloads.scenarios import crossover_scenarios

from conftest import emit

POINTS = (1, 2, 5, 10, 20)


def test_crossover(once):
    scenarios = crossover_scenarios(points=POINTS)
    rows = once(crossover_experiment, scenarios, seed=7)
    table_rows = [
        (
            row["requests_per_type"],
            "%.1f" % row["makespans"]["centralized"],
            "%.1f" % row["makespans"]["multiagent"],
            "%.1f" % row["makespans"]["grid"],
            row["winner"],
        )
        for row in rows
    ]
    emit("crossover", format_table(
        ("req/type", "centralized (s)", "multiagent (s)", "grid (s)",
         "winner"),
        table_rows,
        title="X1: makespan vs workload volume (crossover sweep)",
    ))
    # At tiny volume the grid's coordination overhead must not win by much
    # (or at all); at the paper's volume and beyond, the grid must win.
    smallest, largest = rows[0], rows[-1]
    assert largest["winner"] == "grid"
    paper_point = next(r for r in rows if r["requests_per_type"] == 10)
    assert paper_point["winner"] == "grid"
    # grid advantage grows with volume
    def grid_advantage(row):
        return row["makespans"]["centralized"] - row["makespans"]["grid"]

    assert grid_advantage(largest) > grid_advantage(smallest)
    # bottleneck relief also grows with volume
    assert largest["max_cpu_units"]["centralized"] > \
        2 * largest["max_cpu_units"]["grid"]
