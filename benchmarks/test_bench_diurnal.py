"""X13 -- Diurnal load: absorbing the busy-hours peak.

Monitoring load is not flat: most collection lands in business hours.  The
bench compresses a day's requests (70% inside the peak half of a 300 s
"day") and compares how fast the multi-agent baseline and the grid *drain*
the backlog after the day ends -- the bottleneck host of the centralized
analysis keeps paying long after the peak, while the grid's distributed
analyzers track the load.
"""

from repro.baselines.multiagent import multiagent_spec
from repro.core.system import GridManagementSystem, GridTopologySpec
from repro.evaluation.tables import format_table
from repro.workloads.generator import RequestMix, WorkloadGenerator

from conftest import emit

DAY = 300.0
MIX = RequestMix(20, 20, 20)


def _run(spec, label):
    system = GridManagementSystem(spec)
    generator = WorkloadGenerator(seed=19)
    goals = generator.diurnal_goals(
        MIX, sorted(system.devices), day_length=DAY, peak_fraction=0.7,
    )
    system.assign_goals(goals)
    completed = system.run_until_records(MIX.total, timeout=8000)
    system.stop_devices()
    makespan = max(r.generated_at for r in system.interface.reports)
    return {
        "label": label,
        "completed": completed,
        "makespan": makespan,
        "drain": max(0.0, makespan - DAY),
        "records": sum(r.records_analyzed for r in system.interface.reports),
    }


def test_diurnal_peak_absorption(once):
    def run_both():
        grid = _run(
            GridTopologySpec.paper_figure6c(seed=19, dataset_threshold=10),
            "grid",
        )
        multi = _run(
            multiagent_spec(seed=19, dataset_threshold=10),
            "multiagent",
        )
        return grid, multi

    grid, multi = once(run_both)
    emit("diurnal", format_table(
        ("architecture", "records", "makespan (s)",
         "drain after day end (s)"),
        [
            (row["label"], row["records"], "%.1f" % row["makespan"],
             "%.1f" % row["drain"])
            for row in (multi, grid)
        ],
        title="X13: 60 requests in a %.0fs day, 70%% inside the peak" % DAY,
    ))
    assert grid["completed"] and multi["completed"]
    assert grid["records"] == multi["records"] == MIX.total
    # the grid drains the peak backlog sooner than the centralized-analysis
    # baseline
    assert grid["makespan"] < multi["makespan"]
