"""X4 -- Fault tolerance: kill an analysis container mid-run.

Section 3.3 lists fault tolerance among the processor grid's problems; the
root's job-timeout / re-dispatch machinery is the answer.  The bench kills
the container holding in-flight jobs and asserts the workload still
completes (on the survivor), quantifying the makespan penalty.
"""

from repro.core.system import GridManagementSystem
from repro.evaluation.experiments import _grid_spec_for
from repro.evaluation.tables import format_table
from repro.workloads.faults import FaultEvent, FaultPlan, apply_fault_plan
from repro.workloads.scenarios import paper_scenario

from conftest import emit

KILL_AT = 30.0
THRESHOLD = 5


def _run(kill_container):
    scenario = paper_scenario()
    spec = _grid_spec_for(
        scenario, seed=3, dataset_threshold=THRESHOLD, analyzer_count=2,
        job_timeout=15.0, policy="round-robin",
    )
    system = GridManagementSystem(spec)
    system.assign_goals(system.make_paper_goals(polls_per_type=10))
    if kill_container:
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=KILL_AT, kind="container_down",
                       target="analysis-1"),
        ]))
    completed = system.run_until_records(30, timeout=6000)
    return {
        "completed": completed,
        "makespan": max(r.generated_at for r in system.interface.reports),
        "records": sum(r.records_analyzed for r in system.interface.reports),
        "redispatched": system.root.jobs_redispatched,
        "abandoned": system.root.jobs_abandoned,
        "survivor_jobs": system.analyzers[1].jobs_completed,
    }


def test_fault_tolerance(once):
    def run_both():
        return _run(kill_container=False), _run(kill_container=True)

    healthy, faulty = once(run_both)
    emit("fault_tolerance", format_table(
        ("run", "completed", "records", "makespan (s)", "re-dispatched",
         "abandoned"),
        [
            ("healthy", healthy["completed"], healthy["records"],
             "%.1f" % healthy["makespan"], healthy["redispatched"],
             healthy["abandoned"]),
            ("container killed @%ds" % KILL_AT, faulty["completed"],
             faulty["records"], "%.1f" % faulty["makespan"],
             faulty["redispatched"], faulty["abandoned"]),
        ],
        title="X4: analysis-container failure at t=%ds" % KILL_AT,
    ))
    assert healthy["completed"] and faulty["completed"]
    assert healthy["redispatched"] == 0
    # the fault was actually exercised and recovered from
    assert faulty["redispatched"] > 0
    assert faulty["abandoned"] == 0
    assert faulty["records"] >= healthy["records"]
    assert faulty["survivor_jobs"] > 0
    # recovery costs time, but the run still finishes
    assert faulty["makespan"] >= healthy["makespan"]
