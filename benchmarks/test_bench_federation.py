"""X8 -- Site federation: integrated grid vs the siloed Figure 5 baseline.

Paper, section 4: in the baseline "there's no relation among different
sites.  There is no integration in this information; and no high level
analysis can be carried out", and "in a system where there is management of
several networks, shared knowledge is an important advantage".  The bench
runs the identical two-site workload (one overloaded device per site) on
both federation modes and shows only the integrated grid produces the
cross-site incident.

X9 (WAN tolerance) rides along: the integrated runs repeat under a 100x
worse WAN, asserting the same findings emerge ("agents are tolerable to
the latency that can exist in communication in systems of this load").
"""

from repro.core.federation import (
    INTEGRATED,
    SILOED,
    FederatedManagementSystem,
    FederatedTopologySpec,
    SiteSpec,
)
from repro.evaluation.tables import format_table
from repro.network.topology import LinkSpec

from conftest import emit

POLLS = 6


def _spec(mode, wan=None):
    return FederatedTopologySpec(
        sites=[
            SiteSpec.simple("site1", device_count=2, collector_count=1,
                            analyzer_count=1),
            SiteSpec.simple("site2", device_count=2, collector_count=1,
                            analyzer_count=1),
        ],
        mode=mode,
        seed=31,
        dataset_threshold=6,
        wan=wan,
    )


def _run(mode, wan=None):
    system = FederatedManagementSystem(_spec(mode, wan))
    system.devices["site1-dev1"].inject_fault("cpu_runaway")
    system.devices["site2-dev1"].inject_fault("cpu_runaway")
    system.assign_site_goals(system.make_site_goals(polls_per_type=POLLS))
    total = 2 * POLLS * 3
    completed = system.run_until_records(total, timeout=4000)
    system.stop_devices()
    kinds = sorted({finding.kind for finding in system.all_findings()})
    return {
        "mode": mode,
        "completed": completed,
        "records": system.records_analyzed(),
        "finished_at": system.sim.now,
        "kinds": kinds,
        "cross_site": "multi-site-overload" in kinds,
        "reports": sum(len(i.reports) for i in system.interfaces()),
    }


def test_federation(once):
    def run_all():
        integrated = _run(INTEGRATED)
        siloed = _run(SILOED)
        slow_wan = _run(INTEGRATED, wan=LinkSpec(latency=1.0, bandwidth=100.0))
        return integrated, siloed, slow_wan

    integrated, siloed, slow_wan = once(run_all)
    emit("federation", format_table(
        ("deployment", "records", "cross-site incident", "findings"),
        [
            ("integrated grid", integrated["records"],
             integrated["cross_site"], ", ".join(integrated["kinds"])),
            ("siloed (Figure 5)", siloed["records"],
             siloed["cross_site"], ", ".join(siloed["kinds"])),
            ("integrated, 100x WAN", slow_wan["records"],
             slow_wan["cross_site"], ", ".join(slow_wan["kinds"])),
        ],
        title="X8/X9: two sites, one overloaded device each",
    ))
    assert integrated["completed"] and siloed["completed"]
    # same telemetry everywhere...
    assert integrated["records"] == siloed["records"]
    # ...but only integration produces the cross-site correlation
    assert integrated["cross_site"]
    assert not siloed["cross_site"]
    # both still catch the local symptoms
    assert "high-cpu" in integrated["kinds"]
    assert "high-cpu" in siloed["kinds"]
    # X9: latency tolerance -- findings survive a far worse WAN
    assert slow_wan["completed"]
    assert slow_wan["cross_site"]
    assert slow_wan["records"] == integrated["records"]
