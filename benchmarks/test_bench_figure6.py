"""F6 -- Figure 6: compared performances of the three architectures.

The paper's scenario: 10 requests of each type over 3 devices.  For each
architecture the bench regenerates the per-host CPU / Network / Disc bars
(as table rows) and asserts the paper's qualitative claims:

(a) centralized -- single manager is the CPU bottleneck, highest network
    (raw data crosses the network);
(b) multi-agent -- collectors parse locally, traffic drops, but the
    manager still bottlenecks on analysis;
(c) agent grid -- collection, storage and analysis distributed; the
    per-host maximum is the lowest of the three and makespan is shortest.
"""

import pytest

from repro.baselines.centralized import MANAGER_HOST, centralized_spec
from repro.baselines.driver import run_architecture, run_figure6
from repro.baselines.multiagent import multiagent_spec
from repro.core.system import GridTopologySpec
from repro.evaluation.accounting import compare_reports
from repro.evaluation.tables import format_number, format_table
from repro.simkernel.resources import ResourceKind

from conftest import emit

POLLS = 10
SEED = 42


def _run(spec, label):
    return run_architecture(spec, label, polls_per_type=POLLS, timeout=4000)


def test_figure6a_centralized(once):
    result = once(
        _run, centralized_spec(seed=SEED, dataset_threshold=3 * POLLS),
        "centralized",
    )
    emit("figure6a_centralized", result.report.render())
    assert result.completed
    manager = result.report.host(MANAGER_HOST)
    # all thirty raw polls cross the manager NIC: 30 x Request.net
    assert manager.net_units == pytest.approx(150.0)
    # manager does everything: poll+parse+classify+store+infer+cross+render
    assert manager.cpu_units > 1500


def test_figure6b_multiagent(once):
    result = once(
        _run, multiagent_spec(seed=SEED, dataset_threshold=3 * POLLS),
        "multiagent",
    )
    emit("figure6b_multiagent", result.report.render())
    assert result.completed
    manager = result.report.host(MANAGER_HOST)
    collectors = [row for row in result.report if row.role == "collector"]
    assert len(collectors) == 2
    # parsing moved to the collectors...
    assert all(row.cpu_units > 0 for row in collectors)
    # ...so the manager sees far less traffic than centralized's 150
    assert manager.net_units < 75.0
    # but analysis is still centralized: the manager remains the bottleneck
    assert result.report.bottleneck().host_name == MANAGER_HOST


def test_figure6c_grid(once):
    spec = GridTopologySpec.paper_figure6c(
        seed=SEED, dataset_threshold=3 * POLLS)
    result = once(_run, spec, "grid")
    emit("figure6c_grid", result.report.render())
    assert result.completed
    roles = {row.role for row in result.report}
    assert {"collector", "storage", "analysis", "interface"} <= roles
    # storage host owns the disk work
    disk_host, _ = result.report.max_host(ResourceKind.DISK)
    assert disk_host == "storage1"
    # both inference hosts participate
    analysis = [row for row in result.report if row.role == "analysis"]
    assert all(row.cpu_units > 0 for row in analysis)


def test_figure6_comparison(once):
    results = once(run_figure6, polls_per_type=POLLS, seed=SEED,
                   timeout=4000)
    comparison = compare_reports(
        [result.report for result in results.values()], ResourceKind.CPU)
    rows = [
        (
            entry["label"],
            entry["max_host"],
            format_number(entry["max_host_units"]),
            format_number(entry["total_units"]),
            "%.2f" % entry["balance_index"],
            "%.1f" % entry["makespan"],
        )
        for entry in comparison
    ]
    text = format_table(
        ("architecture", "bottleneck host", "max CPU units",
         "total CPU units", "balance", "makespan (s)"),
        rows,
        title="Figure 6: who wins (lower max CPU units = better)",
    )
    per_host = "\n\n".join(
        results[label].report.render()
        for label in ("centralized", "multiagent", "grid")
    )
    emit("figure6_comparison", text + "\n\n" + per_host)

    # the paper's headline ordering
    assert [entry["label"] for entry in comparison] == \
        ["grid", "multiagent", "centralized"]
    central = results["centralized"]
    multi = results["multiagent"]
    grid = results["grid"]
    # grid relieves the bottleneck by >2x vs multiagent, >3x vs centralized
    assert central.report.max_host(ResourceKind.CPU)[1] > \
        3 * grid.report.max_host(ResourceKind.CPU)[1]
    assert multi.report.max_host(ResourceKind.CPU)[1] > \
        2 * grid.report.max_host(ResourceKind.CPU)[1]
    # makespan ordering follows
    assert grid.makespan < multi.makespan < central.makespan
    # every architecture analyzed the full workload
    assert all(result.records_analyzed == 3 * POLLS
               for result in results.values())
