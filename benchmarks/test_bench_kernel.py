"""K1 -- kernel microbenchmarks: the perf trajectory for the event loop.

Every experiment in this reproduction (Figure 6, the crossover sweep, the
X3 scalability bench) decomposes into millions of ``simkernel`` events, so
the ROADMAP's "fast as the hardware allows" north star starts here.  This
bench measures:

* heap event throughput -- timer chains through the priority queue;
* zero-delay throughput -- ``spawn`` / ``SimEvent.trigger`` style
  same-instant callbacks (the kernel's fast lane);
* process spawn/join throughput;
* resource contention -- many processes hammering one FIFO resource;
* an end-to-end Figure-6c (agent grid) wall-clock measurement.

Results go to stdout, ``benchmarks/results/kernel.txt`` and -- machine
readable -- ``benchmarks/results/BENCH_kernel.json`` so future PRs have a
perf trajectory to compare against (see DESIGN.md "Performance").
"""

import gc
import json
import os
import shutil
import tempfile
import time

from repro.evaluation.export import bench_to_dict, dump_json
from repro.evaluation.tables import format_table
from repro.network.addressing import Address
from repro.network.topology import Network
from repro.network.transport import Message, Transport
from repro.simkernel.resources import Resource, ResourceKind
from repro.simkernel.simulator import Simulator

from conftest import RESULTS_DIR, emit

BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_kernel.json")

SEED = 42
ROUNDS = 3

# Sized so each microbench takes O(100ms): slow enough to dominate timer
# noise, fast enough for the CI smoke job.
HEAP_EVENTS = 200_000
ZERO_DELAY_EVENTS = 200_000
PENDING_TIMERS = 10_000
TIMER_CHURN_EVENTS = 200_000
SPAWN_PROCESSES = 30_000
CONTENTION_PROCESSES = 2_000
CONTENTION_USES = 25
TRANSPORT_MESSAGES = 100_000
TRANSPORT_BURST = 50  # same-instant same-flow messages per burst
HISTOGRAM_RECORDS = 500_000
# X3 big-topology configuration: 500 managed devices, 32 management hosts
# (16 collectors + 14 analyzers + storage + interface).
BIGTOPO_DEVICES = 500
BIGTOPO_REQUESTS_PER_TYPE = 25
BIGTOPO_COLLECTORS = 16
BIGTOPO_ANALYZERS = 14

_RESULTS = {}


def _noop():
    pass


def _best_rate(work, count, rounds=ROUNDS):
    """Run ``work`` (fresh state per round) and return best ops/sec."""
    best = None
    for _ in range(rounds):
        # Drain garbage left by earlier benches/rounds so a gen-2 pause
        # from someone else's cycles doesn't land inside this timing.
        gc.collect()
        start = time.perf_counter()
        work()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return count / best, best


def test_bench_heap_event_throughput():
    """Timer chain with distinct future times: pure heap push/pop."""

    def work():
        sim = Simulator(seed=SEED)
        remaining = [HEAP_EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        assert remaining[0] == 0

    rate, elapsed = _best_rate(work, HEAP_EVENTS)
    _RESULTS["heap_events_per_sec"] = rate
    print("heap events/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, HEAP_EVENTS))


def test_bench_zero_delay_throughput():
    """Same-instant callback chain: the spawn/trigger fast lane.

    The chain runs against a heap populated with pending future timers
    (``PENDING_TIMERS``), the realistic shape: in every experiment,
    same-instant triggers and spawns interleave with thousands of
    outstanding poll timers and timeouts.
    """

    def work():
        sim = Simulator(seed=SEED)
        for index in range(PENDING_TIMERS):
            sim.schedule(1e9 + index, _noop)
        remaining = [ZERO_DELAY_EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(0.0, tick)

        sim.schedule(0.0, tick)
        sim.run(until=1.0)
        assert remaining[0] == 0

    rate, elapsed = _best_rate(work, ZERO_DELAY_EVENTS)
    _RESULTS["zero_delay_events_per_sec"] = rate
    print("zero-delay events/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, ZERO_DELAY_EVENTS))


def test_bench_timer_churn_throughput():
    """Heartbeat-reset churn: the timer wheel's target profile.

    ``PENDING_TIMERS`` watchdogs sit ~30s in the future; every simulated
    second each one is cancelled and re-armed (the retransmit/heartbeat
    reset pattern that dominates bigtopo's pending-timer population).
    Each processed heartbeat costs one pop, one O(1) lazy cancel and two
    near-future schedules -- superlinear on a single binary heap,
    near-constant on the calendar wheel.
    """
    rounds_of_heartbeats = TIMER_CHURN_EVENTS // PENDING_TIMERS

    def work():
        sim = Simulator(seed=SEED)
        count = [0]
        watchdogs = [None] * PENDING_TIMERS

        def expired(index):
            raise AssertionError("watchdog %d expired mid-bench" % index)

        def heartbeat(index):
            count[0] += 1
            watchdogs[index].cancel()
            watchdogs[index] = sim.schedule(30.0, expired, (index,))
            sim.schedule(1.0, heartbeat, (index,))

        for index in range(PENDING_TIMERS):
            watchdogs[index] = sim.schedule(30.0, expired, (index,))
            sim.schedule(0.0001 * index, heartbeat, (index,))
        sim.run(until=float(rounds_of_heartbeats))
        assert count[0] >= TIMER_CHURN_EVENTS

    rate, elapsed = _best_rate(work, TIMER_CHURN_EVENTS)
    _RESULTS["timer_churn_per_sec"] = rate
    print("timer churn/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, TIMER_CHURN_EVENTS))


def test_bench_spawn_join_throughput():
    """Spawn a swarm of one-sleep processes and join them all."""

    def work():
        sim = Simulator(seed=SEED)

        def worker(delay):
            yield delay
            return delay

        def parent():
            children = [
                sim.spawn(worker(0.001 * (index % 7)), name="w")
                for index in range(SPAWN_PROCESSES)
            ]
            for child in children:
                yield child

        done = sim.spawn(parent())
        sim.run()
        assert done.done

    rate, elapsed = _best_rate(work, SPAWN_PROCESSES)
    _RESULTS["spawn_join_per_sec"] = rate
    print("spawn+join/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, SPAWN_PROCESSES))


def test_bench_resource_contention():
    """Many processes queueing default-priority work on one resource."""
    total_uses = CONTENTION_PROCESSES * CONTENTION_USES

    def work():
        sim = Simulator(seed=SEED)
        cpu = Resource(sim, "cpu", ResourceKind.CPU, capacity=1000.0)

        def hammer():
            for _ in range(CONTENTION_USES):
                yield cpu.use(1.0, label="hammer")

        for _ in range(CONTENTION_PROCESSES):
            sim.spawn(hammer(), name="hammer")
        sim.run()
        assert cpu.completed_requests == total_uses

    rate, elapsed = _best_rate(work, total_uses)
    _RESULTS["resource_uses_per_sec"] = rate
    print("resource uses/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, total_uses))


def _transport_work(coalesce):
    """Burst delivery: TRANSPORT_BURST same-flow messages per instant."""

    def work():
        sim = Simulator(seed=SEED)
        network = Network(sim)
        network.add_host("src", "site1")
        network.add_host("dst", "site1")
        network.host("dst").bind("in", lambda message: None)
        transport = Transport(network, coalesce=coalesce)
        source = Address("src", "out")
        sink = Address("dst", "in")
        post = transport.post

        def driver():
            for _ in range(TRANSPORT_MESSAGES // TRANSPORT_BURST):
                for _ in range(TRANSPORT_BURST):
                    post(Message(source, sink, None, 1.0))
                yield 1000.0  # let the NIC drain before the next burst

        sim.spawn(driver())
        sim.run()
        assert transport.messages_delivered == TRANSPORT_MESSAGES

    return work


def test_bench_transport_batched():
    """Coalescing lane: one wire batch per same-destination burst."""
    rate, elapsed = _best_rate(_transport_work(coalesce=True),
                               TRANSPORT_MESSAGES)
    _RESULTS["transport_msgs_per_sec"] = rate
    print("transport batched msgs/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, TRANSPORT_MESSAGES))


def test_bench_transport_unbatched():
    """The per-message pipeline (coalesce=False): the A/B baseline."""
    rate, elapsed = _best_rate(_transport_work(coalesce=False),
                               TRANSPORT_MESSAGES)
    _RESULTS["transport_unbatched_msgs_per_sec"] = rate
    print("transport unbatched msgs/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, TRANSPORT_MESSAGES))


def test_bench_bigtopo_wallclock():
    """X3 big topology: 500 devices on a 32-host grid, end to end."""
    from repro.evaluation.experiments import run_scenario_on_grid
    from repro.workloads.scenarios import scaling_scenario

    scenario = scaling_scenario(BIGTOPO_DEVICES, BIGTOPO_REQUESTS_PER_TYPE)
    start = time.perf_counter()
    result = run_scenario_on_grid(
        scenario, seed=SEED, timeout=8000,
        collector_count=BIGTOPO_COLLECTORS, analyzer_count=BIGTOPO_ANALYZERS,
        dataset_threshold=scenario.total_requests,
    )
    elapsed = time.perf_counter() - start
    assert result.completed
    assert len(result.system.management_hosts()) == 32
    _RESULTS["bigtopo_wall_seconds"] = elapsed
    _RESULTS["bigtopo_sim_seconds_per_wall_second"] = result.makespan / elapsed
    print("bigtopo wall clock: %.3fs (makespan %.1fs, %d messages)" %
          (elapsed, result.makespan,
           result.system.transport.stats()["sent"]))


def test_bench_bigtopo_streaming_telemetry():
    """The 500-device bigtopo run, fully traced, spans streamed to disk.

    The acceptance bar for the streaming exporter: the whole traced run
    completes with *zero* rejected spans (closed spans rotate to chunked
    Chrome-trace files instead of hitting the in-memory capacity ceiling)
    and leaves a readable manifest behind.
    """
    from repro.evaluation.experiments import run_scenario_on_grid
    from repro.simkernel.telemetry import load_streaming_trace
    from repro.workloads.scenarios import scaling_scenario

    stream_dir = tempfile.mkdtemp(prefix="bigtopo-stream-")
    try:
        scenario = scaling_scenario(BIGTOPO_DEVICES,
                                    BIGTOPO_REQUESTS_PER_TYPE)
        start = time.perf_counter()
        result = run_scenario_on_grid(
            scenario, seed=SEED, timeout=8000,
            collector_count=BIGTOPO_COLLECTORS,
            analyzer_count=BIGTOPO_ANALYZERS,
            dataset_threshold=scenario.total_requests,
            telemetry={"stream_dir": stream_dir,
                       "stream_chunk_spans": 5000},
        )
        elapsed = time.perf_counter() - start
        assert result.completed
        telemetry = result.system.telemetry
        telemetry.finalize()
        recorder = telemetry.recorder
        assert recorder.dropped == 0, (
            "streaming run rejected %d spans" % recorder.dropped)
        loaded, manifest = load_streaming_trace(stream_dir)
        assert manifest["finalized"]
        assert manifest["spans_dropped"] == 0
        total_spans = telemetry.exporter.spans_exported + len(
            loaded.open_spans())
        assert len(loaded.spans) == total_spans
        _RESULTS["bigtopo_streaming_wall_seconds"] = elapsed
        print("bigtopo streaming wall clock: %.3fs (%d spans exported in "
              "%d chunks, %d open, 0 dropped)" % (
                  elapsed, telemetry.exporter.spans_exported,
                  len(manifest["chunks"]), len(loaded.open_spans())))
    finally:
        shutil.rmtree(stream_dir, ignore_errors=True)


def test_bench_histogram_record_throughput():
    """``LatencyHistogram.record`` on a realistic latency spread.

    The health layer feeds every closed pipeline span through this call
    in-line, so it sits on the telemetry hot path: O(1), allocation-free
    once the working set of sparse buckets exists.  Values are
    precomputed (log-uniform across 8 decades) so the measurement is the
    record loop, not ``random``.
    """
    import random

    from repro.simkernel.histogram import LatencyHistogram

    rng = random.Random(SEED)
    values = [10 ** rng.uniform(-4, 4) for _ in range(HISTOGRAM_RECORDS)]

    def work():
        histogram = LatencyHistogram()
        record = histogram.record
        for value in values:
            record(value)
        assert histogram.count == HISTOGRAM_RECORDS

    rate, elapsed = _best_rate(work, HISTOGRAM_RECORDS)
    _RESULTS["histogram_record_per_sec"] = rate
    print("histogram records/sec: %.0f (%.3fs for %d)" %
          (rate, elapsed, HISTOGRAM_RECORDS))


def test_bench_zero_delay_telemetry_throughput():
    """The zero-delay chain with a telemetry session attached.

    The flight recorder must be pay-for-what-you-trace: attaching a
    :class:`Telemetry` (profiler off -- spans and metrics are passive
    bookkeeping that the kernel never touches) should leave the hot loop's
    throughput within noise of the plain run above.  The CI overhead gate
    (``benchmarks/check_telemetry_overhead.py``) compares the two.
    """
    from repro.simkernel.telemetry import Telemetry

    def work():
        sim = Simulator(seed=SEED)
        Telemetry(sim)  # attached, profiler off: the production default
        for index in range(PENDING_TIMERS):
            sim.schedule(1e9 + index, _noop)
        remaining = [ZERO_DELAY_EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(0.0, tick)

        sim.schedule(0.0, tick)
        sim.run(until=1.0)
        assert remaining[0] == 0

    rate, elapsed = _best_rate(work, ZERO_DELAY_EVENTS)
    _RESULTS["zero_delay_telemetry_events_per_sec"] = rate
    print("zero-delay events/sec with telemetry: %.0f (%.3fs for %d)" %
          (rate, elapsed, ZERO_DELAY_EVENTS))


def _figure6c_wallclock(telemetry):
    from repro.baselines.driver import run_architecture
    from repro.core.system import GridTopologySpec

    best = None
    for _ in range(ROUNDS):
        spec = GridTopologySpec.paper_figure6c(
            seed=SEED, dataset_threshold=30, telemetry=telemetry)
        start = time.perf_counter()
        result = run_architecture(spec, "grid", polls_per_type=10,
                                  timeout=4000)
        elapsed = time.perf_counter() - start
        assert result.completed
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_bench_figure6c_wallclock():
    """End-to-end wall clock for the paper's Figure-6c agent-grid run."""
    best = _figure6c_wallclock(telemetry=False)
    _RESULTS["figure6c_wall_seconds"] = best
    print("figure6c wall clock: %.3fs" % best)


def test_bench_figure6c_telemetry_wallclock():
    """Figure-6c with the full flight recorder on: spans at every stage,
    labelled metric sources, dead-letter hooks.  Overhead-gated in CI."""
    best = _figure6c_wallclock(telemetry=True)
    _RESULTS["figure6c_telemetry_wall_seconds"] = best
    print("figure6c wall clock with telemetry: %.3fs" % best)


def test_bench_kernel_export():
    """Render the summary table and write BENCH_kernel.json."""
    expected = {
        "heap_events_per_sec",
        "zero_delay_events_per_sec",
        "timer_churn_per_sec",
        "spawn_join_per_sec",
        "resource_uses_per_sec",
        "bigtopo_streaming_wall_seconds",
        "transport_msgs_per_sec",
        "transport_unbatched_msgs_per_sec",
        "histogram_record_per_sec",
        "bigtopo_wall_seconds",
        "bigtopo_sim_seconds_per_wall_second",
        "figure6c_wall_seconds",
        "zero_delay_telemetry_events_per_sec",
        "figure6c_telemetry_wall_seconds",
    }
    missing = expected - set(_RESULTS)
    assert not missing, "benches did not run: %s" % sorted(missing)
    # the tentpole claim: batched same-destination traffic is >=2x the
    # per-message pipeline
    assert (_RESULTS["transport_msgs_per_sec"]
            >= 2.0 * _RESULTS["transport_unbatched_msgs_per_sec"])

    rows = [(name, "%.0f" % value if "per_sec" in name else "%.4f" % value)
            for name, value in sorted(_RESULTS.items())]
    text = format_table(
        ("metric", "value"), rows,
        title="Kernel microbenchmarks (higher events/sec = better)",
    )
    emit("kernel", text)

    payload = bench_to_dict(
        "kernel", _RESULTS,
        context={
            "seed": SEED,
            "rounds": ROUNDS,
            "heap_events": HEAP_EVENTS,
            "zero_delay_events": ZERO_DELAY_EVENTS,
            "pending_timers": PENDING_TIMERS,
            "spawn_processes": SPAWN_PROCESSES,
            "contention_processes": CONTENTION_PROCESSES,
            "contention_uses": CONTENTION_USES,
            "transport_messages": TRANSPORT_MESSAGES,
            "transport_burst": TRANSPORT_BURST,
            "histogram_records": HISTOGRAM_RECORDS,
            "bigtopo_devices": BIGTOPO_DEVICES,
            "bigtopo_requests_per_type": BIGTOPO_REQUESTS_PER_TYPE,
            "bigtopo_collectors": BIGTOPO_COLLECTORS,
            "bigtopo_analyzers": BIGTOPO_ANALYZERS,
        },
    )
    dump_json(payload, BENCH_PATH)
    assert os.path.exists(BENCH_PATH)
