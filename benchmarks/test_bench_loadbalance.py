"""X2 -- Load-balancing policy ablation.

Section 3.5 gives three placement principles (knowledge, capacity, idle)
plus FIPA negotiation.  On a *heterogeneous* analyzer pool (CPU capacities
20 / 10 / 5) with many small datasets, placement quality shows up directly
in makespan.  Round-robin is the naive baseline.
"""

from repro.core.loadbalance import policy_names
from repro.evaluation.experiments import loadbalance_ablation
from repro.evaluation.tables import format_table
from repro.workloads.scenarios import paper_scenario

from conftest import emit


def test_loadbalance_ablation(once):
    scenario = paper_scenario()
    rows = once(
        loadbalance_ablation, scenario, policy_names(), seed=5,
        analyzer_count=3, analyzer_capacities=(20.0, 10.0, 5.0),
        dataset_threshold=3,
    )
    table_rows = [
        (
            row["policy"],
            "%.1f" % row["makespan"],
            "%.2f" % row["balance_index"],
            " ".join(
                "%s=%d" % (host, units)
                for host, units in sorted(row["analyzer_cpu_units"].items())
            ),
        )
        for row in rows
    ]
    emit("loadbalance_ablation", format_table(
        ("policy", "makespan (s)", "balance", "analyzer CPU units"),
        table_rows,
        title="X2: placement policies on a 20/10/5-capacity analyzer pool",
    ))
    by_policy = {row["policy"]: row for row in rows}
    assert all(row["completed"] for row in rows)
    # capacity-aware placement must beat naive round-robin on a
    # heterogeneous pool
    assert by_policy["capacity"]["makespan"] < \
        by_policy["round-robin"]["makespan"]
    assert by_policy["knowledge"]["makespan"] < \
        by_policy["round-robin"]["makespan"]
    # capacity-aware policies route the most work to the fastest host
    capacity_units = by_policy["capacity"]["analyzer_cpu_units"]
    assert capacity_units["inference1"] == max(capacity_units.values())
    # every policy analyzes the full workload (same correctness, different
    # placement)
    for row in rows:
        assert sum(row["analyzer_cpu_units"].values()) > 0
