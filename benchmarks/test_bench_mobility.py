"""X7 -- Agent mobility (the paper's future-work item).

"Agent mobility allows for a migration of analysis activities attributed
to them, improving the utilization of resources."  The bench puts the only
analyzer on a weak host, then (in the mobile run) migrates it to an idle
fast host mid-run.  The in-flight job dies with the migration and is
re-dispatched by the root's fault-tolerance machinery -- mobility and
recovery compose -- and the migrated run finishes far sooner.
"""

from repro.agents.mobility import MobilityService
from repro.baselines.centralized import default_devices
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.evaluation.tables import format_table

from conftest import emit

SLOW_CPU = 2.0
FAST_CPU = 20.0
MIGRATE_AT = 40.0


def _build_system():
    spec = GridTopologySpec(
        devices=default_devices(3),
        collector_hosts=[HostSpec("col1", "site1")],
        analysis_hosts=[HostSpec("slow-host", "site1", cpu_capacity=SLOW_CPU)],
        storage_host=HostSpec("stor", "site1"),
        interface_host=HostSpec("iface", "site1"),
        seed=17,
        dataset_threshold=30,
        job_timeout=10.0,
    )
    system = GridManagementSystem(spec)
    fast_host = system.network.add_host(
        "fast-host", "site1", role="analysis", cpu_capacity=FAST_CPU)
    fast_container = system.platform.create_container(
        "fast-container", fast_host, services=("analysis",))
    return system, fast_container


def _run(migrate):
    system, fast_container = _build_system()
    system.assign_goals(system.make_paper_goals(polls_per_type=10))
    migrations = {"count": 0}
    if migrate:
        mobility = MobilityService(system.platform)
        analyzer = system.analyzers[0]
        old_container = system.analysis_containers[0]

        def migration_script():
            yield from mobility.migrate(analyzer, fast_container)
            old_container.shutdown()
            migrations["count"] = mobility.migrations

        system.sim.schedule(
            MIGRATE_AT,
            lambda: system.sim.spawn(migration_script(), name="migration"),
        )
    completed = system.run_until_records(30, timeout=8000)
    return {
        "completed": completed,
        "makespan": max(r.generated_at for r in system.interface.reports),
        "records": sum(r.records_analyzed for r in system.interface.reports),
        "migrations": migrations["count"],
        "redispatched": system.root.jobs_redispatched,
        "fast_host_cpu": system.network.host("fast-host").cpu.total_units
        if migrate else 0.0,
    }


def test_mobility(once):
    def run_both():
        return _run(migrate=False), _run(migrate=True)

    stationary, mobile = once(run_both)
    emit("mobility", format_table(
        ("run", "completed", "records", "makespan (s)", "migrations",
         "re-dispatched"),
        [
            ("stationary (slow host)", stationary["completed"],
             stationary["records"], "%.1f" % stationary["makespan"],
             0, stationary["redispatched"]),
            ("migrated @%ds -> fast host" % MIGRATE_AT,
             mobile["completed"], mobile["records"],
             "%.1f" % mobile["makespan"], mobile["migrations"],
             mobile["redispatched"]),
        ],
        title="X7: migrating the analysis agent to an idle fast host",
    ))
    assert stationary["completed"] and mobile["completed"]
    assert mobile["migrations"] == 1
    assert mobile["records"] == 30
    # the analysis work genuinely moved to the fast host
    assert mobile["fast_host_cpu"] > 0
    # and the run finished substantially sooner
    assert mobile["makespan"] < 0.8 * stationary["makespan"]
