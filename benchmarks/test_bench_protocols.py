"""X10 -- Shipping-protocol ablation (HTTP vs SMTP envelopes).

Section 3.1: collected data "is sent to the classifier grid, through any
existing protocol such as SMTP or HTTP".  The protocol choice is a pure
overhead knob in the architecture; the bench quantifies it: SMTP's heavier
envelope (+33% body expansion, bigger fixed header) inflates collector and
storage network ledgers while leaving CPU work and findings untouched.
"""

from repro.baselines.driver import run_architecture
from repro.core.system import GridTopologySpec
from repro.evaluation.tables import format_table
from repro.simkernel.resources import ResourceKind

from conftest import emit

POLLS = 10


def _run(protocol_name):
    spec = GridTopologySpec.paper_figure6c(
        seed=42, dataset_threshold=3 * POLLS,
        shipping_protocol=protocol_name,
    )
    return run_architecture(spec, protocol_name, polls_per_type=POLLS,
                            timeout=4000)


def test_protocol_ablation(once):
    def run_both():
        return _run("http"), _run("smtp")

    http, smtp = once(run_both)

    def collector_net(result):
        return sum(row.net_units for row in result.report
                   if row.role == "collector")

    rows = []
    for result in (http, smtp):
        rows.append((
            result.label,
            "%.1f" % collector_net(result),
            "%.1f" % result.report.host("storage1").net_units,
            "%.0f" % result.report.total_units(ResourceKind.CPU),
            "%.1f" % result.makespan,
        ))
    emit("protocol_ablation", format_table(
        ("protocol", "collector net units", "storage net units",
         "total CPU units", "makespan (s)"),
        rows,
        title="X10: collector->classifier shipping protocol",
    ))
    assert http.completed and smtp.completed
    # SMTP costs strictly more network at both ends of the shipping path
    assert collector_net(smtp) > collector_net(http)
    assert smtp.report.host("storage1").net_units > \
        http.report.host("storage1").net_units
    # but does not change the analysis outcome or CPU work
    assert smtp.records_analyzed == http.records_analyzed == 3 * POLLS
    assert smtp.report.total_units(ResourceKind.CPU) == \
        http.report.total_units(ResourceKind.CPU)
