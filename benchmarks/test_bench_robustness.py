"""X7 -- Robustness: the chaos harness end to end.

A two-site deployment (devices + collector at a field site; storage,
analysis and interface at the management site) runs the paper workload
while the harness injects, mid-run:

* a base 2% WAN loss rate, *bursting* to 5% for 20 simulated seconds;
* a collector **host outage** (down 10s, then reboots) -- in-flight
  reliable envelopes must survive on retransmission;
* an analysis **container kill** -- the heartbeat detector must evict it
  within half the job timeout and re-dispatch its jobs.

Acceptance (ISSUE 3): zero silent record loss -- every record shipped is
either classified or dead-lettered with accounting; every dataset the
classifier published is finalized into a report; heartbeat eviction beats
``job_timeout / 2``.  Metrics land in ``BENCH_robustness.json``.

The flight recorder rides along (ISSUE 4): every shipped batch must leave
a complete causal span chain or terminate in an explicitly-statused
dead-letter/abandoned span -- zero orphans -- and the Chrome-trace
timeline is exported to ``TRACE_robustness.json`` for artifact upload.
"""

import os

from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.evaluation.export import bench_to_dict, dump_json, load_json
from repro.evaluation.tables import format_table
from repro.network.topology import LinkSpec
from repro.workloads.faults import (
    FaultEvent,
    FaultPlan,
    apply_fault_plan,
    dead_letter_heal_plan,
    storage_blip_plan,
)

from conftest import RESULTS_DIR, emit

BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_robustness.json")
TRACE_PATH = os.path.join(RESULTS_DIR, "TRACE_robustness.json")


def _merge_bench(metrics, context, prefix=None):
    """Read-modify-write ``BENCH_robustness.json``.

    The X7 scenarios (chaos mix, storage blip, dead-letter heal) each own
    a key prefix and merge into one artifact, so they can run in any
    order -- or alone -- without clobbering each other's metrics.
    """
    if os.path.exists(BENCH_PATH):
        payload = load_json(BENCH_PATH)
    else:
        payload = bench_to_dict("robustness", metrics={})
    stamp = (lambda key: key) if prefix is None \
        else (lambda key: "%s_%s" % (prefix, key))
    payload.setdefault("metrics", {}).update(
        {stamp(key): value for key, value in metrics.items()})
    payload.setdefault("context", {}).update(
        {stamp(key): value for key, value in context.items()})
    dump_json(payload, BENCH_PATH)

BASE_LOSS = 0.02
BURST_LOSS = 0.05
BURST_AT, BURST_LEN = 10.0, 20.0
HOST_DOWN_AT, HOST_DOWN_LEN = 15.0, 10.0
KILL_AT = 35.0
JOB_TIMEOUT = 40.0
HEARTBEAT_INTERVAL = 2.0  # timeout derives to 8s < JOB_TIMEOUT / 2


def _build_system(seed=3, redelivery=False, heartbeat=True):
    reliability = {"ack_timeout": 2.0, "backoff": 2.0, "max_attempts": 6}
    if redelivery:
        reliability.update(redelivery=True, redelivery_interval=2.0,
                           redelivery_max_interval=8.0)
    spec = GridTopologySpec(
        devices=[
            DeviceSpec("dev1", "server", "field"),
            DeviceSpec("dev2", "router", "field"),
            DeviceSpec("dev3", "server", "field"),
        ],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[
            HostSpec("inf1", "mgmt", cpu_capacity=0.5),  # slow: holds jobs
            HostSpec("inf2", "mgmt", cpu_capacity=10.0),
        ],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=seed,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=JOB_TIMEOUT,
        heartbeat_interval=HEARTBEAT_INTERVAL if heartbeat else None,
        reliability=reliability,
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=BASE_LOSS),
        telemetry=True,
    )
    return GridManagementSystem(spec)


def _chaos(system):
    apply_fault_plan(system, FaultPlan([
        FaultEvent(at=BURST_AT, kind="link_loss_burst", target="wan",
                   loss_rate=BURST_LOSS, clear_after=BURST_LEN),
        FaultEvent(at=HOST_DOWN_AT, kind="host_down", target="col1",
                   clear_after=HOST_DOWN_LEN),
        FaultEvent(at=KILL_AT, kind="container_down", target="analysis-1"),
    ]))


def _drained(system):
    """Everything in flight has settled and every dataset is decided."""
    root = system.root
    channel = system.reliable_channel
    return (
        channel.pending_count() == 0
        and channel.parked_count() == 0
        and system.classifier._open_dataset is None
        and root.datasets
        and all(state.finished for state in root.datasets.values())
        and not any(not job.done for job in root.jobs.values())
    )


def _dead_letter_records(channel):
    """Records inside dead-lettered collected-batch envelopes."""
    count = 0
    for dead in channel.dead_letters:
        acl = dead.message.payload
        if getattr(acl, "ontology", None) == "collected-batch":
            count += len(acl.content["records"])
    return count


def run_chaos(seed=3, timeout=2000.0):
    system = _build_system(seed=seed)
    system.collectors[0].poll_retries = 12
    _chaos(system)
    system.assign_goals(system.make_paper_goals(polls_per_type=4))
    while system.sim.now < timeout and not _drained(system):
        system.sim.run(until=system.sim.now + 5.0)
    system.sim.run(until=system.sim.now + 5.0)  # settle trailing acks
    channel = system.reliable_channel
    collector = system.collectors[0]
    evictions = system.root.evictions
    detection_delay = (evictions[0][1] - KILL_AT) if evictions else -1.0
    dead_records = _dead_letter_records(channel)
    pipeline = system.telemetry.pipeline_report()
    return {
        "pipeline": pipeline,
        "chrome_trace": system.telemetry.chrome_trace(),
        "span_count": len(system.telemetry.recorder),
        "spans_dropped": system.telemetry.recorder.dropped,
        "drained": _drained(system),
        "makespan": max(
            (r.generated_at for r in system.interface.reports), default=0.0),
        "records_shipped": collector.records_shipped,
        "records_classified": system.classifier.records_classified,
        "dead_letter_records": dead_records,
        "silent_loss": max(
            0, collector.records_shipped
            - system.classifier.records_classified - dead_records),
        "polls_failed": collector.polls_failed,
        "poll_retries_used": collector.poll_retries_used,
        "datasets_published": system.classifier.datasets_published,
        "datasets_finalized": sum(
            1 for state in system.root.datasets.values() if state.finished),
        "reports": len(system.interface.reports),
        "records_reported": sum(
            r.records_analyzed for r in system.interface.reports),
        "containers_evicted": system.root.containers_evicted,
        "detection_delay": detection_delay,
        "jobs_redispatched": system.root.jobs_redispatched,
        "retransmits": channel.retransmits,
        "dup_drops": channel.dup_drops,
        "acked": channel.messages_acked,
        "mean_ack_latency": channel.mean_latency(),
        "dead_letters": len(channel.dead_letters),
    }


def test_chaos_harness(once):
    result = once(run_chaos)
    emit("robustness_chaos", format_table(
        ("metric", "value"),
        [
            ("drained", result["drained"]),
            ("records shipped", result["records_shipped"]),
            ("records classified", result["records_classified"]),
            ("dead-lettered records", result["dead_letter_records"]),
            ("silent loss", result["silent_loss"]),
            ("datasets published / finalized", "%d / %d" % (
                result["datasets_published"], result["datasets_finalized"])),
            ("reports", result["reports"]),
            ("containers evicted", result["containers_evicted"]),
            ("detection delay (s)", "%.1f" % result["detection_delay"]),
            ("jobs re-dispatched", result["jobs_redispatched"]),
            ("retransmits", result["retransmits"]),
            ("duplicate drops", result["dup_drops"]),
            ("mean ack latency (s)", "%.2f" % result["mean_ack_latency"]),
            ("makespan (s)", "%.1f" % result["makespan"]),
            ("trace chains complete / shipped", "%d / %d" % (
                result["pipeline"]["complete"],
                result["pipeline"]["batches"])),
            ("trace orphan spans", len(result["pipeline"]["orphans"])),
        ],
        title="X7: chaos run (%.0f%% WAN loss burst, host outage, "
              "container kill)" % (BURST_LOSS * 100),
    ))
    # -- the run actually finished under chaos ---------------------------
    assert result["drained"]
    assert result["records_shipped"] > 0
    # -- zero SILENT loss: every shipped record is accounted for ---------
    assert result["silent_loss"] == 0
    # -- every published dataset was finalized into a report -------------
    assert result["datasets_finalized"] == result["datasets_published"]
    assert result["reports"] >= 1
    # -- heartbeat eviction beat the Reaper ------------------------------
    assert result["containers_evicted"] == 1
    assert 0 < result["detection_delay"] < JOB_TIMEOUT / 2
    # -- the chaos was real: loss forced the channel to work -------------
    assert result["retransmits"] > 0
    assert result["acked"] > 0
    # -- flight recorder: every shipped batch's causal chain is either
    #    complete or terminates in an explicit dead-letter/abandoned span,
    #    and no span dangles from an unrecorded parent ------------------
    pipeline = result["pipeline"]
    assert result["spans_dropped"] == 0
    assert pipeline["batches"] > 0
    assert pipeline["incomplete"] == []
    assert pipeline["orphans"] == []
    assert pipeline["open"] == []
    assert pipeline["complete"] == pipeline["batches"]
    # -- the exported timeline is valid Chrome Trace Event Format --------
    trace = result["chrome_trace"]
    assert trace["traceEvents"]
    assert all(event["ph"] in ("X", "M") for event in trace["traceEvents"])
    dump_json(trace, TRACE_PATH)
    assert os.path.exists(TRACE_PATH)
    _merge_bench(
        metrics={
            "records_shipped": result["records_shipped"],
            "records_classified": result["records_classified"],
            "dead_letter_records": result["dead_letter_records"],
            "silent_loss": result["silent_loss"],
            "detection_delay": result["detection_delay"],
            "jobs_redispatched": result["jobs_redispatched"],
            "retransmits": result["retransmits"],
            "dup_drops": result["dup_drops"],
            "mean_ack_latency": result["mean_ack_latency"],
            "makespan": result["makespan"],
            "trace_batches": result["pipeline"]["batches"],
            "trace_chains_complete": result["pipeline"]["complete"],
            "trace_orphan_spans": len(result["pipeline"]["orphans"]),
            "trace_spans": result["span_count"],
        },
        context={
            "seed": 3,
            "base_loss": BASE_LOSS,
            "burst_loss": BURST_LOSS,
            "burst_window": [BURST_AT, BURST_AT + BURST_LEN],
            "collector_outage": [HOST_DOWN_AT, HOST_DOWN_AT + HOST_DOWN_LEN],
            "kill_at": KILL_AT,
            "job_timeout": JOB_TIMEOUT,
            "heartbeat_interval": HEARTBEAT_INTERVAL,
        },
    )
    assert os.path.exists(BENCH_PATH)


# -- self-healing scenarios (ISSUE 5) -----------------------------------------

def _run_until_drained(system, timeout=2000.0):
    while system.sim.now < timeout and not _drained(system):
        system.sim.run(until=system.sim.now + 5.0)
    system.sim.run(until=system.sim.now + 5.0)  # settle trailing acks


def run_storage_blip(seed=5, timeout=2000.0):
    """A storage-host blip inside the analyzer fetch window.

    The blip knocks out the storage/classifier/root host for a few
    seconds right as the first analysis jobs fetch their clusters; the
    bounded fetch retries (derived from the spec) must land the data on a
    later attempt instead of feeding the rule engine 0 records.
    """
    # Heartbeats off: the blip downs the *root's* host, and 12s of
    # undeliverable beacons would read as container death -- eviction is
    # the chaos-mix test's subject, not this one's.
    system = _build_system(seed=seed, redelivery=True, heartbeat=False)
    system.collectors[0].poll_retries = 12
    # Arm the blip off the first fetch itself: classifier and root share
    # the storage host, so a clock-scheduled outage stalls *dispatch* and
    # the fetch would simply start after the heal.  Triggered 0.05s in,
    # the host is down before the QUERY_REF finishes its ~0.1s wire trip,
    # and the outage outlasts one fetch-attempt patience window (~10s),
    # so the reliable channel's retransmissions alone cannot hide it from
    # the retry ladder.
    blip = {"at": None}

    def arm_blip():
        if blip["at"] is None:
            blip["at"] = system.sim.now + 0.05
            # Applied mid-run, fault times are relative to now.
            apply_fault_plan(system, storage_blip_plan(
                "stor", blip_at=0.05, blip_duration=12.0))

    def triggering_fetch(original):
        def fetch(storage_query, size_units, conversation_tag,
                  reply_units=0.0):
            arm_blip()
            result = yield from original(
                storage_query, size_units, conversation_tag, reply_units)
            return result
        return fetch

    for analyzer in system.analyzers:
        analyzer._fetch = triggering_fetch(analyzer._fetch)
    system.assign_goals(system.make_paper_goals(polls_per_type=4))
    _run_until_drained(system, timeout)
    channel = system.reliable_channel
    collector = system.collectors[0]
    return {
        "drained": _drained(system),
        "records_shipped": collector.records_shipped,
        "records_classified": system.classifier.records_classified,
        "records_reported": sum(
            r.records_analyzed for r in system.interface.reports),
        "fetch_attempts": sum(a.fetch_attempts for a in system.analyzers),
        "fetch_retries_used": sum(
            a.fetch_retries_used for a in system.analyzers),
        "fetch_failures": sum(a.fetch_failures for a in system.analyzers),
        "zero_record_jobs": sum(
            1 for a in system.analyzers
            if a.jobs_completed and not a.records_analyzed
        ),
        "permanently_dead": len(channel.permanently_dead()),
        "redelivered": channel.redelivered,
        "reports": len(system.interface.reports),
        "pipeline": system.telemetry.pipeline_report(),
    }


def test_storage_blip_during_fetch(once):
    result = once(run_storage_blip)
    emit("robustness_storage_blip", format_table(
        ("metric", "value"),
        [
            ("drained", result["drained"]),
            ("records shipped / classified / reported", "%d / %d / %d" % (
                result["records_shipped"], result["records_classified"],
                result["records_reported"])),
            ("fetch attempts / retries used", "%d / %d" % (
                result["fetch_attempts"], result["fetch_retries_used"])),
            ("fetch failures", result["fetch_failures"]),
            ("zero-record jobs", result["zero_record_jobs"]),
            ("reports", result["reports"]),
        ],
        title="X7b: storage blip inside the fetch window",
    ))
    assert result["drained"]
    assert result["records_shipped"] > 0
    # Heal-complete: the blip healed, so nothing is permanently lost and
    # the strong invariant holds exactly.
    assert result["records_classified"] == result["records_shipped"]
    assert result["permanently_dead"] == 0
    # The blip was real -- fetches needed the retry ladder -- yet no fetch
    # exhausted it: zero 0-record analysis jobs.
    assert result["fetch_retries_used"] > 0
    assert result["fetch_failures"] == 0
    assert result["zero_record_jobs"] == 0
    # Every classified record made it into a report.
    assert result["records_reported"] == result["records_classified"]
    pipeline = result["pipeline"]
    assert pipeline["incomplete"] == []
    assert pipeline["orphans"] == []
    assert pipeline["complete"] == pipeline["batches"]
    _merge_bench(
        prefix="storage_blip",
        metrics={
            "records_shipped": result["records_shipped"],
            "records_classified": result["records_classified"],
            "records_reported": result["records_reported"],
            "fetch_retries_used": result["fetch_retries_used"],
            "fetch_failures": result["fetch_failures"],
            "zero_record_jobs": result["zero_record_jobs"],
            "permanently_dead": result["permanently_dead"],
        },
        context={"seed": 5, "blip_trigger": "first-fetch + 0.05s",
                 "blip_duration": 12.0},
    )


def run_dead_letter_heal(seed=7, timeout=2000.0):
    """Ship-path outage long enough to dead-letter, then a heal.

    The storage host (classifier side of the collector ship path) goes
    down for 30s while the sender's retransmission ladder only lasts
    ~15s: envelopes exhaust ``max_attempts`` and dead-letter mid-outage.
    Only the redelivery scheduler -- parked streams + heal probe -- can
    carry them across; afterwards `classified == shipped` must hold
    exactly and every trace chain must be complete, not terminal.
    """
    spec = GridTopologySpec(
        devices=[
            DeviceSpec("dev1", "server", "field"),
            DeviceSpec("dev2", "router", "field"),
            DeviceSpec("dev3", "server", "field"),
        ],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf1", "mgmt"), HostSpec("inf2", "mgmt")],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=seed,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=JOB_TIMEOUT,
        # Heartbeats off: the outage downs the root's host, and eviction
        # noise is not this scenario's subject.
        heartbeat_interval=None,
        reliability={
            # A short ladder (~15s) so the 30s outage defeats plain
            # retransmission and forces the redelivery path.
            "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
            "redelivery": True, "redelivery_interval": 2.0,
            "redelivery_max_interval": 8.0,
        },
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=BASE_LOSS),
        telemetry=True,
    )
    system = GridManagementSystem(spec)
    system.collectors[0].poll_retries = 12
    apply_fault_plan(system, dead_letter_heal_plan(
        "stor", down_at=10.0, down_duration=30.0))
    system.assign_goals(system.make_paper_goals(polls_per_type=4))
    _run_until_drained(system, timeout)
    channel = system.reliable_channel
    collector = system.collectors[0]
    recorder = system.telemetry.recorder
    ships = recorder.find(name="ship")
    return {
        "drained": _drained(system),
        "records_shipped": collector.records_shipped,
        "records_classified": system.classifier.records_classified,
        "dead_letters": len(channel.dead_letters),
        "redelivered": channel.redelivered,
        "redelivery_gave_up": channel.redelivery_gave_up,
        "permanently_dead": len(channel.permanently_dead()),
        "heal_probes": channel.heal_probes,
        "parked": channel.parked_count(),
        "terminal_ship_spans": sum(
            1 for span in ships if span.status == "dead-letter"),
        "redeliver_spans": len(recorder.find(name="redeliver")),
        "reports": len(system.interface.reports),
        "pipeline": system.telemetry.pipeline_report(),
    }


def test_dead_letter_then_heal(once):
    result = once(run_dead_letter_heal)
    emit("robustness_dead_letter_heal", format_table(
        ("metric", "value"),
        [
            ("drained", result["drained"]),
            ("records shipped / classified", "%d / %d" % (
                result["records_shipped"], result["records_classified"])),
            ("dead letters / redelivered / gave up", "%d / %d / %d" % (
                result["dead_letters"], result["redelivered"],
                result["redelivery_gave_up"])),
            ("permanently dead", result["permanently_dead"]),
            ("heal probes", result["heal_probes"]),
            ("redeliver spans", result["redeliver_spans"]),
            ("terminal ship spans", result["terminal_ship_spans"]),
            ("reports", result["reports"]),
        ],
        title="X7c: dead-letter then heal (30s outage vs ~15s ladder)",
    ))
    assert result["drained"]
    assert result["records_shipped"] > 0
    # The outage was long enough to defeat retransmission alone...
    assert result["dead_letters"] > 0
    # ...and the redelivery scheduler carried every parked envelope across.
    assert result["redelivered"] > 0
    assert result["redelivery_gave_up"] == 0
    assert result["permanently_dead"] == 0
    assert result["parked"] == 0
    # Heal-complete invariant: exact equality, not just no-silent-loss.
    assert result["records_classified"] == result["records_shipped"]
    # Telemetry: redelivered chains re-open and complete -- no ship span
    # terminates in a dead-letter status.
    assert result["terminal_ship_spans"] == 0
    assert result["redeliver_spans"] > 0
    pipeline = result["pipeline"]
    assert pipeline["incomplete"] == []
    assert pipeline["orphans"] == []
    assert pipeline["complete"] == pipeline["batches"]
    _merge_bench(
        prefix="dead_letter_heal",
        metrics={
            "records_shipped": result["records_shipped"],
            "records_classified": result["records_classified"],
            "dead_letters": result["dead_letters"],
            "redelivered": result["redelivered"],
            "redelivery_gave_up": result["redelivery_gave_up"],
            "permanently_dead": result["permanently_dead"],
            "heal_probes": result["heal_probes"],
            "redeliver_spans": result["redeliver_spans"],
        },
        context={"seed": 7, "down_at": 10.0, "down_duration": 30.0},
    )


# -- federation mesh partition/heal (ISSUE 8) ---------------------------------

MESH_SITES = 4
MESH_HEARTBEAT = 1.0
MESH_TIMEOUT = 4.0 * MESH_HEARTBEAT
PARTITION_AT = 15.0
PARTITION_LEN = 25.0  # > the ~15s ladder: redelivery must drain the rest


def run_mesh_partition(seed=9, timeout=2000.0):
    """A 4-site mesh loses one site mid-run, then heals.

    Site1 carries triple workload so its processor grid saturates and
    forwards jobs across the mesh while the partition is live.  The mesh
    must: detect the cut within its heartbeat timeout at every surviving
    site, degrade site4's devices to offline, keep forwarding around the
    hole (never into it), and -- after the heal -- drain to
    ``classified == shipped`` with every forwarded job completing exactly
    once and every trace chain complete or explicitly terminal.
    """
    from repro.core.federation import (
        MESH, FederatedManagementSystem, FederatedTopologySpec, SiteSpec)
    from repro.workloads.faults import site_partition_plan

    spec = FederatedTopologySpec(
        sites=[
            SiteSpec.simple("site%d" % (index + 1), device_count=2,
                            analyzer_count=1)
            for index in range(MESH_SITES)
        ],
        mode=MESH,
        seed=seed,
        dataset_threshold=6,
        job_timeout=JOB_TIMEOUT,
        heartbeat_interval=MESH_HEARTBEAT,
        forward_threshold=1,
        federation_reliability={
            # ~15s ladder, defeated by the 25s partition: parked streams
            # and the partition-aware heal probe must close the gap.
            "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
            "redelivery": True, "redelivery_interval": 2.0,
            "redelivery_max_interval": 8.0,
        },
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=BASE_LOSS),
        telemetry=True,
    )
    system = FederatedManagementSystem(spec)
    apply_fault_plan(system, site_partition_plan(
        "site4", partition_at=PARTITION_AT, heal_after=PARTITION_LEN))
    goals = system.make_site_goals(polls_per_type=4)
    goals["site1"] = goals["site1"] * 3  # saturate site1 -> forwarding
    system.assign_site_goals(goals)

    def drained():
        channel = system.reliable_channel
        return (
            channel.pending_count() == 0
            and channel.parked_count() == 0
            and all(r.classifier._open_dataset is None
                    for r in system.sites.values())
            and all(r.root.datasets for r in system.sites.values())
            and all(state.finished
                    for r in system.sites.values()
                    for state in r.root.datasets.values())
        )

    while system.sim.now < timeout and not drained():
        system.sim.run(until=system.sim.now + 5.0)
    system.sim.run(until=system.sim.now + 5.0)  # settle trailing acks
    channel = system.reliable_channel
    observers = [
        runtime.gateway for name, runtime in sorted(system.sites.items())
        if name != "site4"
    ]
    detection_delay = max(
        at for gateway in observers
        for peer, at in gateway.partitions if peer == "site4"
    ) - PARTITION_AT
    forwarding = system.forwarding_report()
    dead_records = _dead_letter_records(channel)
    return {
        "drained": drained(),
        "records_shipped": system.records_shipped(),
        "records_classified": system.records_classified(),
        "dead_letter_records": dead_records,
        "silent_loss": max(
            0, system.records_shipped() - system.records_classified()
            - dead_records),
        "detection_delay": detection_delay,
        "observers_detected": sum(
            1 for gateway in observers
            if any(peer == "site4" for peer, _ in gateway.partitions)),
        "healed": all(
            state == "up"
            for states in system.link_state_report().values()
            for state in states.values()),
        "jobs_forwarded": forwarding["jobs_forwarded"],
        "results_delivered": forwarding["results_delivered"],
        "forwards_expired": forwarding["forwards_expired"],
        "duplicate_results": forwarding["duplicate_results"],
        "jobs_accepted": forwarding["jobs_accepted"],
        "results_returned": forwarding["results_returned"],
        "partitions_declared": forwarding["partitions_declared"],
        "heals_declared": forwarding["heals_declared"],
        "permanently_dead": len(channel.permanently_dead()),
        "redelivered": channel.redelivered,
        "retransmits": channel.retransmits,
        "makespan": max(
            (report.generated_at
             for interface in system.interfaces()
             for report in interface.reports), default=0.0),
        "pipeline": system.telemetry.pipeline_report(),
        "span_count": len(system.telemetry.recorder),
    }


def test_mesh_partition_heal(once):
    result = once(run_mesh_partition)
    emit("robustness_mesh_partition", format_table(
        ("metric", "value"),
        [
            ("drained", result["drained"]),
            ("records shipped / classified", "%d / %d" % (
                result["records_shipped"], result["records_classified"])),
            ("silent loss", result["silent_loss"]),
            ("detection delay (s)", "%.2f" % result["detection_delay"]),
            ("observers detecting", "%d / %d" % (
                result["observers_detected"], MESH_SITES - 1)),
            ("healed", result["healed"]),
            ("jobs forwarded / delivered / expired", "%d / %d / %d" % (
                result["jobs_forwarded"], result["results_delivered"],
                result["forwards_expired"])),
            ("duplicate results", result["duplicate_results"]),
            ("partitions / heals declared", "%d / %d" % (
                result["partitions_declared"], result["heals_declared"])),
            ("redelivered", result["redelivered"]),
            ("makespan (s)", "%.1f" % result["makespan"]),
            ("trace chains complete / shipped", "%d / %d" % (
                result["pipeline"]["complete"],
                result["pipeline"]["batches"])),
        ],
        title="X8: 4-site mesh, site4 partitioned %gs..%gs" % (
            PARTITION_AT, PARTITION_AT + PARTITION_LEN),
    ))
    assert result["drained"]
    assert result["records_shipped"] > 0
    # -- no silent loss globally; the heal drains to exact completeness --
    assert result["silent_loss"] == 0
    assert result["records_classified"] == result["records_shipped"]
    assert result["permanently_dead"] == 0
    # -- every surviving site detected the cut within the timeout --------
    assert result["observers_detected"] == MESH_SITES - 1
    assert 0 < result["detection_delay"] <= MESH_TIMEOUT
    assert result["healed"]
    # -- the saturation really crossed the boundary, exactly once --------
    assert result["jobs_forwarded"] > 0
    assert result["results_delivered"] + result["forwards_expired"] == \
        result["jobs_forwarded"]
    assert result["jobs_accepted"] == result["results_returned"]
    # -- cross-site trace chains audit complete or explicitly terminal ---
    pipeline = result["pipeline"]
    assert pipeline["orphans"] == []
    assert pipeline["incomplete"] == []
    assert pipeline["complete"] == pipeline["batches"]
    _merge_bench(
        prefix="mesh_partition",
        metrics={
            "records_shipped": result["records_shipped"],
            "records_classified": result["records_classified"],
            "silent_loss": result["silent_loss"],
            "detection_delay": result["detection_delay"],
            # floor-gated in CI at 0: detection must beat the timeout
            "detection_margin": MESH_TIMEOUT - result["detection_delay"],
            "jobs_forwarded": result["jobs_forwarded"],
            "results_delivered": result["results_delivered"],
            "forwards_expired": result["forwards_expired"],
            "duplicate_results": result["duplicate_results"],
            "partitions_declared": result["partitions_declared"],
            "heals_declared": result["heals_declared"],
            "permanently_dead": result["permanently_dead"],
            "redelivered": result["redelivered"],
            "makespan": result["makespan"],
            "trace_batches": result["pipeline"]["batches"],
            "trace_chains_complete": result["pipeline"]["complete"],
            "trace_orphan_spans": len(result["pipeline"]["orphans"]),
        },
        context={
            "seed": 9,
            "sites": MESH_SITES,
            "heartbeat_interval": MESH_HEARTBEAT,
            "heartbeat_timeout": MESH_TIMEOUT,
            "partition_window": [PARTITION_AT, PARTITION_AT + PARTITION_LEN],
            "base_loss": BASE_LOSS,
        },
    )


# -- SLO burn-rate drill (ISSUE 9) --------------------------------------------

SLO_OUTAGE_AT = 2.0
SLO_OUTAGE_LEN = 30.0
SLO_TARGET = 10.0  # healthy ship p90 sits well under this; outage blows it


def run_slo_burn(seed=11, timeout=2000.0):
    """The X7 storage outage, observed by the health layer.

    A separate cell rather than a rider on ``run_chaos``: the monitor's
    management-report traffic consumes reliable-channel loss draws, which
    would silently shift the gated chaos metrics.  The contract under
    test: the ship-stage burn trips *during* the outage (dead-letter
    statuses count against the budget immediately, before any latency is
    even measurable) and clears after the heal -- and both edges arrive
    at the interface grid as findings over the ordinary alert path.
    """
    from repro.core.health import SLOSpec

    spec = GridTopologySpec(
        devices=[
            DeviceSpec("dev1", "server", "field"),
            DeviceSpec("dev2", "router", "field"),
            DeviceSpec("dev3", "server", "field"),
        ],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf1", "mgmt"), HostSpec("inf2", "mgmt")],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=seed,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=JOB_TIMEOUT,
        heartbeat_interval=HEARTBEAT_INTERVAL,
        reliability={
            # ~15s ladder, defeated by the 30s outage: dead-letters feed
            # the burn windows while redelivery heals the data path.
            "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
            "redelivery": True, "redelivery_interval": 2.0,
            "redelivery_max_interval": 8.0,
        },
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        slos=[SLOSpec("ship", p=90.0, target=SLO_TARGET, window=120.0,
                      fast_window=30.0)],
    )
    system = GridManagementSystem(spec)
    system.collectors[0].poll_retries = 8
    apply_fault_plan(system, FaultPlan([
        FaultEvent(SLO_OUTAGE_AT, FaultEvent.HOST_DOWN, "stor",
                   clear_after=SLO_OUTAGE_LEN),
    ]))
    system.assign_goals(system.make_paper_goals(polls_per_type=4))
    while system.sim.now < timeout and not (
            _drained(system) and not system.health.active_burns()):
        system.sim.run(until=system.sim.now + 5.0)
    system.sim.run(until=system.sim.now + 5.0)  # settle trailing acks
    tracker = system.health.trackers[0]
    raises = [at for at, event, _, _ in tracker.events if event == "raise"]
    clears = [at for at, event, _, _ in tracker.events if event == "clear"]
    interface = system.interface
    return {
        "drained": _drained(system),
        "records_shipped": system.collectors[0].records_shipped,
        "records_classified": system.classifier.records_classified,
        "burns_raised": tracker.raised,
        "burns_cleared": tracker.cleared,
        "burning_at_end": len(system.health.active_burns()),
        "first_raise_at": raises[0] if raises else -1.0,
        "last_clear_at": clears[-1] if clears else -1.0,
        "peak_fast_burn": max(
            (fast for _, event, fast, _ in tracker.events
             if event == "raise"), default=0.0),
        "findings_shipped": system.health.findings_shipped,
        "burn_alerts": sum(1 for alert in interface.alerts
                           if alert.finding.kind == "slo-burn"),
        "clear_findings": sum(
            1 for report in interface.reports
            for finding in report.findings
            if finding.kind == "slo-burn-clear"),
        "overall_state": system.health.scorecards()["overall"],
        "ship_p99": system.health.stage_latency()["ship"]["p99"],
    }


def _catalog_system(scenario, analysis_hosts=2, seed=11, slos=None):
    """Build + faultify a catalog scenario on the chaos-matrix topology.

    Mirrors ``tests/test_robustness_scenarios.py``: the scenario is
    declarative -- ``spec_overrides`` configure the spec, ``fault_plan``
    schedules the failures, ``build_goals`` shapes the workload.
    """
    from repro.core.system import GridTopologySpec

    extra = {} if slos is None else {"slos": slos}
    spec = GridTopologySpec(
        devices=scenario.devices,
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf%d" % (index + 1), "mgmt")
                        for index in range(analysis_hosts)],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=seed,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=JOB_TIMEOUT,
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        **scenario.spec_overrides,
        **extra
    )
    system = GridManagementSystem(spec)
    system.collectors[0].poll_retries = 8
    if scenario.fault_plan is not None:
        apply_fault_plan(system, scenario.fault_plan)
    system.assign_goals(scenario.build_goals(seed=seed))
    return system


# -- scenario catalog: split-brain gossip (ISSUE 10) --------------------------

SPLIT_BRAIN_AT = 15.0
SPLIT_BRAIN_HEAL = 30.0
GOSSIP_HEARTBEAT_TIMEOUT = 8.0  # 4 x the catalog's heartbeat_interval


def run_split_brain(timeout=2000.0):
    """The catalog's ``split_brain`` scenario, gossip detection gated.

    The root's host plus half the analyzer hosts become an island; the
    severed analyzers' gossip views must confirm the root dead within
    the heartbeat timeout (``detection_margin >= 0``, floor-gated in
    CI), elect a stand-in, and the run must still drain heal-complete
    after the island dissolves.
    """
    from repro.workloads.scenarios import split_brain_scenario

    scenario = split_brain_scenario(
        island_hosts=("stor", "inf1", "inf2"),
        partition_at=SPLIT_BRAIN_AT, heal_after=SPLIT_BRAIN_HEAL)
    system = _catalog_system(scenario, analysis_hosts=4)
    # run well past the heal so refutation + flush traffic settles
    system.sim.run(until=SPLIT_BRAIN_AT + SPLIT_BRAIN_HEAL + 30.0)
    _run_until_drained(system, timeout)
    mesh = system.gossip
    detection = mesh.detection_times()
    severed = ("analyzer-3", "analyzer-4")
    delays = [detection[name] - SPLIT_BRAIN_AT
              for name in severed if name in detection]
    detection_delay = max(delays) if len(delays) == len(severed) else -1.0
    recoveries = mesh.recovery_times()
    stats = mesh.stats()
    channel = system.reliable_channel
    return {
        "drained": _drained(system),
        "records_shipped": system.collectors[0].records_shipped,
        "records_classified": system.classifier.records_classified,
        "silent_loss": max(
            0, system.collectors[0].records_shipped
            - system.classifier.records_classified
            - _dead_letter_records(channel)),
        "observers_detected": len(delays),
        "detection_delay": detection_delay,
        "detection_margin": GOSSIP_HEARTBEAT_TIMEOUT - detection_delay,
        "recovered_views": sum(
            1 for name in severed if name in recoveries),
        "stand_ins": sorted(
            {who for who in mesh.stand_ins().values() if who is not None}),
        "rounds": stats["rounds"],
        "suspects_raised": stats["suspects_raised"],
        "confirms": stats["confirms"],
        "refutations": stats["refutations"],
        "root_duplicate_results": system.root.duplicate_results,
        "containers_evicted": system.root.containers_evicted,
        "reports": len(system.interface.reports),
    }


def test_split_brain_scenario(once):
    result = once(run_split_brain)
    emit("robustness_split_brain", format_table(
        ("metric", "value"),
        [
            ("drained", result["drained"]),
            ("records shipped / classified", "%d / %d" % (
                result["records_shipped"], result["records_classified"])),
            ("silent loss", result["silent_loss"]),
            ("severed observers detecting", "%d / 2" %
             result["observers_detected"]),
            ("detection delay (s)", "%.2f" % result["detection_delay"]),
            ("detection margin (s)", "%.2f" % result["detection_margin"]),
            ("views recovered after heal", result["recovered_views"]),
            ("stand-ins elected", ", ".join(result["stand_ins"]) or "none"),
            ("gossip rounds", result["rounds"]),
            ("suspects / confirms / refutations", "%d / %d / %d" % (
                result["suspects_raised"], result["confirms"],
                result["refutations"])),
            ("root duplicate results", result["root_duplicate_results"]),
            ("reports", result["reports"]),
        ],
        title="X10a: split brain (island %gs..%gs, gossip detection)" % (
            SPLIT_BRAIN_AT, SPLIT_BRAIN_AT + SPLIT_BRAIN_HEAL),
    ))
    assert result["drained"]
    assert result["records_shipped"] > 0
    # Heal-complete after the island dissolves.
    assert result["silent_loss"] == 0
    assert result["records_classified"] == result["records_shipped"]
    # Detection survived the root outage: both severed analyzers
    # confirmed the root inside the heartbeat timeout...
    assert result["observers_detected"] == 2
    assert 0.0 < result["detection_delay"] <= GOSSIP_HEARTBEAT_TIMEOUT
    assert result["detection_margin"] >= 0.0  # the CI floor
    # ...elected a stand-in, and reconciled on heal.
    assert result["stand_ins"]
    assert result["recovered_views"] == 2
    assert result["reports"] >= 1
    _merge_bench(
        prefix="split_brain",
        metrics={
            "records_shipped": result["records_shipped"],
            "records_classified": result["records_classified"],
            "silent_loss": result["silent_loss"],
            "detection_delay": result["detection_delay"],
            # floor-gated in CI at 0: gossip must beat the timeout
            "detection_margin": result["detection_margin"],
            "observers_detected": result["observers_detected"],
            "recovered_views": result["recovered_views"],
            "gossip_rounds": result["rounds"],
            "suspects_raised": result["suspects_raised"],
            "confirms": result["confirms"],
            "refutations": result["refutations"],
            "root_duplicate_results": result["root_duplicate_results"],
        },
        context={
            "seed": 11,
            "island": ["stor", "inf1", "inf2"],
            "partition_window": [SPLIT_BRAIN_AT,
                                 SPLIT_BRAIN_AT + SPLIT_BRAIN_HEAL],
            "heartbeat_timeout": GOSSIP_HEARTBEAT_TIMEOUT,
            "stand_ins": result["stand_ins"],
        },
    )


# -- scenario catalog: flash crowd (ISSUE 10) ---------------------------------

FLASH_MULTIPLIER = 10.0
FLASH_DAY = 60.0
# Fixed horizon, as in the matrix cell: the crowd's backlog drains through
# the shared storage-host pipeline by ~600s; the drain check cannot be used
# mid-day because queued collector goals are invisible to it.
FLASH_HORIZON = 800.0


def _flash_system(spiked, seed=11):
    from repro.core.health import SLOSpec
    from repro.workloads.scenarios import TrafficShape, flash_crowd_scenario

    scenario = flash_crowd_scenario(
        spike_multiplier=FLASH_MULTIPLIER, requests_per_type=4,
        day_length=FLASH_DAY, spike_start=0.4, spike_length=0.1)
    if not spiked:
        # the unspiked diurnal curve: same day, no crowd
        scenario.traffic = TrafficShape(day_length=FLASH_DAY)
    # An inert SLO (never trips) attaches the health layer, whose
    # streaming histograms give us the ship-stage p99.
    return _catalog_system(
        scenario, analysis_hosts=2, seed=seed,
        slos=[SLOSpec("ship", p=99.0, target=1000.0, window=120.0)])


def run_flash_crowd():
    """The catalog's ``flash_crowd`` scenario vs its unspiked baseline.

    Same topology, same seed, same diurnal day -- one run absorbs a
    ``FLASH_MULTIPLIER``x crowd inside 10% of the day.  Both must drain
    heal-complete (overload may *delay* records, never lose them) and
    the crowd's ship-stage p99 degradation is recorded as
    ``flash_crowd_p99_ratio`` and ceiling-gated in CI.
    """
    results = {}
    for label, spiked in (("baseline", False), ("spiked", True)):
        system = _flash_system(spiked)
        system.sim.run(until=FLASH_HORIZON)
        results[label] = {
            "drained": _drained(system),
            "records_shipped": system.collectors[0].records_shipped,
            "records_classified": system.classifier.records_classified,
            "ship_p99": system.health.stage_latency()["ship"]["p99"],
            "makespan": max(
                (r.generated_at for r in system.interface.reports),
                default=0.0),
        }
    baseline, spiked = results["baseline"], results["spiked"]
    return {
        "baseline": baseline,
        "spiked": spiked,
        "p99_ratio": (spiked["ship_p99"] / baseline["ship_p99"]
                      if baseline["ship_p99"] > 0 else -1.0),
    }


def test_flash_crowd_scenario(once):
    result = once(run_flash_crowd)
    baseline, spiked = result["baseline"], result["spiked"]
    emit("robustness_flash_crowd", format_table(
        ("metric", "baseline", "%gx crowd" % FLASH_MULTIPLIER),
        [
            ("drained", baseline["drained"], spiked["drained"]),
            ("records shipped", baseline["records_shipped"],
             spiked["records_shipped"]),
            ("records classified", baseline["records_classified"],
             spiked["records_classified"]),
            ("ship p99 (s)", "%.2f" % baseline["ship_p99"],
             "%.2f" % spiked["ship_p99"]),
            ("makespan (s)", "%.1f" % baseline["makespan"],
             "%.1f" % spiked["makespan"]),
        ],
        title="X10b: flash crowd (%gx spike inside 10%% of a %gs day)" % (
            FLASH_MULTIPLIER, FLASH_DAY),
    ))
    # Both runs drain heal-complete: overload delays, never loses.
    for run in (baseline, spiked):
        assert run["drained"]
        assert run["records_shipped"] > 0
        assert run["records_classified"] == run["records_shipped"]
    # The crowd was real: ~multiplier-x the baseline volume shipped.
    assert spiked["records_shipped"] > 2 * baseline["records_shipped"]
    assert result["p99_ratio"] > 0
    _merge_bench(
        prefix="flash_crowd",
        metrics={
            "records_shipped": spiked["records_shipped"],
            "records_classified": spiked["records_classified"],
            "baseline_records_shipped": baseline["records_shipped"],
            "ship_p99": spiked["ship_p99"],
            "baseline_ship_p99": baseline["ship_p99"],
            # ratio-gated in CI: how far the crowd degrades the ship p99
            "p99_ratio": result["p99_ratio"],
            "makespan": spiked["makespan"],
            "baseline_makespan": baseline["makespan"],
        },
        context={
            "seed": 11,
            "spike_multiplier": FLASH_MULTIPLIER,
            "day_length": FLASH_DAY,
            "spike_window_fraction": [0.4, 0.5],
        },
    )


def test_slo_burn_raised_and_cleared(once):
    result = once(run_slo_burn)
    emit("robustness_slo_burn", format_table(
        ("metric", "value"),
        [
            ("drained", result["drained"]),
            ("burns raised / cleared", "%d / %d" % (
                result["burns_raised"], result["burns_cleared"])),
            ("first raise / last clear (s)", "%.1f / %.1f" % (
                result["first_raise_at"], result["last_clear_at"])),
            ("peak fast burn (x budget)", "%.1f" % result["peak_fast_burn"]),
            ("burn alerts at interface", result["burn_alerts"]),
            ("overall scorecard at end", result["overall_state"]),
            ("ship p99 (s)", "%.2f" % result["ship_p99"]),
        ],
        title="X7d: SLO burn drill (ship p90 < %gs vs the 30s outage)" %
              SLO_TARGET,
    ))
    assert result["drained"]
    assert result["records_shipped"] > 0
    # The burn tripped while the outage was live (or its parked backlog
    # was still redelivering), not in hindsight...
    assert result["burns_raised"] >= 1
    assert result["first_raise_at"] >= SLO_OUTAGE_AT
    assert result["peak_fast_burn"] >= 2.0  # the trip threshold
    # ...and every raise eventually cleared: no stuck gauges.
    assert result["burns_cleared"] == result["burns_raised"]
    assert result["burning_at_end"] == 0
    assert result["last_clear_at"] > SLO_OUTAGE_AT + SLO_OUTAGE_LEN
    # Both edges crossed the alert path: burns page, clears inform.
    assert result["burn_alerts"] >= 1
    assert result["clear_findings"] >= 1
    assert result["findings_shipped"] == \
        result["burns_raised"] + result["burns_cleared"]
    assert result["overall_state"] == "green"
    _merge_bench(
        prefix="slo",
        metrics={
            "burns_raised": result["burns_raised"],
            "burns_cleared": result["burns_cleared"],
            "burning_at_end": result["burning_at_end"],
            "first_raise_at": result["first_raise_at"],
            "last_clear_at": result["last_clear_at"],
            "peak_fast_burn": result["peak_fast_burn"],
            "burn_alerts": result["burn_alerts"],
            "findings_shipped": result["findings_shipped"],
            "ship_p99": result["ship_p99"],
        },
        context={
            "seed": 11,
            "outage_window": [SLO_OUTAGE_AT, SLO_OUTAGE_AT + SLO_OUTAGE_LEN],
            "slo": "ship p90 < %gs over 120s (fast 30s)" % SLO_TARGET,
        },
    )
