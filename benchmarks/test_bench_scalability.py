"""X3 -- Scalability: grow the managed network and the grid together.

Paper, section 4: "If the system requires a greater processing capacity,
we need only to add it to the grid" -- extensibility is the claimed
advantage over scaling up a single manager.  This bench grows the device
population and request volume, first with a *fixed* grid (max utilization
climbs), then growing the grid alongside (max per-host units stay roughly
flat relative to workload).

The sharded bigtopo bench below extends X3 to the wall-clock axis: the
1000- and 5000-device scaling scenarios on the consistent-hash sharded
(``shards=8``) classifier/storage grid.  Its per-device wall figures merge
into ``BENCH_kernel.json`` (owned by ``test_bench_kernel.py``; this bench
only read-modify-writes its own keys) so ``check_perf_regression.py`` can
gate near-linear scale-out in CI.
"""

import json
import os
import time

from repro.evaluation.experiments import scalability_experiment
from repro.evaluation.tables import format_table

from conftest import RESULTS_DIR, emit

BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_kernel.json")

FIXED_GRID_POINTS = [
    {"device_count": 3, "requests_per_type": 5,
     "collector_count": 2, "analyzer_count": 2},
    {"device_count": 6, "requests_per_type": 10,
     "collector_count": 2, "analyzer_count": 2},
    {"device_count": 12, "requests_per_type": 20,
     "collector_count": 2, "analyzer_count": 2},
]

GROWING_GRID_POINTS = [
    {"device_count": 3, "requests_per_type": 5,
     "collector_count": 1, "analyzer_count": 1},
    {"device_count": 6, "requests_per_type": 10,
     "collector_count": 2, "analyzer_count": 2},
    {"device_count": 12, "requests_per_type": 20,
     "collector_count": 4, "analyzer_count": 4},
]


def _render(rows, title):
    return format_table(
        ("devices", "req/type", "collectors", "analyzers",
         "max CPU host", "max CPU units", "total CPU units",
         "makespan (s)"),
        [
            (
                row["device_count"], row["requests_per_type"],
                row["collector_count"], row["analyzer_count"],
                row["max_cpu_host"], "%.0f" % row["max_cpu_units"],
                "%.0f" % row["total_cpu_units"], "%.1f" % row["makespan"],
            )
            for row in rows
        ],
        title=title,
    )


def test_scalability(once):
    def run_both():
        fixed = scalability_experiment(FIXED_GRID_POINTS, seed=3)
        growing = scalability_experiment(GROWING_GRID_POINTS, seed=3)
        return fixed, growing

    fixed, growing = once(run_both)
    emit("scalability", "\n\n".join([
        _render(fixed, "X3a: fixed 2+2 grid under growing workload"),
        _render(growing, "X3b: grid grown with the workload"),
    ]))
    assert all(row["completed"] for row in fixed + growing)
    # fixed grid: the bottleneck's absolute load grows ~linearly with work
    assert fixed[-1]["max_cpu_units"] > 3 * fixed[0]["max_cpu_units"]
    # growing grid: bottleneck load grows far slower than the 4x workload
    ratio_growing = growing[-1]["max_cpu_units"] / growing[0]["max_cpu_units"]
    ratio_fixed = fixed[-1]["max_cpu_units"] / fixed[0]["max_cpu_units"]
    assert ratio_growing < ratio_fixed
    # total work scales with the workload either way (no lost records)
    assert growing[-1]["total_cpu_units"] > 3 * growing[0]["total_cpu_units"]


# -- sharded bigtopo wall-clock scaling --------------------------------------

SHARDED_SEED = 42
SHARDED_SHARDS = 8
SHARDED_REQUESTS_PER_TYPE = 50
SHARDED_COLLECTORS = 16
SHARDED_ANALYZERS = 14
SHARDED_ROUNDS = 3


def _sharded_bigtopo_wall(device_count):
    """Best-of-rounds wall seconds for one sharded scaling-scenario run."""
    from repro.evaluation.experiments import run_scenario_on_grid
    from repro.workloads.scenarios import scaling_scenario

    scenario = scaling_scenario(device_count, SHARDED_REQUESTS_PER_TYPE)
    best = None
    for _ in range(SHARDED_ROUNDS):
        start = time.perf_counter()
        result = run_scenario_on_grid(
            scenario, seed=SHARDED_SEED, timeout=8000,
            collector_count=SHARDED_COLLECTORS,
            analyzer_count=SHARDED_ANALYZERS,
            dataset_threshold=scenario.total_requests,
            shards=SHARDED_SHARDS,
        )
        elapsed = time.perf_counter() - start
        assert result.completed
        assert result.records_analyzed == scenario.total_requests
        if best is None or elapsed < best:
            best = elapsed
    return best


def _merge_bench_metrics(updates):
    """Merge keys into BENCH_kernel.json without clobbering its owner.

    ``test_bench_kernel.py`` rewrites the whole file; this bench only owns
    the ``bigtopo{1000,5000}_*`` keys, so it loads whatever is on disk (or
    starts a fresh payload when run standalone) and updates in place.
    """
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            payload = json.load(handle)
    else:
        payload = {"bench": "kernel", "metrics": {}}
    payload.setdefault("metrics", {}).update(updates)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_bench_sharded_bigtopo_scaling():
    """Wall-per-device at 5000 devices stays near the 1000-device figure.

    The tight 1.3x ceiling is CI-gated by ``check_perf_regression.py``
    (``--ratio bigtopo5000_wall_per_device/bigtopo1000_wall_per_device``);
    here a generous 2x bound catches gross super-linear regressions even
    in local runs that skip the gate script.
    """
    wall_1000 = _sharded_bigtopo_wall(1000)
    wall_5000 = _sharded_bigtopo_wall(5000)
    per_device_1000 = wall_1000 / 1000.0
    per_device_5000 = wall_5000 / 5000.0

    _merge_bench_metrics({
        "bigtopo1000_wall_seconds": wall_1000,
        "bigtopo1000_wall_per_device": per_device_1000,
        "bigtopo5000_wall_seconds": wall_5000,
        "bigtopo5000_wall_per_device": per_device_5000,
    })
    emit("scalability_sharded", format_table(
        ("devices", "shards", "req/type", "wall (s)", "wall/device (ms)"),
        [
            (1000, SHARDED_SHARDS, SHARDED_REQUESTS_PER_TYPE,
             "%.3f" % wall_1000, "%.4f" % (per_device_1000 * 1e3)),
            (5000, SHARDED_SHARDS, SHARDED_REQUESTS_PER_TYPE,
             "%.3f" % wall_5000, "%.4f" % (per_device_5000 * 1e3)),
        ],
        title="X3c: sharded (shards=%d) bigtopo wall-clock scaling"
              % SHARDED_SHARDS,
    ))
    assert per_device_5000 <= 2.0 * per_device_1000, (
        "super-linear scale-out: %.3f ms/device at 5000 vs %.3f at 1000"
        % (per_device_5000 * 1e3, per_device_1000 * 1e3))
