"""X3 -- Scalability: grow the managed network and the grid together.

Paper, section 4: "If the system requires a greater processing capacity,
we need only to add it to the grid" -- extensibility is the claimed
advantage over scaling up a single manager.  This bench grows the device
population and request volume, first with a *fixed* grid (max utilization
climbs), then growing the grid alongside (max per-host units stay roughly
flat relative to workload).
"""

from repro.evaluation.experiments import scalability_experiment
from repro.evaluation.tables import format_table

from conftest import emit

FIXED_GRID_POINTS = [
    {"device_count": 3, "requests_per_type": 5,
     "collector_count": 2, "analyzer_count": 2},
    {"device_count": 6, "requests_per_type": 10,
     "collector_count": 2, "analyzer_count": 2},
    {"device_count": 12, "requests_per_type": 20,
     "collector_count": 2, "analyzer_count": 2},
]

GROWING_GRID_POINTS = [
    {"device_count": 3, "requests_per_type": 5,
     "collector_count": 1, "analyzer_count": 1},
    {"device_count": 6, "requests_per_type": 10,
     "collector_count": 2, "analyzer_count": 2},
    {"device_count": 12, "requests_per_type": 20,
     "collector_count": 4, "analyzer_count": 4},
]


def _render(rows, title):
    return format_table(
        ("devices", "req/type", "collectors", "analyzers",
         "max CPU host", "max CPU units", "total CPU units",
         "makespan (s)"),
        [
            (
                row["device_count"], row["requests_per_type"],
                row["collector_count"], row["analyzer_count"],
                row["max_cpu_host"], "%.0f" % row["max_cpu_units"],
                "%.0f" % row["total_cpu_units"], "%.1f" % row["makespan"],
            )
            for row in rows
        ],
        title=title,
    )


def test_scalability(once):
    def run_both():
        fixed = scalability_experiment(FIXED_GRID_POINTS, seed=3)
        growing = scalability_experiment(GROWING_GRID_POINTS, seed=3)
        return fixed, growing

    fixed, growing = once(run_both)
    emit("scalability", "\n\n".join([
        _render(fixed, "X3a: fixed 2+2 grid under growing workload"),
        _render(growing, "X3b: grid grown with the workload"),
    ]))
    assert all(row["completed"] for row in fixed + growing)
    # fixed grid: the bottleneck's absolute load grows ~linearly with work
    assert fixed[-1]["max_cpu_units"] > 3 * fixed[0]["max_cpu_units"]
    # growing grid: bottleneck load grows far slower than the 4x workload
    ratio_growing = growing[-1]["max_cpu_units"] / growing[0]["max_cpu_units"]
    ratio_fixed = fixed[-1]["max_cpu_units"] / fixed[0]["max_cpu_units"]
    assert ratio_growing < ratio_fixed
    # total work scales with the workload either way (no lost records)
    assert growing[-1]["total_cpu_units"] > 3 * growing[0]["total_cpu_units"]
