"""X5 -- Sensitivity of the Figure 6 result to the estimated Table 1 cells.

The available copy of the paper lost the digits of Request B/C and the
Storing row; DESIGN.md documents the estimates used.  This bench scales
*only the estimated cells* by 0.5x / 1x / 2x and shows the architecture
ordering of Figure 6 is invariant -- the reproduction does not hinge on
the fill-ins.
"""

from repro.evaluation.experiments import sensitivity_experiment
from repro.evaluation.tables import format_table
from repro.workloads.scenarios import paper_scenario

from conftest import emit

FACTORS = (0.5, 1.0, 2.0)


def test_sensitivity(once):
    scenario = paper_scenario()
    rows = once(sensitivity_experiment, scenario, FACTORS, seed=13)
    table_rows = [
        (
            "%.1fx" % row["factor"],
            " > ".join(reversed(row["ordering"])),
            "%.0f" % row["max_units"]["centralized"],
            "%.0f" % row["max_units"]["multiagent"],
            "%.0f" % row["max_units"]["grid"],
        )
        for row in rows
    ]
    emit("sensitivity", format_table(
        ("estimate scale", "max-CPU ordering (worst first)",
         "centralized", "multiagent", "grid"),
        table_rows,
        title="X5: Figure 6 ordering under scaled estimated cells",
    ))
    for row in rows:
        assert row["ordering"] == ["grid", "multiagent", "centralized"], \
            "ordering broke at factor %s" % row["factor"]
