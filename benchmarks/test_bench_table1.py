"""T1 -- Table 1: relative times of management tasks.

Regenerates the paper's cost table from the :class:`CostModel` and checks
the verbatim cells.  Cells whose digits did not survive the available copy
of the paper are printed with an ``(est)`` marker (see DESIGN.md,
"Faithfulness notes").
"""

from repro.core.costs import CostModel, TaskCost
from repro.evaluation.tables import format_number, format_table

from conftest import emit


def render_table1(model):
    rows = []
    for name, cost in model.table_rows():
        rows.append((
            name,
            format_number(cost.cpu),
            format_number(cost.net),
            format_number(cost.disk),
            "est" if cost.estimated else "paper",
        ))
    return format_table(
        ("Tasks", "CPU", "Network", "Disc", "source"), rows,
        title="Table 1: Relative times of management tasks",
    )


def test_table1(once):
    model = once(CostModel)
    emit("table1", render_table1(model))
    # verbatim cells from the paper
    assert model.request_cost("A") == TaskCost(cpu=10, net=5)
    assert model.parse_cost("A").cpu == 15
    assert model.parse_cost("B").cpu == 15
    assert model.parse_cost("C").cpu == 15
    for rtype in ("A", "B", "C"):
        assert model.infer_cost(rtype) == TaskCost(cpu=20, net=5)
    assert model.cross_cost() == TaskCost(cpu=40, net=8)
    # estimated cells are marked as such
    assert model.request_cost("B").estimated
    assert model.store_cost().estimated
