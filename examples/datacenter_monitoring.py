"""Continuous datacenter monitoring with runtime-learned rules.

Scenario: a 12-server datacenter monitored continuously (periodic goals on
every device).  Mid-run, one server springs a memory leak and another
starts filling its disk.  The stock rule base flags the disk; the
operations team then teaches the grid a stricter memory rule through the
interface grid's feedback channel (the paper's "the agents of the grid can
learn new rules"), and the next collection cycles page them.

Run:  python examples/datacenter_monitoring.py
"""

from repro import DeviceSpec, GridManagementSystem, GridTopologySpec, HostSpec
from repro.rules.conditions import LT, Pattern, Var
from repro.rules.engine import Rule
from repro.workloads.generator import WorkloadGenerator

SERVERS = 12
CYCLES = 4
POLL_INTERVAL = 30.0


def build_system():
    spec = GridTopologySpec(
        devices=[DeviceSpec("srv%02d" % i, "server", "dc1")
                 for i in range(1, SERVERS + 1)],
        collector_hosts=[HostSpec("probe1", "dc1"), HostSpec("probe2", "dc1")],
        analysis_hosts=[HostSpec("brain1", "dc1"), HostSpec("brain2", "dc1")],
        storage_host=HostSpec("tsdb", "dc1"),
        interface_host=HostSpec("noc", "dc1"),
        seed=7,
        dataset_threshold=SERVERS * 3,   # one dataset per sweep
        policy="capacity",
    )
    return GridManagementSystem(spec)


def teach_memory_rule(system):
    """Feedback loop: a stricter low-memory rule, learned at runtime.

    250 MB available is well under the healthy steady state (~600 MB on
    these 1 GB servers), so only a genuine leak trips it.
    """
    strict = Rule(
        "low-memory-strict",
        [Pattern("sample", bind="sample", metric="mem_available",
                 value=LT(250 * 1024), device=Var("device"),
                 site=Var("site"))],
        lambda context: context.assert_fact(
            "problem", kind="memory-pressure", severity="major",
            device=context["device"], site=context["site"],
            value=context["sample"]["value"], metric="mem_available"),
        group="performance", level=1,
    )
    skipped = system.interface.submit_rule(
        strict, [analyzer.name for analyzer in system.analyzers])
    print("taught rule 'low-memory-strict' (skipped: %s)" % (skipped or "none"))


def main():
    system = build_system()
    generator = WorkloadGenerator(seed=7)
    goals = generator.periodic_goals(
        sorted(system.devices), polls_per_device=CYCLES,
        interval=POLL_INTERVAL,
    )
    system.assign_goals(goals)

    # faults appear during the second sweep
    system.sim.schedule(
        POLL_INTERVAL + 5.0,
        system.devices["srv03"].inject_fault, ("memory_leak",))
    system.sim.schedule(
        POLL_INTERVAL + 5.0,
        system.devices["srv07"].inject_fault, ("disk_filling",))

    # ... and the NOC teaches the stricter rule after the second sweep
    system.sim.schedule(2 * POLL_INTERVAL, teach_memory_rule, (system,))

    total_records = SERVERS * 3 * CYCLES
    completed = system.run_until_records(total_records, timeout=20000)
    system.stop_devices()

    print("completed:", completed,
          " records analyzed:", sum(r.records_analyzed
                                    for r in system.interface.reports))
    print()
    print(system.utilization_report("datacenter").render())
    print()
    kinds = {}
    for finding in system.interface.all_findings():
        kinds.setdefault(finding.kind, set()).add(finding.device)
    print("findings by kind:")
    for kind in sorted(kinds):
        print("  %-22s %s" % (kind, ", ".join(sorted(kinds[kind]))))
    print("alerts raised: %d" % len(system.interface.alerts))


if __name__ == "__main__":
    main()
