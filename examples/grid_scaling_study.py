"""Architecture comparison study: regenerate the paper's Figure 6 and a
crossover sweep from the public API.

Runs the same workload on the centralized, multi-agent and agent-grid
architectures, prints per-host utilization tables (the Figure 6 bars),
then sweeps the workload volume to show how the grid's advantage grows.

Run:  python examples/grid_scaling_study.py
"""

from repro import run_figure6
from repro.evaluation.accounting import compare_reports
from repro.evaluation.experiments import crossover_experiment
from repro.evaluation.tables import format_table
from repro.simkernel.resources import ResourceKind
from repro.workloads.scenarios import crossover_scenarios


def figure6_study():
    print("=" * 72)
    print("Figure 6: 10 requests of each type, three architectures")
    print("=" * 72)
    results = run_figure6(polls_per_type=10, seed=1)
    for label in ("centralized", "multiagent", "grid"):
        print()
        print(results[label].report.render())
    comparison = compare_reports(
        [result.report for result in results.values()], ResourceKind.CPU)
    print()
    print(format_table(
        ("architecture", "bottleneck", "max CPU units", "makespan (s)"),
        [
            (entry["label"], entry["max_host"],
             "%.0f" % entry["max_host_units"], "%.1f" % entry["makespan"])
            for entry in comparison
        ],
        title="winner first:",
    ))


def crossover_study():
    print()
    print("=" * 72)
    print("Crossover sweep: when does the grid pay off?")
    print("=" * 72)
    rows = crossover_experiment(
        crossover_scenarios(points=(1, 5, 10, 20)), seed=1)
    print(format_table(
        ("req/type", "centralized (s)", "multiagent (s)", "grid (s)",
         "grid saves vs centralized"),
        [
            (
                row["requests_per_type"],
                "%.1f" % row["makespans"]["centralized"],
                "%.1f" % row["makespans"]["multiagent"],
                "%.1f" % row["makespans"]["grid"],
                "%.0f%%" % (100 * (1 - row["makespans"]["grid"]
                                   / row["makespans"]["centralized"])),
            )
            for row in rows
        ],
    ))
    print()
    print("Note the paper's caveat: at low volume the saving shrinks toward")
    print("zero while the grid occupies 7 hosts instead of 1 -- 'in less")
    print("busy environments, traditional approaches still prove to be more")
    print("cost-effective'.")


def main():
    figure6_study()
    crossover_study()


if __name__ == "__main__":
    main()
