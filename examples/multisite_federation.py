"""Multi-site federation: Site I / Site II, integrated versus siloed.

Reproduces the paper's Figure 2 vs Figure 5 argument as a runnable story:
the same two-site network, the same overload hitting one device per site,
managed first by the integrated agent grid (one root brokering both sites,
one interface, shared knowledge) and then by per-site silos.  Only the
integrated deployment correlates the two local symptoms into a
network-wide incident.

Run:  python examples/multisite_federation.py
"""

from repro.core.federation import (
    INTEGRATED,
    SILOED,
    FederatedManagementSystem,
    FederatedTopologySpec,
    SiteSpec,
)
from repro.evaluation.tables import format_table

POLLS_PER_TYPE = 5


def build(mode):
    spec = FederatedTopologySpec(
        sites=[
            SiteSpec.simple("sao-paulo", device_count=3, collector_count=1,
                            analyzer_count=1),
            SiteSpec.simple("florianopolis", device_count=3,
                            collector_count=1, analyzer_count=1),
        ],
        mode=mode,
        seed=13,
        dataset_threshold=9,
    )
    return FederatedManagementSystem(spec)


def run(mode):
    system = build(mode)
    system.devices["sao-paulo-dev1"].inject_fault("cpu_runaway")
    system.devices["florianopolis-dev1"].inject_fault("cpu_runaway")
    system.assign_site_goals(system.make_site_goals(
        polls_per_type=POLLS_PER_TYPE))
    total = 2 * POLLS_PER_TYPE * 3
    completed = system.run_until_records(total, timeout=4000)
    system.stop_devices()
    return system, completed


def main():
    results = {}
    for mode in (INTEGRATED, SILOED):
        system, completed = run(mode)
        kinds = sorted({finding.kind for finding in system.all_findings()})
        results[mode] = (system, completed, kinds)
        print("== %s ==" % mode)
        print(system.utilization_report().render())
        print("findings:", ", ".join(kinds) or "none")
        print()

    rows = []
    for mode, (system, completed, kinds) in results.items():
        rows.append((
            mode,
            system.records_analyzed(),
            "yes" if "multi-site-overload" in kinds else "NO",
            len(system.interfaces()),
        ))
    print(format_table(
        ("deployment", "records analyzed", "cross-site incident seen",
         "interfaces"),
        rows,
        title="Figure 2 (integrated) vs Figure 5 (siloed):",
    ))
    print()
    print("The siloed deployment analyzed the same telemetry but, exactly as")
    print("the paper argues, 'no high level analysis can be carried out' --")
    print("the network-wide overload is invisible to per-site managers.")


if __name__ == "__main__":
    main()
