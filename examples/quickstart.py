"""Quickstart: run the paper's Figure 6(c) agent grid end to end.

Builds the deployment from the paper's evaluation (3 managed devices,
3 collector hosts, 1 storage host, 2 inference hosts), runs 10 requests of
each type (A = performance, B = storage, C = traffic), and prints the
per-host utilization the paper plots plus whatever the analysis found.

Run:  python examples/quickstart.py
"""

from repro import GridManagementSystem, GridTopologySpec


def main():
    spec = GridTopologySpec.paper_figure6c(seed=2026, dataset_threshold=30)
    system = GridManagementSystem(spec)

    # Spice the telemetry up so the rule base has something to find.
    system.devices["dev1"].inject_fault("cpu_runaway")
    system.devices["dev2"].inject_fault("interface_down", interface=1)

    goals = system.make_paper_goals(polls_per_type=10)
    system.assign_goals(goals)

    completed = system.run_until_records(total=30, timeout=2000)
    print("workload completed:", completed)
    print()
    print(system.utilization_report("figure-6c grid").render())
    print()

    print("reports: %d   alerts: %d" % (
        len(system.interface.reports), len(system.interface.alerts)))
    for report in system.interface.reports:
        for finding in report.deduplicated():
            print("  %-18s %-8s device=%-12s level=%d" % (
                finding.kind, finding.severity, finding.device, finding.level))

    system.stop_devices()


if __name__ == "__main__":
    main()
