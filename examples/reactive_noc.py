"""A reactive NOC: traps, instant polls, alert subscriptions, learned rules.

This example wires together the event-driven pieces around the grid:

1. devices send **traps** when things break;
2. the :class:`ReactiveCollectionService` converts each trap into an
   immediate poll (with storm suppression), so analysis sees fresh data
   within seconds instead of waiting for the next sweep;
3. an operator's **user agent subscribes** to alerts (FIPA SUBSCRIBE) and
   receives pushes for everything >= major;
4. mid-run the operator **teaches the grid a rule as data** (a declarative
   RuleSpec transmitted over ACL), tightening the CPU threshold.

Run:  python examples/reactive_noc.py
"""

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.core.reactive import ReactiveCollectionService
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.baselines.centralized import default_devices
from repro.rules.catalog import RuleSpec


class OperatorAgent(Agent):
    """Subscribes to alerts and prints them as they arrive."""

    def __init__(self, name):
        super().__init__(name)
        self.alerts = []

    def setup(self):
        operator = self

        class Listen(CyclicBehaviour):
            def step(self):
                message = yield from self.receive()
                if message is not None and message.ontology == "alert":
                    operator.alerts.append(message.content)
                    print("PUSH  t=%6.1f  %s %s on %s" % (
                        operator.sim.now, message.content["kind"],
                        message.content["severity"],
                        message.content["device"]))

        self.add_behaviour(Listen())
        self.send(ACLMessage(
            Performative.SUBSCRIBE, sender=self.name, receiver="interface",
            content={"min_severity": "major"},
            ontology="alert-subscription",
        ))


def main():
    spec = GridTopologySpec(
        devices=default_devices(4),
        collector_hosts=[HostSpec("probe1"), HostSpec("probe2")],
        analysis_hosts=[HostSpec("brain1"), HostSpec("brain2")],
        storage_host=HostSpec("tsdb"),
        interface_host=HostSpec("noc"),
        seed=77,
        dataset_threshold=4,     # small datasets: fast reaction to traps
    )
    system = GridManagementSystem(spec)

    # operator's user agent on its own workstation
    workstation = system.network.add_host("workstation", "site1", role="user")
    operator_container = system.platform.create_container(
        "operator-c", workstation)
    operator = OperatorAgent("operator")
    operator_container.deploy(operator)

    # trap-driven collection
    reactive = ReactiveCollectionService(
        system.network.host("noc"), system.transport, system.collectors,
        cooldown=10.0,
    )

    # background sweep (slow!) so baselines exist
    system.assign_goals(system.make_paper_goals(polls_per_type=4,
                                                interval=10.0))

    # at t=30 a device melts down and traps immediately
    def meltdown():
        system.devices["dev2"].inject_fault("cpu_runaway")
        reactive.sink.emit_from(system.devices["dev2"], "cpuHigh",
                                severity="major")

    system.sim.schedule(30.0, meltdown)

    # at t=40 the operator tightens the CPU rule, shipped as data
    def teach():
        spec_obj = RuleSpec("high-cpu", {"threshold": 70.0},
                            rename="high-cpu-tight")
        system.interface.submit_rule_spec(
            spec_obj, [analyzer.name for analyzer in system.analyzers])
        print("TEACH t=%6.1f  high-cpu-tight (threshold 70%%) -> %d analyzers"
              % (system.sim.now, len(system.analyzers)))

    system.sim.schedule(40.0, teach)

    system.run_until_records(12, timeout=4000)
    system.run(until=system.sim.now + 60)   # let reactions finish
    system.stop_devices()

    print()
    print(system.utilization_report("reactive NOC").render())
    print()
    print("traps: %d   reactions: %d   suppressed: %d" % (
        len(reactive.sink.received), reactive.reactions,
        reactive.suppressed))
    print("alert pushes received by operator: %d" % len(operator.alerts))
    learned = {
        analyzer.name: analyzer.knowledge_base.learned
        for analyzer in system.analyzers
    }
    print("learned rules:", learned)


if __name__ == "__main__":
    main()
