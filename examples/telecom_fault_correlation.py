"""Telecom fault correlation across two sites.

Scenario: a telecom operator runs routers and switches at two sites.  A
backbone interface on one router goes down; traffic reroutes and surges
through a neighbour.  Level-1 rules flag each symptom in isolation; the
level-3 cross-inference ("crossing of information from a whole complex of
equipment and not just isolated data") correlates them into a single
``cascade-failure`` incident.  A trap sink shows the asynchronous
notification path next to polling.

Run:  python examples/telecom_fault_correlation.py
"""

from repro import DeviceSpec, GridManagementSystem, GridTopologySpec, HostSpec
from repro.snmp.traps import TrapSink

POLLS_PER_TYPE = 8


def build_system():
    spec = GridTopologySpec(
        devices=[
            DeviceSpec("core-rtr1", "router", "pop-north"),
            DeviceSpec("core-rtr2", "router", "pop-north"),
            DeviceSpec("edge-sw1", "switch", "pop-north"),
            DeviceSpec("core-rtr3", "router", "pop-south"),
            DeviceSpec("edge-sw2", "switch", "pop-south"),
        ],
        collector_hosts=[
            HostSpec("collector-n", "pop-north"),
            HostSpec("collector-s", "pop-south"),
        ],
        analysis_hosts=[
            HostSpec("analysis-1", "noc"),
            HostSpec("analysis-2", "noc"),
        ],
        storage_host=HostSpec("noc-storage", "noc"),
        interface_host=HostSpec("noc-console", "noc"),
        seed=99,
        dataset_threshold=POLLS_PER_TYPE * 3,
        policy="negotiated",      # FIPA contract-net placement
    )
    return GridManagementSystem(spec)


def inject_cascade(system):
    """Backbone link dies; neighbour takes the rerouted traffic."""
    rtr1 = system.devices["core-rtr1"]
    rtr2 = system.devices["core-rtr2"]
    rtr1.inject_fault("interface_down", interface=2)
    # rtr2 sees 6x its usual traffic
    rtr2.profile = type(rtr2.profile)(
        "router-hot", interface_count=rtr2.profile.interface_count,
        process_slots=rtr2.profile.process_slots,
        cpu_mean=rtr2.profile.cpu_mean,
        cpu_sigma=rtr2.profile.cpu_sigma,
        mem_total_kb=rtr2.profile.mem_total_kb,
        disk_total_kb=rtr2.profile.disk_total_kb,
        traffic_rate=rtr2.profile.traffic_rate * 6.0,
    )


def main():
    system = build_system()

    # asynchronous path: the dying router also raises a trap at the NOC
    sink = TrapSink(system.network.host("noc-console"), system.transport,
                    port="noc-traps")
    sink.subscribe(lambda trap: print(
        "TRAP  t=%6.1f  %s %s %s" % (
            system.sim.now, trap.device_name, trap.kind, trap.severity)))

    # Warm-up sweep establishes traffic baselines in storage, so the
    # level-2 surge rule has history to compare against.
    system.assign_goals(system.make_paper_goals(
        polls_per_type=POLLS_PER_TYPE, interval=1.0))
    warmup_records = POLLS_PER_TYPE * 3
    system.run_until_records(warmup_records, timeout=4000)
    print("warm-up done at t=%.1f (baselines stored: %d series)" % (
        system.sim.now, system.store.summary()["series"]))

    # The cascade hits; the router traps, then the next sweep finds it.
    inject_cascade(system)
    sink.emit_from(system.devices["core-rtr1"], "linkDown",
                   {"interface": 2}, severity="critical")
    system.assign_goals(system.make_paper_goals(
        polls_per_type=POLLS_PER_TYPE, interval=1.0))
    system.run_until_records(2 * warmup_records, timeout=4000)
    system.stop_devices()

    print()
    print(system.utilization_report("telecom NOC").render())
    print()
    print("incidents and problems found:")
    for finding in system.interface.all_findings():
        marker = "L%d" % finding.level
        print("  [%s] %-18s %-8s %-22s site=%s" % (
            marker, finding.kind, finding.severity, finding.device,
            finding.site))
    incident_kinds = {f.kind for f in system.interface.all_findings()
                      if f.level == 3}
    print()
    print("level-3 correlation produced:", sorted(incident_kinds) or "nothing")


if __name__ == "__main__":
    main()
