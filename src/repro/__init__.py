"""repro: Grids of Agents for Computer and Telecommunication Network Management.

A full reproduction of Assunção, Westphall & Koch (MIDDLEWARE 2003): an
agent-grid architecture for network management, built on a deterministic
discrete-event simulator with a FIPA-flavoured agent platform, an SNMP-like
device substrate and a production-rule analysis engine.

Quickstart::

    from repro import GridTopologySpec, GridManagementSystem

    spec = GridTopologySpec.paper_figure6c(seed=1)
    system = GridManagementSystem(spec)
    system.assign_goals(system.make_paper_goals(polls_per_type=10))
    system.run_until_reports(count=1, timeout=600)
    print(system.utilization_report().render())

See DESIGN.md for the architecture inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core.costs import CostModel, TaskKind
from repro.core.records import CollectionGoal, ManagementRecord, Sample
from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.baselines.centralized import centralized_spec
from repro.baselines.multiagent import multiagent_spec
from repro.baselines.driver import run_architecture, run_figure6
from repro.evaluation.accounting import UtilizationReport, compare_reports
from repro.simkernel.simulator import Simulator

__version__ = "1.0.0"

__all__ = [
    "CollectionGoal",
    "CostModel",
    "DeviceSpec",
    "GridManagementSystem",
    "GridTopologySpec",
    "HostSpec",
    "ManagementRecord",
    "Sample",
    "Simulator",
    "TaskKind",
    "UtilizationReport",
    "centralized_spec",
    "compare_reports",
    "multiagent_spec",
    "run_architecture",
    "run_figure6",
    "__version__",
]
