"""AgentLight/FIPA-flavoured multi-agent platform on the simulated network.

The paper builds its grids from small FIPA-compliant agents (AgentLight).
This package provides the equivalent substrate:

* :mod:`acl <repro.agents.acl>` -- ACL messages, performatives, templates;
* :mod:`agent <repro.agents.agent>` -- the agent base class with a mailbox
  and behaviour scheduling;
* :mod:`behaviours <repro.agents.behaviours>` -- one-shot / cyclic / ticker
  / finite-state-machine behaviours;
* :mod:`container <repro.agents.container>` -- agent containers bound to
  hosts, with the resource profiles of Figure 4;
* :mod:`platform <repro.agents.platform>` -- AMS (agent registry) and MTS
  (message transport over the simulated network);
* :mod:`directory <repro.agents.directory>` -- the directory facilitator
  (service + container-profile registry, the paper's "D1");
* :mod:`mobility <repro.agents.mobility>` -- agent migration (the paper's
  future-work item, exercised by the mobility bench).
"""

from repro.agents.acl import ACLMessage, AgentId, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import (
    Behaviour,
    CyclicBehaviour,
    FSMBehaviour,
    OneShotBehaviour,
    TickerBehaviour,
)
from repro.agents.container import AgentContainer, ResourceProfile
from repro.agents.platform import AgentPlatform, PlatformError
from repro.agents.directory import DirectoryFacilitator, ServiceDescription
from repro.agents.mobility import MigrationError, MobilityService

__all__ = [
    "ACLMessage",
    "Agent",
    "AgentContainer",
    "AgentId",
    "AgentPlatform",
    "Behaviour",
    "CyclicBehaviour",
    "DirectoryFacilitator",
    "FSMBehaviour",
    "MessageTemplate",
    "MigrationError",
    "MobilityService",
    "OneShotBehaviour",
    "Performative",
    "PlatformError",
    "ResourceProfile",
    "ServiceDescription",
    "TickerBehaviour",
]
