"""FIPA ACL messages, performatives and matching templates.

Only the subset of FIPA ACL the paper exercises is modelled: the standard
performative vocabulary, conversation threading (``conversation_id`` /
``reply_with`` / ``in_reply_to``), ontology and protocol slots, and a size
model so messages cost network units in proportion to their content.
"""

import itertools


class Performative:
    """The FIPA ACL communicative acts used in the reproduction."""

    INFORM = "inform"
    REQUEST = "request"
    QUERY_REF = "query-ref"
    CFP = "cfp"
    PROPOSE = "propose"
    ACCEPT_PROPOSAL = "accept-proposal"
    REJECT_PROPOSAL = "reject-proposal"
    AGREE = "agree"
    REFUSE = "refuse"
    FAILURE = "failure"
    CONFIRM = "confirm"
    SUBSCRIBE = "subscribe"
    NOT_UNDERSTOOD = "not-understood"

    ALL = (
        INFORM, REQUEST, QUERY_REF, CFP, PROPOSE, ACCEPT_PROPOSAL,
        REJECT_PROPOSAL, AGREE, REFUSE, FAILURE, CONFIRM, SUBSCRIBE,
        NOT_UNDERSTOOD,
    )


class AgentId:
    """A platform-unique agent name (FIPA AID, simplified)."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not name:
            raise ValueError("agent name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, attr, value):
        raise AttributeError("AgentId is immutable")

    def __eq__(self, other):
        if isinstance(other, AgentId):
            return other.name == self.name
        if isinstance(other, str):
            return other == self.name
        return NotImplemented

    def __hash__(self):
        return hash(self.name)

    def __str__(self):
        return self.name

    def __repr__(self):
        return "AgentId(%r)" % self.name


#: Default wire size of an ACL control message, in network units.
DEFAULT_ACL_SIZE = 0.3


class ACLMessage:
    """A FIPA ACL message.

    Args:
        performative: one of :class:`Performative`.
        sender / receiver: :class:`AgentId` (or bare names, coerced).
        content: arbitrary payload object.
        ontology: content ontology name (see :mod:`repro.agents.ontology`).
        protocol: interaction protocol ("fipa-contract-net", ...).
        conversation_id: thread identifier; generated when omitted for
            conversation-opening messages.
        reply_with / in_reply_to: FIPA reply correlation slots.
        size_units: explicit wire size; defaults to the content's
            ``size_units`` attribute or :data:`DEFAULT_ACL_SIZE`.
    """

    _conversation_counter = itertools.count(1)

    def __init__(
        self,
        performative,
        sender,
        receiver,
        content=None,
        ontology="",
        protocol="",
        conversation_id=None,
        reply_with=None,
        in_reply_to=None,
        size_units=None,
    ):
        if performative not in Performative.ALL:
            raise ValueError("unknown performative %r" % performative)
        self.performative = performative
        self.sender = sender if isinstance(sender, AgentId) else AgentId(sender)
        self.receiver = receiver if isinstance(receiver, AgentId) else AgentId(receiver)
        self.content = content
        self.ontology = ontology
        self.protocol = protocol
        if conversation_id is None:
            conversation_id = "conv-%d" % next(ACLMessage._conversation_counter)
        self.conversation_id = conversation_id
        self.reply_with = reply_with
        self.in_reply_to = in_reply_to
        if size_units is None:
            size_units = getattr(content, "size_units", None)
            if size_units is None:
                size_units = DEFAULT_ACL_SIZE
        self.size_units = float(size_units)
        self.sent_at = None
        #: Optional causal-tracing context: a ``(trace_id, span_id)`` tuple
        #: naming the in-flight span this message belongs to (see
        #: :mod:`repro.simkernel.telemetry`).  ``None`` when telemetry is
        #: off -- the envelope then carries no tracing state at all.
        self.trace_context = None

    def make_reply(self, performative, content=None, size_units=None):
        """A reply in the same conversation, addressed back to the sender."""
        reply = ACLMessage(
            performative,
            sender=self.receiver,
            receiver=self.sender,
            content=content,
            ontology=self.ontology,
            protocol=self.protocol,
            conversation_id=self.conversation_id,
            in_reply_to=self.reply_with,
            size_units=size_units,
        )
        # Replies stay on the conversation's trace so request/response
        # pairs (storage fetches, confirmations) correlate end to end.
        reply.trace_context = self.trace_context
        return reply

    def __repr__(self):
        return "ACLMessage(%s %s->%s, conv=%s)" % (
            self.performative, self.sender, self.receiver, self.conversation_id,
        )


class MessageTemplate:
    """A conjunctive filter over ACL message slots.

    Any slot left ``None`` matches everything; strings are compared against
    the message slot, and ``sender`` accepts an :class:`AgentId` or name.
    """

    def __init__(
        self,
        performative=None,
        sender=None,
        ontology=None,
        protocol=None,
        conversation_id=None,
        in_reply_to=None,
    ):
        self.performative = performative
        self.sender = AgentId(sender) if isinstance(sender, str) else sender
        self.ontology = ontology
        self.protocol = protocol
        self.conversation_id = conversation_id
        self.in_reply_to = in_reply_to

    def match(self, message):
        if self.performative is not None and message.performative != self.performative:
            return False
        if self.sender is not None and message.sender != self.sender:
            return False
        if self.ontology is not None and message.ontology != self.ontology:
            return False
        if self.protocol is not None and message.protocol != self.protocol:
            return False
        if (
            self.conversation_id is not None
            and message.conversation_id != self.conversation_id
        ):
            return False
        if self.in_reply_to is not None and message.in_reply_to != self.in_reply_to:
            return False
        return True

    def __repr__(self):
        slots = []
        for name in (
            "performative", "sender", "ontology", "protocol",
            "conversation_id", "in_reply_to",
        ):
            value = getattr(self, name)
            if value is not None:
                slots.append("%s=%r" % (name, str(value)))
        return "MessageTemplate(%s)" % ", ".join(slots)


#: Template matching every message.
MATCH_ALL = MessageTemplate()
