"""The agent base class: identity, mailbox, behaviours.

Agents live inside a container (which binds them to a host) and interact
with the world only through ACL messages and explicit resource usage on
their host.  Behaviours are simulation processes; the agent tracks them so
it can be stopped or migrated cleanly.
"""

from repro.agents.acl import ACLMessage, AgentId, MessageTemplate

_MATCH_ALL = MessageTemplate()


class Agent:
    """Base class for all agents in the reproduction.

    Subclasses typically override :meth:`setup` to install behaviours.

    Attributes:
        aid: the agent's :class:`~repro.agents.acl.AgentId`.
        container: the :class:`~repro.agents.container.AgentContainer`
            hosting the agent (set at deploy time).
    """

    def __init__(self, name):
        self.aid = AgentId(name)
        self.container = None
        self.alive = False
        self._queue = []
        self._waiters = []  # list of (template, SimEvent)
        self._behaviours = []
        self.messages_received = 0
        self.messages_sent = 0

    # -- identity / environment -------------------------------------------

    @property
    def name(self):
        return self.aid.name

    @property
    def platform(self):
        if self.container is None:
            raise RuntimeError("agent %s is not deployed" % self.name)
        return self.container.platform

    @property
    def sim(self):
        return self.platform.sim

    @property
    def host(self):
        return self.container.host

    @property
    def cpu(self):
        return self.container.host.cpu

    @property
    def disk(self):
        return self.container.host.disk

    @property
    def telemetry(self):
        """The platform's flight recorder, or ``None`` when telemetry is
        off (callers must guard -- the off path stays zero-overhead)."""
        return self.container.platform.telemetry

    # -- lifecycle -----------------------------------------------------------

    def setup(self):
        """Install initial behaviours; called when the agent is deployed."""

    def on_stop(self):
        """Hook invoked when the agent is stopped or migrated away."""

    def start(self):
        """Called by the container after deployment."""
        self.alive = True
        self.setup()

    def stop(self):
        """Kill all behaviours and mark the agent dead."""
        if not self.alive:
            return
        self.alive = False
        self.on_stop()
        for behaviour in list(self._behaviours):
            behaviour.kill()
        self._behaviours = []

    # -- behaviours -----------------------------------------------------------

    def add_behaviour(self, behaviour):
        """Attach and immediately start a behaviour."""
        if self.container is None:
            raise RuntimeError(
                "deploy agent %s into a container before adding behaviours"
                % self.name
            )
        behaviour.attach(self)
        self._behaviours.append(behaviour)
        behaviour.start()
        return behaviour

    def behaviours(self):
        return list(self._behaviours)

    def _behaviour_finished(self, behaviour):
        try:
            self._behaviours.remove(behaviour)
        except ValueError:
            pass

    # -- messaging --------------------------------------------------------------

    def send(self, message):
        """Hand a message to the platform MTS (fire-and-forget)."""
        self.messages_sent += 1
        self.platform.send(message)

    def send_batch(self, messages):
        """Hand several messages to the MTS at once.

        Same-destination-host wire messages are shipped as one aggregate
        transfer (see :meth:`AgentPlatform.send_batch`).
        """
        messages = list(messages)
        self.messages_sent += len(messages)
        self.platform.send_batch(messages)

    def send_reliable(self, message):
        """Like :meth:`send`, but over the platform's reliable channel
        (acked + retransmitted + dead-lettered) when one is installed."""
        self.messages_sent += 1
        self.platform.send_reliable(message)

    def send_batch_reliable(self, messages):
        """Like :meth:`send_batch`, but via the reliable channel when
        installed; otherwise byte-identical to :meth:`send_batch`."""
        messages = list(messages)
        self.messages_sent += len(messages)
        self.platform.send_batch_reliable(messages)

    def reply_to(self, message, performative, content=None, size_units=None,
                 reliable=False):
        """Build and send a reply to ``message``.

        ``reliable=True`` routes the reply over the platform's reliable
        channel when one is installed (plain send otherwise), for replies
        whose loss the requester cannot cheaply detect -- e.g. large
        storage fetch results.
        """
        reply = message.make_reply(performative, content, size_units)
        if reliable:
            self.send_reliable(reply)
        else:
            self.send(reply)
        return reply

    def deliver(self, message):
        """Called by the container when a message arrives for this agent."""
        self.messages_received += 1
        for index, (template, event) in enumerate(self._waiters):
            if template.match(message) and not event.triggered:
                del self._waiters[index]
                event.trigger(message)
                return
        self._queue.append(message)

    def receive_nowait(self, template=None):
        """Pop the first queued message matching ``template``, or None."""
        template = template if template is not None else _MATCH_ALL
        for index, message in enumerate(self._queue):
            if template.match(message):
                return self._queue.pop(index)
        return None

    def receive(self, template=None, timeout=None):
        """Wait for a matching message (process generator).

        Returns the message, or ``None`` if ``timeout`` elapsed first.
        """
        template = template if template is not None else _MATCH_ALL
        queued = self.receive_nowait(template)
        if queued is not None:
            return queued
        event = self.sim.event("recv@" + self.name)
        entry = (template, event)
        self._waiters.append(entry)
        if timeout is not None:
            self.sim.schedule(timeout, self._expire_waiter, (template, event))
        try:
            result = yield event
        finally:
            # If the waiting process was killed (agent stop / migration),
            # drop the stale waiter so it cannot swallow a future message.
            try:
                self._waiters.remove(entry)
            except ValueError:
                pass
        return result

    def _expire_waiter(self, template, event):
        if event.triggered:
            return
        try:
            self._waiters.remove((template, event))
        except ValueError:
            pass
        event.trigger(None)

    @property
    def mailbox_size(self):
        return len(self._queue)

    # -- mobility support -----------------------------------------------------

    def checkpoint(self):
        """Serializable state captured before migration.

        Subclasses extend the dict; the queue travels with the agent.
        """
        return {"queued_messages": list(self._queue)}

    def restore(self, state):
        """Reinstall checkpointed state after migration."""
        self._queue = list(state.get("queued_messages", ()))

    @property
    def state_size_units(self):
        """Approximate serialized size for migration cost (network units)."""
        return 1.0 + 0.2 * len(self._queue)

    def __repr__(self):
        where = self.container.name if self.container else "undeployed"
        return "%s(%r @ %s)" % (type(self).__name__, self.name, where)
