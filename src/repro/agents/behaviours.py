"""Behaviour classes: the unit of agent activity.

Mirrors the JADE/AgentLight behaviour model: an agent is a bundle of
behaviours, each an independently scheduled activity.  Every behaviour runs
as a kernel process; its body is a generator that may ``yield`` kernel
primitives (sleeps, resource uses, events) or use the agent's
``receive``/``send`` helpers.
"""


class Behaviour:
    """Base behaviour.  Subclasses override :meth:`run` (a generator).

    The behaviour's generator may use ``yield from self.receive(...)`` and
    any kernel yieldable.  When :meth:`run` returns, the behaviour is done
    and detaches from its agent.
    """

    def __init__(self, name=None):
        self.name = name if name is not None else type(self).__name__
        self.agent = None
        self.process = None
        self.stopped = False
        self._span = None  # attribution span (telemetry attribution only)

    # -- wiring -----------------------------------------------------------

    def attach(self, agent):
        if self.agent is not None:
            raise RuntimeError("behaviour %s already attached" % self.name)
        self.agent = agent

    def start(self):
        agent = self.agent
        telemetry = agent.telemetry if agent.container is not None else None
        if telemetry is not None and telemetry.attribution:
            # One sim-time span per behaviour activation: the trace answers
            # "which agent's behaviours occupy the timeline" without the
            # wall-clock KernelProfiler.  Passive -- no events, no RNG.
            self._span = telemetry.recorder.start(
                "behaviour:%s" % type(self).__name__,
                telemetry.BEHAVIOUR_TRACE,
                grid="agents",
                host=agent.host.name,
                agent=agent.name,
                behaviour=self.name,
            )
        self.process = agent.sim.spawn(
            self._main(), name="%s/%s" % (agent.name, self.name)
        )

    def kill(self):
        self.stopped = True
        if self.process is not None:
            self.process.kill()

    @property
    def done(self):
        return self.process is not None and self.process.done

    def _main(self):
        try:
            yield from self.run()
        finally:
            agent = self.agent
            if agent is not None:
                agent._behaviour_finished(self)
            span = self._span
            if span is not None:
                self._span = None
                telemetry = agent.telemetry if agent is not None else None
                if telemetry is not None:
                    telemetry.recorder.end(
                        span, status="stopped" if self.stopped else "ok")

    # -- overridables ---------------------------------------------------------

    def run(self):
        """The behaviour body (generator).  Must be overridden."""
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator function

    # -- conveniences forwarded to the agent ----------------------------------

    @property
    def sim(self):
        return self.agent.sim

    def receive(self, template=None, timeout=None):
        return self.agent.receive(template, timeout)

    def send(self, message):
        self.agent.send(message)

    def __repr__(self):
        owner = self.agent.name if self.agent else "unattached"
        return "%s(%r @ %s)" % (type(self).__name__, self.name, owner)


class OneShotBehaviour(Behaviour):
    """Runs :meth:`action` once, then finishes."""

    def run(self):
        yield from self.action()

    def action(self):
        raise NotImplementedError
        yield  # pragma: no cover


class CyclicBehaviour(Behaviour):
    """Repeats :meth:`step` until stopped.

    ``step`` should block on something (a receive, a sleep) or the
    behaviour would spin; a zero-yield guard trips after
    ``max_idle_spins`` consecutive instantaneous steps.
    """

    def __init__(self, name=None, max_idle_spins=1000):
        super().__init__(name)
        self.max_idle_spins = max_idle_spins

    def run(self):
        spins = 0
        while not self.stopped:
            before = self.sim.now
            yield from self.step()
            if self.sim.now == before:
                spins += 1
                if spins >= self.max_idle_spins:
                    raise RuntimeError(
                        "cyclic behaviour %s spun %d times without advancing time"
                        % (self.name, spins)
                    )
            else:
                spins = 0

    def step(self):
        raise NotImplementedError
        yield  # pragma: no cover


class TickerBehaviour(Behaviour):
    """Invokes :meth:`on_tick` every ``period`` seconds.

    Args:
        period: tick interval.
        max_ticks: stop after this many ticks (None = forever).
        initial_delay: offset before the first tick (defaults to period).
    """

    def __init__(self, period, name=None, max_ticks=None, initial_delay=None):
        super().__init__(name)
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.max_ticks = max_ticks
        self.initial_delay = initial_delay if initial_delay is not None else period
        self.ticks = 0

    def run(self):
        yield self.initial_delay
        while not self.stopped:
            if self.max_ticks is not None and self.ticks >= self.max_ticks:
                return
            yield from self.on_tick()
            self.ticks += 1
            yield self.period

    def on_tick(self):
        raise NotImplementedError
        yield  # pragma: no cover


class MultiplexedTickerBehaviour(TickerBehaviour):
    """One ticker process driving many plain callbacks.

    N per-agent watchdogs cost N kernel processes and N timer events per
    period; the sharded grid coalesces them into a single multiplexed
    ticker (one process, one timer event) that calls each registered
    callback in registration order.  Callbacks must be plain callables
    (no generators -- they run inside the shared tick and may not block);
    a callback returning work to do should schedule it itself.
    """

    def __init__(self, period, name=None, max_ticks=None, initial_delay=None):
        super().__init__(period, name=name, max_ticks=max_ticks,
                         initial_delay=initial_delay)
        self._callbacks = []

    def add_callback(self, callback):
        if not callable(callback):
            raise TypeError("callback must be callable")
        self._callbacks.append(callback)
        return self

    def remove_callback(self, callback):
        self._callbacks.remove(callback)

    def on_tick(self):
        for callback in list(self._callbacks):
            callback()
        return
        yield  # pragma: no cover - keeps on_tick a generator for run()


class FSMBehaviour(Behaviour):
    """A finite-state-machine behaviour.

    States are registered as ``(name, handler)`` where ``handler`` is a
    generator function returning the next state's name (or None to follow
    the sole registered transition).  Reaching a state registered as final
    ends the behaviour.
    """

    def __init__(self, name=None):
        super().__init__(name)
        self._states = {}
        self._finals = set()
        self._initial = None
        self.current_state = None
        self.transitions_taken = []

    def register_state(self, state_name, handler, initial=False, final=False):
        if state_name in self._states:
            raise ValueError("state %r already registered" % state_name)
        self._states[state_name] = handler
        if initial:
            if self._initial is not None:
                raise ValueError("initial state already set to %r" % self._initial)
            self._initial = state_name
        if final:
            self._finals.add(state_name)
        return self

    def run(self):
        if self._initial is None:
            raise RuntimeError("FSM %s has no initial state" % self.name)
        self.current_state = self._initial
        while True:
            handler = self._states[self.current_state]
            next_state = yield from handler()
            self.transitions_taken.append((self.current_state, next_state))
            if self.current_state in self._finals:
                return
            if next_state is None:
                raise RuntimeError(
                    "state %r returned no next state" % self.current_state
                )
            if next_state not in self._states:
                raise RuntimeError(
                    "state %r transitioned to unknown state %r"
                    % (self.current_state, next_state)
                )
            self.current_state = next_state
