"""Agent containers and their resource profiles.

A container groups agents on a host.  Figure 4 of the paper has containers
registering *resource profiles* with the grid root when they join; the
profile here carries the host's static capacities, the container's service
capabilities (what analyses it knows how to run), and dynamic load
indicators the load-balancing policies consume.
"""


class ResourceProfile:
    """A snapshot of a container's capacity, capability and load.

    Static part (registration time, Figure 4): host name, CPU/disk
    capacities, services, knowledge areas.  Dynamic part (refreshed on
    demand, the paper's "request the current profile"): CPU queue length,
    utilization, and number of busy agents.
    """

    def __init__(
        self,
        container_name,
        host_name,
        cpu_capacity,
        disk_capacity,
        services,
        knowledge=(),
        cpu_queue_length=0,
        cpu_utilization=0.0,
        busy_agents=0,
    ):
        self.container_name = container_name
        self.host_name = host_name
        self.cpu_capacity = cpu_capacity
        self.disk_capacity = disk_capacity
        self.services = tuple(services)
        self.knowledge = tuple(knowledge)
        self.cpu_queue_length = cpu_queue_length
        self.cpu_utilization = cpu_utilization
        self.busy_agents = busy_agents

    @property
    def idle(self):
        """The paper's "resources that are idle" criterion."""
        return self.cpu_queue_length == 0 and self.busy_agents == 0

    def offers(self, service):
        return service in self.services

    def knows(self, knowledge_area):
        return not self.knowledge or knowledge_area in self.knowledge

    def to_content(self):
        """As validated ontology content (see :data:`CONTAINER_PROFILE`)."""
        from repro.agents.ontology import CONTAINER_PROFILE

        return CONTAINER_PROFILE.make(
            container=self.container_name,
            host=self.host_name,
            cpu_capacity=self.cpu_capacity,
            disk_capacity=self.disk_capacity,
            services=list(self.services),
            knowledge=list(self.knowledge),
        )

    def __repr__(self):
        return "ResourceProfile(%s@%s, cpu=%g, services=%s, idle=%s)" % (
            self.container_name,
            self.host_name,
            self.cpu_capacity,
            list(self.services),
            self.idle,
        )


class AgentContainer:
    """A named group of agents bound to a host.

    Args:
        name: unique container name.
        host: the host providing resources.
        platform: the owning :class:`~repro.agents.platform.AgentPlatform`.
        services: capability tags used in directory lookups
            ("analysis:performance", "storage", ...).
        knowledge: knowledge areas (rule groups) this container holds.
    """

    def __init__(self, name, host, platform, services=(), knowledge=()):
        self.name = name
        self.host = host
        self.platform = platform
        self.services = tuple(services)
        self.knowledge = tuple(knowledge)
        self.agents = {}
        self.busy_agents = 0
        self.alive = True
        platform._register_container(self)

    @property
    def sim(self):
        return self.platform.sim

    # -- agent management ------------------------------------------------

    def deploy(self, agent):
        """Install an agent into this container and start it."""
        if not self.alive:
            raise RuntimeError("container %s is down" % self.name)
        if agent.name in self.agents:
            raise ValueError("agent %r already in container %s" % (
                agent.name, self.name))
        if agent.container is not None:
            raise RuntimeError("agent %s is already deployed" % agent.name)
        agent.container = self
        self.agents[agent.name] = agent
        self.platform._register_agent(agent)
        agent.start()
        return agent

    def remove(self, agent, stop=True):
        """Detach an agent (stopping it unless ``stop=False`` for migration)."""
        if self.agents.get(agent.name) is not agent:
            raise ValueError("agent %s not in container %s" % (agent.name, self.name))
        if stop:
            agent.stop()
        del self.agents[agent.name]
        self.platform._deregister_agent(agent)
        agent.container = None

    def shutdown(self):
        """Kill the container and every agent in it (fault injection)."""
        if not self.alive:
            return
        self.alive = False
        for agent in list(self.agents.values()):
            agent.stop()
            self.platform._deregister_agent(agent)
            agent.container = None
        self.agents = {}
        self.platform._deregister_container(self)

    # -- profile ------------------------------------------------------------

    def profile(self):
        """Current :class:`ResourceProfile` (static + dynamic load)."""
        return ResourceProfile(
            container_name=self.name,
            host_name=self.host.name,
            cpu_capacity=self.host.cpu.capacity,
            disk_capacity=self.host.disk.capacity,
            services=self.services,
            knowledge=self.knowledge,
            cpu_queue_length=self.host.cpu.queue_length,
            cpu_utilization=self.host.cpu.utilization(),
            busy_agents=self.busy_agents,
        )

    def __repr__(self):
        return "AgentContainer(%r @ %s, agents=%d)" % (
            self.name, self.host.name, len(self.agents),
        )
