"""Directory facilitator: service and container-profile registry.

This is the paper's directory service "D1" (Figure 4): when a container
joins the processing grid it registers the profile of the resource it runs
on and the services it can provide; the grid root later queries the
directory to select containers for job submission.

Two registries live here:

* **services** -- FIPA-DF-style ``ServiceDescription`` entries for agents;
* **container profiles** -- :class:`~repro.agents.container.ResourceProfile`
  snapshots, searchable by service and knowledge area.
"""


class ServiceDescription:
    """An agent's advertised service."""

    def __init__(self, agent_name, service_type, properties=None):
        if not service_type:
            raise ValueError("service_type must be non-empty")
        self.agent_name = agent_name
        self.service_type = service_type
        self.properties = dict(properties or {})

    def __repr__(self):
        return "ServiceDescription(%s: %s)" % (self.agent_name, self.service_type)


class DirectoryFacilitator:
    """Register/search services and container profiles."""

    def __init__(self, sim):
        self.sim = sim
        self._services = {}  # agent_name -> list of ServiceDescription
        self._profiles = {}  # container_name -> (profile, registered_at)
        self.registrations = 0
        self.searches = 0

    # -- agent services (FIPA DF) ------------------------------------------

    def register(self, description):
        """Add a service description for an agent."""
        self._services.setdefault(description.agent_name, []).append(description)
        self.registrations += 1
        return description

    def deregister(self, agent_name, service_type=None):
        """Remove an agent's services (all, or one type)."""
        if service_type is None:
            self._services.pop(agent_name, None)
            return
        remaining = [
            description
            for description in self._services.get(agent_name, [])
            if description.service_type != service_type
        ]
        if remaining:
            self._services[agent_name] = remaining
        else:
            self._services.pop(agent_name, None)

    def search(self, service_type, predicate=None):
        """All service descriptions of a type, optionally filtered."""
        self.searches += 1
        found = []
        for descriptions in self._services.values():
            for description in descriptions:
                if description.service_type != service_type:
                    continue
                if predicate is not None and not predicate(description):
                    continue
                found.append(description)
        found.sort(key=lambda description: description.agent_name)
        return found

    def services_of(self, agent_name):
        return list(self._services.get(agent_name, ()))

    # -- container profiles (the paper's D1) ----------------------------------

    def register_container_profile(self, profile):
        """Store/update a container's resource profile (Figure 4)."""
        self._profiles[profile.container_name] = (profile, self.sim.now)
        self.registrations += 1

    def remove_container_profile(self, container_name):
        self._profiles.pop(container_name, None)

    def container_profile(self, container_name):
        entry = self._profiles.get(container_name)
        return entry[0] if entry else None

    def container_profiles(self, service=None, knowledge=None):
        """Profiles filtered by offered service and/or knowledge area."""
        self.searches += 1
        results = []
        for profile, _ in self._profiles.values():
            if service is not None and not profile.offers(service):
                continue
            if knowledge is not None and not profile.knows(knowledge):
                continue
            results.append(profile)
        results.sort(key=lambda profile: profile.container_name)
        return results

    def __len__(self):
        return len(self._profiles)

    def __repr__(self):
        return "DirectoryFacilitator(profiles=%d, services=%d)" % (
            len(self._profiles),
            sum(len(lst) for lst in self._services.values()),
        )
