"""Agent mobility: migrating an agent between containers.

The paper lists mobile agents as future work: "Agent mobility allows for a
migration of analysis activities [...], improving the utilization of
resources."  We implement strong-ish migration: the agent is stopped at
the source, its checkpointed state travels as a network payload (charging
both NICs and paying serialization CPU), and it restarts at the
destination, where ``setup()`` re-installs behaviours and ``restore()``
reinstates the checkpoint (including the pending mailbox).
"""

from repro.network.transport import Message


class MigrationError(RuntimeError):
    """Migration failed (dead container, undeployed agent...)."""


class MobilityService:
    """Coordinates agent migrations on a platform.

    Args:
        platform: the :class:`~repro.agents.platform.AgentPlatform`.
        serialize_cpu_per_unit: CPU units charged at the source per state
            size unit (serialization), and at the destination
            (deserialization).
    """

    def __init__(self, platform, serialize_cpu_per_unit=0.5):
        self.platform = platform
        self.sim = platform.sim
        self.serialize_cpu_per_unit = serialize_cpu_per_unit
        self.migrations = 0

    def migrate(self, agent, destination_container):
        """Move ``agent`` to ``destination_container`` (process generator).

        Usage::

            yield from mobility.migrate(agent, other_container)

        Returns the agent once it is running at the destination.
        """
        source_container = agent.container
        if source_container is None:
            raise MigrationError("agent %s is not deployed" % agent.name)
        if not destination_container.alive:
            raise MigrationError(
                "destination container %s is down" % destination_container.name
            )
        if destination_container is source_container:
            return agent

        source_host = source_container.host
        dest_host = destination_container.host
        state = agent.checkpoint()
        size = agent.state_size_units

        # Stop and detach at the source (behaviours die with the old life).
        agent.stop()
        source_container.remove(agent, stop=False)

        # Serialization cost at the source.  Runs at control-plane
        # priority: a migration triggered *because* the host is backlogged
        # must not wait behind that backlog.
        yield source_host.cpu.use(
            self.serialize_cpu_per_unit * size, label="agent-migration",
            priority=-10,
        )

        # State transfer (skipped when both containers share a host).
        if source_host is not dest_host:
            wire = Message(
                sender=self.platform.transport.address(source_host.name, "acl"),
                dest=self.platform.transport.address(dest_host.name, "acl"),
                payload=("agent-state", agent.name, state),
                size_units=size,
                protocol="agent-migration",
            )
            yield from self.platform.transport.send_and_wait(wire)

        # Deserialization + restart at the destination.
        yield dest_host.cpu.use(
            self.serialize_cpu_per_unit * size, label="agent-migration",
            priority=-10,
        )
        destination_container.deploy(agent)
        agent.restore(state)
        self.migrations += 1
        return agent

    def __repr__(self):
        return "MobilityService(migrations=%d)" % self.migrations
