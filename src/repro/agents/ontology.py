"""Content ontologies for ACL conversations.

The paper leans on FIPA ontologies twice: the common representation of
collected data (section 3.1, "XML and ontologies") and the
container-resource-profile ontology used at registration time (Figure 4).
We model an ontology as a named schema: a set of required fields with type
predicates.  Content objects are plain dicts validated against the schema,
which keeps them serializable (a prerequisite for agent mobility).
"""


class OntologyError(ValueError):
    """Content does not conform to its declared ontology."""


class Ontology:
    """A named content schema.

    Args:
        name: ontology identifier carried in the ACL ``ontology`` slot.
        fields: mapping of field name -> type or tuple of types; a value of
            ``None`` means "any".
        optional: field names that may be absent.
    """

    def __init__(self, name, fields, optional=()):
        self.name = name
        self.fields = dict(fields)
        self.optional = frozenset(optional)
        unknown = self.optional - set(self.fields)
        if unknown:
            raise ValueError("optional fields not in schema: %s" % sorted(unknown))

    def validate(self, content):
        """Raise :class:`OntologyError` unless ``content`` conforms."""
        if not isinstance(content, dict):
            raise OntologyError(
                "%s content must be a dict, got %s" % (self.name, type(content).__name__)
            )
        for field, expected in self.fields.items():
            if field not in content:
                if field in self.optional:
                    continue
                raise OntologyError("%s content missing field %r" % (self.name, field))
            if expected is None:
                continue
            if not isinstance(content[field], expected):
                raise OntologyError(
                    "%s field %r: expected %s, got %s"
                    % (self.name, field, expected, type(content[field]).__name__)
                )
        extra = set(content) - set(self.fields)
        if extra:
            raise OntologyError(
                "%s content has unknown fields %s" % (self.name, sorted(extra))
            )
        return content

    def make(self, **content):
        """Build validated content."""
        return self.validate(content)

    def __repr__(self):
        return "Ontology(%r)" % self.name


#: Container profile registration (Figure 4): the container tells the grid
#: root what resource it runs on and which services it can provide.
CONTAINER_PROFILE = Ontology(
    "container-profile",
    fields={
        "container": str,
        "host": str,
        "cpu_capacity": (int, float),
        "disk_capacity": (int, float),
        "services": (list, tuple),
        "knowledge": (list, tuple),
    },
    optional=("knowledge",),
)

#: Notification that classified data awaits analysis (CLG -> PG, Figure 2).
DATA_READY = Ontology(
    "data-ready",
    fields={
        "dataset": str,
        "record_count": int,
        "clusters": (list, tuple),
        "cluster_sizes": dict,
        "storage_host": str,
    },
    optional=("cluster_sizes",),
)

#: Analysis job assignment (PG root -> container, Figure 3).  Level-3
#: (cross) jobs additionally carry the level-1/2 problems to correlate;
#: on a sharded grid they also carry ``shards`` -- the (storage_host,
#: dataset) pairs of the scatter-gather round, so the analyzer fetches
#: every shard's summary before correlating.
ANALYSIS_JOB = Ontology(
    "analysis-job",
    fields={
        "job_id": str,
        "dataset": str,
        "cluster": str,
        "record_count": int,
        "level": int,
        "storage_host": str,
        "problems": (list, tuple),
        "shards": (list, tuple),
    },
    optional=("problems", "shards"),
)

#: Analysis outcome (container -> PG root).
ANALYSIS_RESULT = Ontology(
    "analysis-result",
    fields={
        "job_id": str,
        "findings": (list, tuple),
        "records_analyzed": int,
    },
)

#: Liveness beacon (analyzer container -> PG root).  The root's failure
#: detector marks a container suspect when beacons stop and evicts it --
#: settling and re-dispatching its jobs -- well before the Reaper's
#: job-timeout would fire (see DESIGN.md section 5.2).
HEARTBEAT = Ontology(
    "heartbeat",
    fields={
        "container": str,
        "agent": str,
        "sent_at": (int, float),
    },
)

#: Contract-net call for proposals over an analysis job.
JOB_CFP = Ontology(
    "job-cfp",
    fields={
        "job_id": str,
        "cluster": str,
        "record_count": int,
        "required_service": str,
    },
)

#: Contract-net proposal: the container's bid.
JOB_PROPOSAL = Ontology(
    "job-proposal",
    fields={
        "job_id": str,
        "container": str,
        "estimated_completion": (int, float),
        "queue_length": int,
    },
)

#: Report/alert shipped to the interface grid.
MANAGEMENT_REPORT = Ontology(
    "management-report",
    fields={
        "report_id": str,
        "kind": str,
        "findings": (list, tuple),
        "generated_at": (int, float),
        "dataset": str,
        "records_analyzed": int,
        "report": None,
    },
    optional=("dataset", "records_analyzed", "report"),
)

#: Inter-site liveness beacon (gateway -> peer gateway).  Piggybacks the
#: sending site's processor-grid capacity advertisement (analyzer count
#: and outstanding jobs) so a saturated peer can pick a forwarding target
#: without extra round trips.  ``probe`` marks the capped-backoff beacons
#: sent toward a partitioned peer while reconnecting.
SITE_HEARTBEAT = Ontology(
    "site-heartbeat",
    fields={
        "site": str,
        "sent_at": (int, float),
        "analyzers": int,
        "outstanding": int,
        "probe": bool,
        "health": str,
    },
    optional=("probe", "health"),
)

#: An analysis job shipped across the site boundary because the origin
#: site's processor grid is saturated.  ``job`` is the ANALYSIS_JOB
#: content verbatim; ``forward_hops`` caps relaying (a forwarded job is
#: never forwarded again).
FORWARDED_JOB = Ontology(
    "forwarded-job",
    fields={
        "job": dict,
        "origin_site": str,
        "origin_gateway": str,
        "forward_hops": int,
    },
)

#: The result of a forwarded job travelling back to the origin gateway.
FORWARDED_RESULT = Ontology(
    "forwarded-result",
    fields={
        "result": dict,
        "origin_site": str,
        "executed_by": str,
    },
)

#: Peer-to-peer liveness digest (analyzer <-> analyzer / grid root).
#: ``digest`` maps member name -> ``[status, incarnation, last_heard]``
#: (the SWIM-style suspicion view; see :mod:`repro.core.gossip`).
#: ``kind`` selects the exchange: ``"digest"`` (periodic push),
#: ``"ping"`` (direct probe of a suspect), ``"ping-req"`` (ask a third
#: peer to probe ``subject`` indirectly) and ``"ack"`` (probe answer,
#: digest attached so the answer doubles as an anti-entropy round).
GOSSIP = Ontology(
    "gossip",
    fields={
        "kind": str,
        "origin": str,
        "digest": dict,
        "sent_at": (int, float),
        "subject": str,
    },
    optional=("digest", "subject"),
)

#: Degradation notice (gateway -> local interface): a peer site changed
#: link state, so its devices are now offline (partitioned) or back
#: online (healed).  Never silently stale: the interface exposes this via
#: ``device_status()`` / ``stale_findings()``.
SITE_STATUS = Ontology(
    "site-status",
    fields={
        "site": str,
        "status": str,
        "devices": (list, tuple),
        "at": (int, float),
    },
)

REGISTRY = {
    ontology.name: ontology
    for ontology in (
        CONTAINER_PROFILE, DATA_READY, ANALYSIS_JOB, ANALYSIS_RESULT,
        HEARTBEAT, JOB_CFP, JOB_PROPOSAL, MANAGEMENT_REPORT, GOSSIP,
        SITE_HEARTBEAT, FORWARDED_JOB, FORWARDED_RESULT, SITE_STATUS,
    )
}


def lookup(name):
    """Find a registered ontology by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown ontology %r (known: %s)" % (name, ", ".join(sorted(REGISTRY)))
        ) from None
