"""The agent platform: AMS registry + message transport service.

The platform spans every container in the deployment (FIPA's AMS/MTS roles
collapsed into one object).  Message routing:

* **intra-host** delivery is direct (no network cost) -- agents sharing a
  host talk through memory, as on a real agent platform;
* **inter-host** delivery wraps the ACL message in a network
  :class:`~repro.network.transport.Message` sized by the ACL size model and
  sends it through the simulated transport, charging both NICs.

Undeliverable messages (unknown agent, dead container) are returned to the
sender as FAILURE messages from the platform, per FIPA AMS semantics.
"""

from repro.agents.acl import ACLMessage, AgentId, Performative
from repro.network.transport import Message


class PlatformError(RuntimeError):
    """Platform-level misuse (duplicate names, unknown containers...)."""


#: Pseudo-agent name used as sender of platform failure notifications.
AMS_NAME = "ams"


class AgentPlatform:
    """AMS + MTS over a simulated network.

    Args:
        sim: the simulator.
        network: the topology.
        transport: shared :class:`~repro.network.transport.Transport`.
        name: platform name (cosmetic).
    """

    ACL_PORT = "acl"

    def __init__(self, sim, network, transport, name="repro-platform",
                 reliable_channel=None, telemetry=None):
        self.sim = sim
        self.network = network
        self.transport = transport
        self.name = name
        #: Optional :class:`~repro.network.reliable.ReliableChannel`; when
        #: set, :meth:`send_reliable` / :meth:`send_batch_reliable` route
        #: wire messages through it (acks + retransmission + dead-letter
        #: accounting) instead of fire-and-forget posting.
        self.reliable_channel = reliable_channel
        #: Optional :class:`~repro.simkernel.telemetry.Telemetry` flight
        #: recorder shared by every agent on the platform.  ``None`` (the
        #: default) keeps the hot paths span-free.
        self.telemetry = telemetry
        self.containers = {}
        self._agents = {}  # name -> agent
        self._bound_hosts = set()
        self.messages_routed = 0
        self.messages_failed = 0

    # -- registration (called by AgentContainer) -------------------------

    def _register_container(self, container):
        if container.name in self.containers:
            raise PlatformError("container %r already registered" % container.name)
        self.containers[container.name] = container
        if container.host.name not in self._bound_hosts:
            container.host.bind(self.ACL_PORT, self._on_network_message)
            self._bound_hosts.add(container.host.name)

    def _deregister_container(self, container):
        self.containers.pop(container.name, None)

    def _register_agent(self, agent):
        existing = self._agents.get(agent.name)
        if existing is not None and existing is not agent:
            raise PlatformError("agent name %r already registered" % agent.name)
        self._agents[agent.name] = agent

    def _deregister_agent(self, agent):
        if self._agents.get(agent.name) is agent:
            del self._agents[agent.name]

    # -- convenience constructors -----------------------------------------

    def create_container(self, name, host, services=(), knowledge=()):
        from repro.agents.container import AgentContainer

        return AgentContainer(name, host, self, services, knowledge)

    # -- lookup ------------------------------------------------------------

    def agent(self, name):
        if isinstance(name, AgentId):
            name = name.name
        return self._agents.get(name)

    def container_of(self, agent_name):
        agent = self.agent(agent_name)
        if agent is None:
            return None
        return agent.container

    def agent_names(self):
        return sorted(self._agents)

    # -- message transport ----------------------------------------------------

    def send(self, acl_message):
        """Route an ACL message to its receiver (fire-and-forget)."""
        wire = self._route(acl_message)
        if wire is not None:
            self.transport.post(wire)

    def send_batch(self, acl_messages):
        """Route several ACL messages at once.

        Local deliveries still happen one-by-one (memory handoff is already
        free), but wire-bound messages to the same destination host travel
        as one aggregate transfer via :meth:`Transport.post_batch` -- the
        paper's batch shipping made real at the MTS layer.
        """
        wires = [wire for wire in map(self._route, acl_messages)
                 if wire is not None]
        if wires:
            self.transport.post_batch(wires)

    def send_reliable(self, acl_message):
        """Route one ACL message over the reliable channel when installed.

        Without a channel this is exactly :meth:`send` -- loss-free runs
        stay byte-identical -- so senders that need delivery guarantees
        (collector shipping, data-ready notifies, replication, alerts) can
        call this unconditionally.
        """
        wire = self._route(acl_message)
        if wire is None:
            return
        if self.reliable_channel is None:
            self.transport.post(wire)
        else:
            self.reliable_channel.post(wire)

    def send_batch_reliable(self, acl_messages):
        """Batch variant of :meth:`send_reliable` (one aggregate transfer
        per destination flow for the first transmissions)."""
        wires = [wire for wire in map(self._route, acl_messages)
                 if wire is not None]
        if not wires:
            return
        if self.reliable_channel is None:
            self.transport.post_batch(wires)
        else:
            self.reliable_channel.post_batch(wires)

    def _route(self, acl_message):
        """Shared routing: deliver locally or return the wire message."""
        acl_message.sent_at = self.sim.now
        receiver = self.agent(acl_message.receiver)
        if receiver is None or receiver.container is None:
            self._bounce(acl_message, "unknown or undeployed agent %s"
                         % acl_message.receiver)
            return None
        sender = self.agent(acl_message.sender)
        sender_host = sender.container.host if sender and sender.container else None
        dest_host = receiver.container.host
        self.messages_routed += 1
        if sender_host is dest_host or sender_host is None:
            # Intra-host (or platform-origin): direct delivery, no NIC cost.
            self.sim.schedule(0.0, self._deliver_local, (acl_message,))
            return None
        return Message(
            sender=self.transport.address(sender_host.name, self.ACL_PORT),
            dest=self.transport.address(dest_host.name, self.ACL_PORT),
            payload=acl_message,
            size_units=acl_message.size_units,
            protocol="acl",
        )

    def _deliver_local(self, acl_message):
        receiver = self.agent(acl_message.receiver)
        if receiver is None or receiver.container is None:
            self._bounce(acl_message, "agent vanished before delivery")
            return
        receiver.deliver(acl_message)

    def _on_network_message(self, message):
        acl_message = message.payload
        if not isinstance(acl_message, ACLMessage):
            return
        receiver = self.agent(acl_message.receiver)
        if receiver is None or receiver.container is None:
            self._bounce(acl_message, "receiver gone at destination host")
            return
        receiver.deliver(acl_message)

    def _bounce(self, original, reason):
        """Return a FAILURE notification to the sender (if reachable)."""
        self.messages_failed += 1
        sender = self.agent(original.sender)
        if sender is None or sender.container is None:
            return  # nowhere to report
        if original.sender == AMS_NAME:
            return  # never bounce a bounce
        failure = ACLMessage(
            Performative.FAILURE,
            sender=AMS_NAME,
            receiver=original.sender,
            content={"reason": reason, "original": original},
            ontology="ams-failure",
            conversation_id=original.conversation_id,
            in_reply_to=original.reply_with,
        )
        self.sim.schedule(0.0, self._deliver_local, (failure,))

    def stats(self):
        return {
            "containers": len(self.containers),
            "agents": len(self._agents),
            "routed": self.messages_routed,
            "failed": self.messages_failed,
        }

    def __repr__(self):
        return "AgentPlatform(%r, agents=%d, containers=%d)" % (
            self.name, len(self._agents), len(self.containers),
        )
