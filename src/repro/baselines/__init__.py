"""Baseline architectures the paper compares against (Figure 5 / 6a / 6b).

* :mod:`centralized <repro.baselines.centralized>` -- Figure 6(a): one
  manager station polls, parses, stores and infers everything.
* :mod:`multiagent <repro.baselines.multiagent>` -- Figure 5 / 6(b): two
  collector hosts parse locally; storage and analysis stay centralized on
  the manager.
* :mod:`driver <repro.baselines.driver>` -- a shared run harness that
  executes the paper's workload on any of the three architectures and
  returns a :class:`~repro.evaluation.accounting.UtilizationReport`.
"""

from repro.baselines.centralized import centralized_spec
from repro.baselines.multiagent import multiagent_spec
from repro.baselines.driver import RunResult, run_architecture, run_figure6

__all__ = [
    "RunResult",
    "centralized_spec",
    "multiagent_spec",
    "run_architecture",
    "run_figure6",
]
