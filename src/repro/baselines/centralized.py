"""The centralized-management baseline (Figure 6a).

"The model implementing centralized management will present higher network
utilization as the data transmitted between the resource and manager
station is in raw format, being parsed by the manager itself.  Moreover,
as there is only one host involved in all activities, its processor
becomes the bottleneck."

Expressed as a degenerate grid deployment: every management role
(collection, classification, storage, analysis, interface) co-located on a
single "manager" host, and collectors configured *not* to parse locally so
the raw poll responses cross the network to the manager.
"""

from repro.core.system import DeviceSpec, GridTopologySpec, HostSpec

#: Name of the single management station.
MANAGER_HOST = "manager"


def default_devices(count=3, site="site1"):
    """The paper's evaluation devices: a small mixed population."""
    profiles = ("server", "router", "server", "switch")
    return [
        DeviceSpec("dev%d" % (index + 1), profiles[index % len(profiles)], site)
        for index in range(count)
    ]


def centralized_spec(devices=None, seed=0, cost_model=None, **overrides):
    """A :class:`GridTopologySpec` realizing the centralized model.

    All roles land on :data:`MANAGER_HOST`; the collector ships raw data
    (``collector_parse_locally=False``) so parsing happens at the manager,
    exactly as the paper describes.
    """
    if devices is None:
        devices = default_devices()
    manager = HostSpec(MANAGER_HOST, "site1")
    parameters = dict(
        devices=devices,
        collector_hosts=[HostSpec(MANAGER_HOST, "site1")],
        analysis_hosts=[HostSpec(MANAGER_HOST, "site1")],
        storage_host=manager,
        interface_host=HostSpec(MANAGER_HOST, "site1"),
        collector_parse_locally=False,
        seed=seed,
        cost_model=cost_model,
    )
    parameters.update(overrides)
    return GridTopologySpec(**parameters)
