"""Shared run harness for the three Figure 6 architectures.

Given a :class:`~repro.core.system.GridTopologySpec` (the grid proper, or
one of the degenerate baseline specs), :func:`run_architecture` executes
the paper's workload -- N requests of each type A/B/C -- waits for every
record to flow through collection, classification, storage, analysis and
reporting, and returns a :class:`RunResult` with the per-host utilization
rows Figure 6 plots.
"""

import math

from repro.core.system import GridManagementSystem
from repro.evaluation.accounting import UtilizationReport


class RunResult:
    """Outcome of one architecture run."""

    def __init__(self, label, system, report, makespan, completed):
        self.label = label
        self.system = system
        self.report = report
        self.makespan = makespan
        self.completed = completed

    @property
    def findings(self):
        return self.system.interface.all_findings()

    @property
    def reports_received(self):
        return list(self.system.interface.reports)

    @property
    def records_analyzed(self):
        return sum(r.records_analyzed for r in self.system.interface.reports)

    def __repr__(self):
        return "RunResult(%r, makespan=%s, hosts=%d)" % (
            self.label, self.makespan, len(self.report),
        )


def expected_report_count(total_records, dataset_threshold):
    """How many dataset reports the classifier will publish."""
    if dataset_threshold is None:
        return 1
    return max(1, math.ceil(total_records / dataset_threshold))


def run_architecture(spec, label, polls_per_type=10, interval=1.0,
                     stagger=0.1, timeout=600.0):
    """Run the paper's workload on one architecture.

    Returns a :class:`RunResult`; ``completed`` is False when the timeout
    expired before every report arrived (the report then covers whatever
    work happened, which is still meaningful for pathological configs).
    """
    system = GridManagementSystem(spec)
    goals = system.make_paper_goals(
        polls_per_type=polls_per_type, interval=interval, stagger=stagger,
    )
    system.assign_goals(goals)
    total_records = polls_per_type * 3
    completed = system.run_until_records(total_records, timeout=timeout)
    reports = system.interface.reports
    makespan = max((r.generated_at for r in reports), default=system.sim.now)
    system.stop_devices()
    report = UtilizationReport.from_hosts(
        label, system.management_hosts(), horizon=system.sim.now,
        makespan=makespan,
    )
    return RunResult(label, system, report, makespan, completed)


def run_figure6(polls_per_type=10, seed=0, cost_model=None, device_count=3,
                timeout=600.0, dataset_threshold=None):
    """Run all three architectures on the same workload and seed.

    ``dataset_threshold`` defaults to the full workload size so each run
    produces exactly one dataset -- and therefore exactly one
    "Inference AxBxC" cross analysis, matching the paper's Table 1 scenario.

    Returns ``{"centralized": RunResult, "multiagent": ..., "grid": ...}``.
    """
    if dataset_threshold is None:
        dataset_threshold = polls_per_type * 3
    from repro.baselines.centralized import centralized_spec, default_devices
    from repro.baselines.multiagent import multiagent_spec
    from repro.core.system import GridTopologySpec

    devices = default_devices(device_count)
    results = {}
    results["centralized"] = run_architecture(
        centralized_spec(devices=list(devices), seed=seed,
                         cost_model=cost_model,
                         dataset_threshold=dataset_threshold),
        label="centralized",
        polls_per_type=polls_per_type,
        timeout=timeout,
    )
    results["multiagent"] = run_architecture(
        multiagent_spec(devices=list(devices), seed=seed,
                        cost_model=cost_model,
                        dataset_threshold=dataset_threshold),
        label="multiagent",
        polls_per_type=polls_per_type,
        timeout=timeout,
    )
    grid_spec = GridTopologySpec.paper_figure6c(
        seed=seed, cost_model=cost_model, dataset_threshold=dataset_threshold,
    )
    grid_spec.devices = list(devices)
    results["grid"] = run_architecture(
        grid_spec, label="grid", polls_per_type=polls_per_type, timeout=timeout,
    )
    return results
