"""The multi-agent baseline (Figure 5 / Figure 6b).

"Here, there are more than one data collector hosts, which also carry out
parsing tasks where unnecessary information is removed before the data is
transmitted to the manager host. [...] These features lead to reduction in
communication traffic but keep a centralized data analysis structure,
which, again, is the system bottleneck."

Expressed as a grid deployment with dedicated collector hosts that parse
locally, while classification, storage, analysis and interface all
co-locate on the single manager host.  There is no workload distribution
for analysis -- one analysis container on one host.
"""

from repro.baselines.centralized import MANAGER_HOST, default_devices
from repro.core.system import GridTopologySpec, HostSpec


def multiagent_spec(devices=None, collector_count=2, seed=0, cost_model=None,
                    **overrides):
    """A :class:`GridTopologySpec` realizing the multi-agent model."""
    if devices is None:
        devices = default_devices()
    manager = HostSpec(MANAGER_HOST, "site1")
    parameters = dict(
        devices=devices,
        collector_hosts=[
            HostSpec("collector%d" % (index + 1), "site1")
            for index in range(collector_count)
        ],
        analysis_hosts=[HostSpec(MANAGER_HOST, "site1")],
        storage_host=manager,
        interface_host=HostSpec(MANAGER_HOST, "site1"),
        collector_parse_locally=True,
        seed=seed,
        cost_model=cost_model,
    )
    parameters.update(overrides)
    return GridTopologySpec(**parameters)
