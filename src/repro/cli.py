"""Command-line interface: run the paper's experiments from a shell.

Installed as the ``repro-sim`` console script::

    repro-sim figure6 --polls 10 --seed 42
    repro-sim table1
    repro-sim crossover --points 1 5 10 20
    repro-sim federation --mode integrated
    repro-sim quickstart --json out.json
    repro-sim trace --out trace.json --metrics metrics.json
    repro-sim chaos --scenario split_brain --report report.json

Every subcommand prints the paper-style tables; ``--json PATH`` also dumps
machine-readable results.
"""

import argparse
import sys

from repro.evaluation import export
from repro.evaluation.tables import format_number, format_table


def _add_common(parser):
    parser.add_argument("--seed", type=int, default=42,
                        help="master random seed (default 42)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write results as JSON to PATH")


def _cmd_table1(args):
    from repro.core.costs import CostModel

    model = CostModel()
    rows = [
        (name, format_number(cost.cpu), format_number(cost.net),
         format_number(cost.disk), "est" if cost.estimated else "paper")
        for name, cost in model.table_rows()
    ]
    print(format_table(("Tasks", "CPU", "Network", "Disc", "source"), rows,
                       title="Table 1: relative times of management tasks"))
    if args.json:
        export.dump_json(
            [
                {"task": name, "cpu": cost.cpu, "net": cost.net,
                 "disk": cost.disk, "estimated": cost.estimated}
                for name, cost in model.table_rows()
            ],
            args.json,
        )
    return 0


def _cmd_figure6(args):
    from repro.baselines.driver import run_figure6
    from repro.evaluation.accounting import compare_reports
    from repro.simkernel.resources import ResourceKind

    results = run_figure6(polls_per_type=args.polls, seed=args.seed)
    for label in ("centralized", "multiagent", "grid"):
        print(results[label].report.render())
        print()
    comparison = compare_reports(
        [result.report for result in results.values()], ResourceKind.CPU)
    print(format_table(
        ("architecture", "bottleneck", "max CPU units", "makespan (s)"),
        [(entry["label"], entry["max_host"],
          format_number(entry["max_host_units"]),
          "%.1f" % entry["makespan"]) for entry in comparison],
        title="winner first:",
    ))
    if args.json:
        export.dump_json(
            {label: export.run_result_to_dict(result)
             for label, result in results.items()},
            args.json,
        )
    return 0


def _cmd_quickstart(args):
    from repro.baselines.driver import run_architecture
    from repro.core.system import GridTopologySpec

    reliability = {"redelivery": True} if args.reliable else False
    spec = GridTopologySpec.paper_figure6c(
        seed=args.seed, dataset_threshold=args.polls * 3,
        reliability=reliability)
    result = run_architecture(spec, "grid", polls_per_type=args.polls)
    print(result.report.render())
    print()
    print("records analyzed: %d   findings: %d" % (
        result.records_analyzed, len(result.findings)))
    for finding in result.findings:
        print("  %-18s %-8s %s" % (
            finding.kind, finding.severity, finding.device))
    if args.json:
        export.dump_json(export.run_result_to_dict(result), args.json)
    return 0


def _print_span_report(recorder, pipeline, trace_count):
    print(format_table(
        ("stage", "spans", "open", "total s"),
        [(name, count, open_count, format_number(duration))
         for name, count, open_count, duration
         in recorder.summary_rows()],
        title="span summary (%d spans, %d traces, %d dropped):" % (
            len(recorder), trace_count, recorder.dropped,
        ),
    ))
    print()
    print("pipeline: %d batches shipped, %d chains complete, "
          "%d incomplete, %d orphan spans, %d open spans, "
          "%d spans dropped" % (
              pipeline["batches"], pipeline["complete"],
              len(pipeline["incomplete"]), len(pipeline["orphans"]),
              len(pipeline["open"]), pipeline["dropped"]))
    if pipeline["dropped"]:
        print("  WARNING: %d spans were rejected at capacity -- chain "
              "counts above undercount (use --stream to lift the ceiling)"
              % pipeline["dropped"])
    for trace_id, stage, why in pipeline["incomplete"]:
        print("  incomplete %s at %s: %s" % (trace_id, stage, why))
    stage_latency = pipeline.get("stage_latency")
    if stage_latency:
        print()
        print(_stage_latency_table(stage_latency))


def _stage_latency_table(stage_latency, title="stage latency (s):"):
    return format_table(
        ("stage", "count", "mean", "p50", "p95", "p99", "max"),
        [
            (stage, stats["count"], format_number(stats["mean"]),
             format_number(stats["p50"]), format_number(stats["p95"]),
             format_number(stats["p99"]), format_number(stats["max"]))
            for stage, stats in stage_latency.items()
        ],
        title=title,
    )


def _print_slowest(recorder, limit):
    """The N worst critical-path chains with per-stage attribution."""
    rows = recorder.slowest_traces(limit)
    if not rows:
        print("no closed trace chains recorded")
        return
    print("slowest %d trace chains (critical path):" % len(rows))
    for trace_id, total, chain in rows:
        print()
        print("  %s  total %.3fs" % (trace_id, total))
        for span in chain:
            duration = span.duration
            where = "@".join(part for part in (span.agent, span.host) if part)
            print("    %-10s %8s  %-6s %s" % (
                span.name,
                "%.3fs" % duration if duration is not None else "open",
                span.status, where,
            ))


def _cmd_trace_follow(args):
    from repro.simkernel.telemetry import load_streaming_trace

    recorder, manifest = load_streaming_trace(args.follow)
    print("streaming trace %s: %d chunks, %d spans exported, "
          "finalized=%s" % (
              args.follow, len(manifest["chunks"]),
              manifest["spans_exported"], manifest["finalized"]))
    print()
    _print_span_report(recorder, recorder.pipeline_report(),
                       manifest.get("trace_count", 0))
    if args.slowest:
        print()
        _print_slowest(recorder, args.slowest)
    return 0


def _cmd_trace(args):
    from repro.core.system import GridTopologySpec, GridManagementSystem

    if args.follow:
        return _cmd_trace_follow(args)
    telemetry_options = {"profile": args.profile,
                         "attribution": args.attribution}
    if args.stream:
        telemetry_options["stream_dir"] = args.stream
    spec = GridTopologySpec.paper_figure6c(
        seed=args.seed,
        dataset_threshold=args.polls * 3,
        telemetry=telemetry_options,
        reliability=args.reliable,
        shards=args.shards,
    )
    system = GridManagementSystem(spec)
    system.assign_goals(system.make_paper_goals(polls_per_type=args.polls))
    total = args.polls * 3
    completed = system.run_until_records(total, timeout=3000)
    system.stop_devices()
    telemetry = system.telemetry
    telemetry.finalize()
    if args.stream:
        # The in-memory store is drained once streamed: audit the full
        # on-disk view instead, exactly as --follow would.
        from repro.simkernel.telemetry import load_streaming_trace

        print("streaming trace written to %s (%d chunks, %d spans; "
              "inspect with: repro-sim trace --follow %s)" % (
                  args.stream, len(telemetry.exporter.chunks),
                  telemetry.exporter.spans_exported, args.stream))
        print()
        recorder, _ = load_streaming_trace(args.stream)
        _print_span_report(recorder, recorder.pipeline_report(),
                           telemetry.recorder.trace_count)
        if args.slowest:
            print()
            _print_slowest(recorder, args.slowest)
    else:
        pipeline = telemetry.pipeline_report()
        _print_span_report(telemetry.recorder, pipeline,
                           telemetry.recorder.trace_count)
        if args.slowest:
            print()
            _print_slowest(telemetry.recorder, args.slowest)
    if telemetry.profiler is not None:
        print()
        print(format_table(
            ("callback", "events", "total s"),
            [(name, count, "%.4f" % total_seconds)
             for name, count, total_seconds in telemetry.profiler.top(10)],
            title="kernel profile (hottest callbacks):",
        ))
    if args.out:
        export.dump_json(telemetry.chrome_trace(), args.out)
        print()
        print("chrome trace written to %s "
              "(load in chrome://tracing or ui.perfetto.dev)" % args.out)
    if args.metrics:
        export.dump_json(telemetry.metrics_snapshot(), args.metrics)
        print("metrics snapshot written to %s" % args.metrics)
    return 0 if completed else 1


# -- operational health (top / slo) ---------------------------------------

#: Default SLOs for the dashboard / CI heal drill: generous targets that
#: a healthy Figure-6c run meets easily (ship spans legitimately run tens
#: of seconds -- they cover dataset batching), blown through during an
#: outage, when parked batches redeliver minutes late or dead-letter.
DEFAULT_SLOS = ("ship:90:40:120", "dispatch:90:45:120")


def _parse_slo(text):
    """``stage:p:target[:window[:fast]]`` -> :class:`SLOSpec`."""
    from repro.core.health import SLOSpec

    parts = text.split(":")
    if not 3 <= len(parts) <= 5:
        raise SystemExit(
            "bad --slo %r (expected stage:p:target[:window[:fast]])" % text)
    kwargs = {"stage": parts[0], "p": float(parts[1]),
              "target": float(parts[2])}
    if len(parts) >= 4:
        kwargs["window"] = float(parts[3])
    if len(parts) == 5:
        kwargs["fast_window"] = float(parts[4])
    return SLOSpec(**kwargs)


_STATE_DOTS = {"green": "\x1b[32m●\x1b[0m", "degraded": "\x1b[33m●\x1b[0m",
               "red": "\x1b[31m●\x1b[0m"}


def _state_dot(state, color):
    if color:
        return "%s %s" % (_STATE_DOTS.get(state, "?"), state)
    return state


def _burn_gauge(burn, width=20):
    filled = min(width, int(round(min(burn, 10.0) / 10.0 * width)))
    return "[%s%s]" % ("#" * filled, "." * (width - filled))


def _render_health_frame(title, now, stage_latency, slo_rows, scorecards,
                         channel, plain):
    """One dashboard frame (ANSI-redraw unless ``plain``)."""
    color = not plain and sys.stdout.isatty()
    if not plain and sys.stdout.isatty():
        sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
    else:
        print("=" * 66)
    print("%s   t=%.1fs" % (title, now))
    print()
    if stage_latency:
        print(_stage_latency_table(stage_latency))
    else:
        print("(no closed pipeline spans yet)")
    print()
    if slo_rows:
        print("slo burn rates (fast/slow windows; trip >= threshold on both):")
        for row in slo_rows:
            slo = row["slo"]
            state = "BURNING" if row["burning"] else "ok"
            print("  %-9s p%-4g < %gs  fast %6.2f %s slow %6.2f  %s" % (
                slo["stage"], slo["p"], slo["target"],
                row["fast_burn"], _burn_gauge(row["fast_burn"]),
                row["slow_burn"], state))
        print()
    if scorecards is not None:
        print("scorecards (overall: %s)" % _state_dot(
            scorecards["overall"], color))
        for site, state in scorecards["sites"].items():
            print("  site %-10s %s" % (site, _state_dot(state, color)))
        for name, card in sorted(scorecards["containers"].items()):
            reasons = "; ".join(card["reasons"])
            print("    %-22s %-16s %s" % (
                name, _state_dot(card["state"], color), reasons))
        print()
    if channel:
        print("reliable channel: sent %d  delivered %d  retransmits %d  "
              "dead-letters %d  parked %d  redelivered %d" % (
                  channel.get("sent", 0), channel.get("delivered", 0),
                  channel.get("retransmits", 0),
                  channel.get("dead_letters", 0), channel.get("parked", 0),
                  channel.get("redelivered", 0)))
    sys.stdout.flush()


def _build_health_system(args, slos):
    from repro.core.system import GridTopologySpec, GridManagementSystem

    reliability = False
    if args.reliable:
        # The chaos-matrix ladder: retransmissions give up inside ~15s so
        # a longer outage exercises park + redelivery.
        reliability = {
            "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
            "redelivery": True, "redelivery_interval": 2.0,
            "redelivery_max_interval": 8.0,
        }
    spec = GridTopologySpec.paper_figure6c(
        seed=args.seed,
        dataset_threshold=args.polls * 3,
        reliability=reliability,
        heartbeat_interval=2.0,
        job_timeout=40.0,
        shards=getattr(args, "shards", 1),
        slos=slos,
    )
    return GridManagementSystem(spec)


def _analyzed(system):
    return sum(r.records_analyzed for r in system.interface.reports)


def _cmd_top(args):
    if args.follow:
        return _cmd_top_follow(args)
    slos = [_parse_slo(text) for text in (args.slo or DEFAULT_SLOS)]
    system = _build_health_system(args, slos)
    system.assign_goals(system.make_paper_goals(polls_per_type=args.polls))
    total = args.polls * 3
    health = system.health
    title = "repro-sim top -- Figure 6(c) grid, seed %d" % args.seed
    frames = 0
    while system.sim.now < args.duration:
        system.sim.run(until=system.sim.now + args.refresh)
        snap = health.snapshot()
        _render_health_frame(
            title, system.sim.now, snap["stage_latency"], snap["slos"],
            snap["scorecards"], snap.get("reliable_channel"), args.plain)
        frames += 1
        if args.frames and frames >= args.frames:
            break
        if _analyzed(system) >= total and not health.active_burns():
            break
    print()
    print("workload: %d/%d records analyzed, %d burn findings shipped"
          % (_analyzed(system), total, health.findings_shipped))
    return 0


def _cmd_top_follow(args):
    """Replay a streamed trace directory as dashboard frames."""
    from repro.core.health import SLOTracker
    from repro.simkernel.histogram import LatencyHistogram
    from repro.simkernel.telemetry import (
        PIPELINE_STAGES, load_streaming_trace)

    recorder, manifest = load_streaming_trace(args.follow)
    slos = [_parse_slo(text) for text in (args.slo or DEFAULT_SLOS)]
    trackers = [SLOTracker(slo) for slo in slos]
    closed = sorted(
        (span for span in recorder.spans if span.t_end is not None),
        key=lambda span: (span.t_end, span.span_id))
    if not closed:
        print("no closed spans in %s" % args.follow)
        return 1
    title = "repro-sim top --follow %s (%d spans)" % (
        args.follow, len(closed))
    frames = max(1, args.frames or 8)
    horizon = closed[-1].t_end
    step = horizon / frames
    histograms = {}
    cursor = 0
    for frame in range(1, frames + 1):
        frame_end = step * frame if frame < frames else horizon
        while cursor < len(closed) and closed[cursor].t_end <= frame_end:
            span = closed[cursor]
            cursor += 1
            if span.name in PIPELINE_STAGES:
                histogram = histograms.get(span.name)
                if histogram is None:
                    histogram = histograms[span.name] = LatencyHistogram()
                histogram.record(span.duration)
            for tracker in trackers:
                if tracker.slo.stage == span.name:
                    tracker.record(span.t_end, span.duration, span.status)
        for tracker in trackers:
            tracker.evaluate(frame_end)
        stage_latency = {
            stage: histograms[stage].summary()
            for stage in PIPELINE_STAGES if stage in histograms
        }
        _render_health_frame(
            title, frame_end, stage_latency,
            [tracker.snapshot(frame_end) for tracker in trackers],
            None, None, args.plain)
    raised = sum(tracker.raised for tracker in trackers)
    cleared = sum(tracker.cleared for tracker in trackers)
    print()
    print("replayed %d frames over %.1fs: %d burns raised, %d cleared"
          % (frames, horizon, raised, cleared))
    return 0


def _cmd_slo(args):
    """The CI heal drill: outage trips a burn, heal must clear it."""
    from repro.workloads.faults import FaultEvent, FaultPlan, apply_fault_plan

    slos = [_parse_slo(text) for text in (args.slo or DEFAULT_SLOS)]
    args.reliable = True  # the drill needs park + redelivery to heal
    system = _build_health_system(args, slos)
    system.collectors[0].poll_retries = 8
    apply_fault_plan(system, FaultPlan([
        FaultEvent(args.outage_at, FaultEvent.HOST_DOWN, "storage1",
                   clear_after=args.outage_len),
    ]))
    system.assign_goals(system.make_paper_goals(polls_per_type=args.polls))
    total = args.polls * 3
    health = system.health
    deadline = args.duration
    while system.sim.now < deadline:
        system.sim.run(until=system.sim.now + 5.0)
        if _analyzed(system) >= total and not health.active_burns():
            break
    # One settle margin: let trailing acks land and the final burn
    # evaluation tick observe the drained windows.
    system.sim.run(until=system.sim.now + 2 * health.check_interval)
    snapshot = health.snapshot()
    raised = sum(tracker.raised for tracker in health.trackers)
    cleared = sum(tracker.cleared for tracker in health.trackers)
    uncleared = snapshot["active_burns"]
    print("slo heal drill: storage host down at t=%gs for %gs, seed %d"
          % (args.outage_at, args.outage_len, args.seed))
    print("records analyzed: %d/%d   burns raised: %d   cleared: %d"
          % (_analyzed(system), total, raised, cleared))
    for event in snapshot["burn_events"]:
        print("  t=%-8.1f %-6s %s p%g (fast %.2f, slow %.2f)" % (
            event["time"], event["event"], event["stage"], event["p"],
            event["fast_burn"], event["slow_burn"]))
    print(_stage_latency_table(snapshot["stage_latency"]))
    print("scorecards overall: %s" % snapshot["scorecards"]["overall"])
    if args.report:
        payload = dict(snapshot)
        payload["burns_raised"] = raised
        payload["burns_cleared"] = cleared
        payload["records_analyzed"] = _analyzed(system)
        payload["records_expected"] = total
        # Span objects aren't JSON; the report only needs the audit counts.
        pipeline = system.telemetry.pipeline_report()
        payload["pipeline"] = {
            "batches": pipeline["batches"],
            "complete": pipeline["complete"],
            "incomplete": len(pipeline["incomplete"]),
            "orphans": len(pipeline["orphans"]),
            "open": len(pipeline["open"]),
            "dropped": pipeline["dropped"],
        }
        export.dump_json(payload, args.report)
        print("report written to %s" % args.report)
    if not raised:
        print("FAIL: the outage never tripped a burn -- the drill is "
              "vacuous (check the SLO targets against the fault plan)")
        return 1
    if uncleared:
        print("FAIL: %d slo-burn finding(s) still active after the heal: %s"
              % (len(uncleared),
                 ", ".join(burn["stage"] for burn in uncleared)))
        return 1
    print("PASS: every slo-burn raised during the outage cleared after "
          "the heal")
    return 0


#: Per-scenario run horizons: the flash crowd's 20x backlog (360 jobs)
#: takes ~1500s to drain through the shared storage-host pipeline.
_CHAOS_HORIZONS = {"flash_crowd": 2000.0}
_CHAOS_DEFAULT_HORIZON = 400.0


def _build_chaos_system(scenario, seed, analysis_hosts=4):
    """The chaos-matrix topology (same as tests/test_robustness_scenarios):
    one field collector host, N mgmt analysis hosts, storage+interface on
    mgmt, the scenario's spec overrides merged in."""
    from repro.core.system import (
        GridManagementSystem, GridTopologySpec, HostSpec)
    from repro.network.topology import LinkSpec
    from repro.workloads.faults import apply_fault_plan

    spec = GridTopologySpec(
        devices=scenario.devices,
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf%d" % (index + 1), "mgmt")
                        for index in range(analysis_hosts)],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=seed,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=40.0,
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        **scenario.spec_overrides
    )
    system = GridManagementSystem(spec)
    system.collectors[0].poll_retries = 8
    if scenario.fault_plan is not None:
        apply_fault_plan(system, scenario.fault_plan)
    system.assign_goals(scenario.build_goals(seed=seed))
    return system


def _chaos_tier_violations(system, tier):
    """The invariant-tier ladder as a violation list (empty = upheld)."""
    from repro.workloads.scenarios import (
        INVARIANT_TIERS, TIER_DETECTION_SURVIVES, TIER_HEAL_COMPLETE,
        TIER_NO_SILENT_LOSS)

    violations = []
    shipped = system.collectors[0].records_shipped
    classified = system.classifier.records_classified
    if shipped == 0:
        return ["no records shipped -- the run is vacuous"]
    rank = INVARIANT_TIERS.index(tier)
    if rank < INVARIANT_TIERS.index(TIER_NO_SILENT_LOSS):
        return violations
    channel = system.reliable_channel
    dead = 0
    if channel is not None:
        for letter in channel.dead_letters:
            acl = letter.message.payload
            if getattr(acl, "ontology", None) == "collected-batch":
                dead += len(acl.content["records"])
    if classified + dead < shipped:
        violations.append(
            "silent loss: shipped %d > classified %d + dead-lettered %d"
            % (shipped, classified, dead))
    if rank < INVARIANT_TIERS.index(TIER_HEAL_COMPLETE):
        return violations
    if classified != shipped:
        violations.append("not heal-complete: classified %d != shipped %d"
                          % (classified, shipped))
    if channel is not None:
        if channel.parked_count():
            violations.append("%d envelope(s) still parked"
                              % channel.parked_count())
        if channel.pending_count():
            violations.append("%d envelope(s) still pending"
                              % channel.pending_count())
        if channel.permanently_dead():
            violations.append("%d envelope(s) permanently dead"
                              % len(channel.permanently_dead()))
    if not system.root.datasets:
        violations.append("no datasets reached the root")
    elif not all(state.finished for state in system.root.datasets.values()):
        violations.append("unfinished dataset(s) at the root")
    if rank < INVARIANT_TIERS.index(TIER_DETECTION_SURVIVES):
        return violations
    if system.gossip is None:
        violations.append("tier requires gossip= but no mesh was built")
    elif not system.gossip.detection_times():
        violations.append("gossip never confirmed the root dead -- "
                          "detection did not survive the outage")
    return violations


def _cmd_chaos(args):
    """Run a catalog chaos scenario and gate its invariant tier."""
    from repro.workloads.scenarios import SCENARIO_CATALOG, catalog_scenario

    if args.list:
        for name in sorted(SCENARIO_CATALOG):
            scenario = catalog_scenario(name)
            print("%-16s %-30s %s" % (name, scenario.expected_tier,
                                      scenario.description))
        return 0
    if not args.scenario:
        print("chaos: --scenario NAME is required (--list shows the "
              "catalog)")
        return 2
    try:
        scenario = catalog_scenario(args.scenario)
    except KeyError as error:
        print("chaos: %s" % error.args[0])
        return 2
    horizon = args.horizon if args.horizon is not None else \
        _CHAOS_HORIZONS.get(scenario.name, _CHAOS_DEFAULT_HORIZON)
    system = _build_chaos_system(scenario, args.seed,
                                 analysis_hosts=args.analysis_hosts)
    system.sim.run(until=horizon)

    shipped = system.collectors[0].records_shipped
    classified = system.classifier.records_classified
    rows = [
        ("expected tier", scenario.expected_tier),
        ("records shipped / classified", "%d / %d" % (shipped, classified)),
        ("datasets finished", sum(
            1 for state in system.root.datasets.values() if state.finished)),
        ("reports", len(system.interface.reports)),
        ("containers evicted", system.root.containers_evicted),
        ("jobs re-dispatched", system.root.jobs_redispatched),
    ]
    detection = {}
    stand_ins = []
    if system.gossip is not None:
        detection = system.gossip.detection_times()
        stand_ins = sorted({who for who
                            in system.gossip.stand_ins().values()
                            if who is not None})
        rows.append(("gossip detections", ", ".join(
            "%s@%.1fs" % (name, at)
            for name, at in sorted(detection.items())) or "none"))
        rows.append(("stand-ins elected", ", ".join(stand_ins) or "none"))
    print(format_table(("metric", "value"), rows,
                       title="chaos drill: %s (horizon %gs, seed %d)" % (
                           scenario.name, horizon, args.seed)))
    violations = _chaos_tier_violations(system, scenario.expected_tier)
    if args.report:
        export.dump_json({
            "scenario": scenario.name,
            "description": scenario.description,
            "expected_tier": scenario.expected_tier,
            "horizon": horizon,
            "seed": args.seed,
            "records_shipped": shipped,
            "records_classified": classified,
            "reports": len(system.interface.reports),
            "containers_evicted": system.root.containers_evicted,
            "jobs_redispatched": system.root.jobs_redispatched,
            "gossip_detections": detection,
            "stand_ins": stand_ins,
            "violations": violations,
        }, args.report)
        print("report written to %s" % args.report)
    if violations:
        for violation in violations:
            print("FAIL: %s" % violation)
        return 1
    print("PASS: scenario %r upheld tier %r"
          % (scenario.name, scenario.expected_tier))
    return 0


def _cmd_crossover(args):
    from repro.evaluation.experiments import crossover_experiment
    from repro.workloads.scenarios import crossover_scenarios

    rows = crossover_experiment(
        crossover_scenarios(points=tuple(args.points)), seed=args.seed)
    print(format_table(
        ("req/type", "centralized (s)", "multiagent (s)", "grid (s)",
         "winner"),
        [
            (row["requests_per_type"],
             "%.1f" % row["makespans"]["centralized"],
             "%.1f" % row["makespans"]["multiagent"],
             "%.1f" % row["makespans"]["grid"],
             row["winner"])
            for row in rows
        ],
        title="crossover sweep:",
    ))
    if args.json:
        export.dump_json(rows, args.json)
    return 0


def _cmd_federation(args):
    from repro.core.federation import (
        MESH, FederatedManagementSystem, FederatedTopologySpec, SiteSpec)

    spec = FederatedTopologySpec(
        sites=[
            SiteSpec.simple("site%d" % (index + 1), device_count=args.devices)
            for index in range(args.sites)
        ],
        mode=args.mode,
        seed=args.seed,
        dataset_threshold=args.devices * 3,
        federation_reliability=args.reliable or args.mode == MESH,
        heartbeat_interval=args.heartbeat,
    )
    system = FederatedManagementSystem(spec)
    first_devices = sorted(system.devices)[: args.sites]
    for device_name in first_devices:
        system.devices[device_name].inject_fault("cpu_runaway")
    system.assign_site_goals(system.make_site_goals(polls_per_type=args.polls))
    if args.partition:
        from repro.workloads.faults import apply_fault_plan, site_partition_plan

        apply_fault_plan(system, site_partition_plan(
            args.partition, partition_at=args.partition_at,
            heal_after=args.heal_after))
    total = args.sites * args.polls * 3
    completed = system.run_until_records(total, timeout=8000)
    system.stop_devices()
    print(system.utilization_report().render())
    kinds = sorted({finding.kind for finding in system.all_findings()})
    print()
    print("completed: %s   records: %d   findings: %s" % (
        completed, system.records_analyzed(), ", ".join(kinds) or "none"))
    forwarding = None
    if args.mode == MESH:
        forwarding = system.forwarding_report()
        print(format_table(
            ("site",) + tuple(sorted(system.sites)),
            [
                (site,) + tuple(
                    states.get(peer, "-") for peer in sorted(system.sites)
                )
                for site, states in sorted(
                    system.link_state_report().items())
            ],
            title="mesh link states:",
        ))
        print("forwarded: %d   delivered: %d   expired: %d   "
              "partitions: %d   heals: %d" % (
                  forwarding["jobs_forwarded"],
                  forwarding["results_delivered"],
                  forwarding["forwards_expired"],
                  forwarding["partitions_declared"],
                  forwarding["heals_declared"],
              ))
    if args.json:
        payload = {
            "mode": args.mode,
            "completed": completed,
            "records": system.records_analyzed(),
            "finding_kinds": kinds,
            "utilization": export.utilization_report_to_dict(
                system.utilization_report()),
        }
        if forwarding is not None:
            payload["forwarding"] = forwarding
            payload["link_states"] = system.link_state_report()
        export.dump_json(payload, args.json)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Agent-grid network management (MIDDLEWARE 2003) "
                    "reproduction experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="print Table 1")
    _add_common(table1)
    table1.set_defaults(handler=_cmd_table1)

    figure6 = subparsers.add_parser(
        "figure6", help="run the three-architecture comparison")
    _add_common(figure6)
    figure6.add_argument("--polls", type=int, default=10,
                         help="requests of each type (default 10)")
    figure6.set_defaults(handler=_cmd_figure6)

    quickstart = subparsers.add_parser(
        "quickstart", help="run the Figure 6(c) grid once")
    _add_common(quickstart)
    quickstart.add_argument("--polls", type=int, default=10)
    quickstart.add_argument(
        "--reliable", action="store_true",
        help="ship over the reliable channel with redelivery enabled "
             "(loss-free runs produce byte-identical output)")
    quickstart.set_defaults(handler=_cmd_quickstart)

    trace = subparsers.add_parser(
        "trace", help="run the Figure 6(c) grid with the flight recorder on")
    _add_common(trace)
    trace.add_argument("--polls", type=int, default=10)
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="write the Chrome-trace/Perfetto timeline here")
    trace.add_argument("--metrics", metavar="PATH", default=None,
                       help="write the labelled metrics snapshot here")
    trace.add_argument("--shards", type=int, default=1,
                       help="classifier/storage shards (>1 turns on the "
                            "consistent-hash sharded lane and its "
                            "shard.* metrics)")
    trace.add_argument("--profile", action="store_true",
                       help="also profile kernel callbacks (slower)")
    trace.add_argument("--reliable", action="store_true",
                       help="route critical sends over the reliable channel")
    trace.add_argument("--stream", metavar="DIR", default=None,
                       help="rotate closed spans to chunked Chrome-trace "
                            "files in DIR (no in-memory capacity ceiling)")
    trace.add_argument("--attribution", action="store_true",
                       help="record a sim-time span per behaviour "
                            "activation (who occupies the timeline)")
    trace.add_argument("--follow", metavar="DIR", default=None,
                       help="skip the run: read a streaming-export "
                            "manifest from DIR and print the span summary "
                            "and pipeline audit from the on-disk chunks")
    trace.add_argument("--slowest", type=int, default=0, metavar="N",
                       help="also print the N worst critical-path chains "
                            "with per-stage attribution")
    trace.set_defaults(handler=_cmd_trace)

    top = subparsers.add_parser(
        "top", help="live health dashboard over a running grid "
                    "(or --follow a streamed trace)")
    _add_common(top)
    top.add_argument("--polls", type=int, default=10)
    top.add_argument("--refresh", type=float, default=5.0,
                     help="simulated seconds per dashboard frame "
                          "(default 5)")
    top.add_argument("--duration", type=float, default=300.0,
                     help="maximum simulated seconds (default 300)")
    top.add_argument("--frames", type=int, default=0,
                     help="stop after N frames (0 = run to completion; "
                          "--follow mode defaults to 8)")
    top.add_argument("--reliable", action="store_true",
                     help="route critical sends over the reliable channel")
    top.add_argument("--shards", type=int, default=1)
    top.add_argument("--slo", action="append", metavar="SPEC",
                     help="latency objective as stage:p:target[:window"
                          "[:fast]] (repeatable; default %s)"
                          % " ".join(DEFAULT_SLOS))
    top.add_argument("--plain", action="store_true",
                     help="frame separators instead of ANSI screen redraw "
                          "(for logs / non-TTY output)")
    top.add_argument("--follow", metavar="DIR", default=None,
                     help="replay a streaming-export directory as "
                          "dashboard frames instead of running a sim")
    top.set_defaults(handler=_cmd_top)

    slo = subparsers.add_parser(
        "slo", help="run the outage/heal SLO drill; exit 1 on any "
                    "un-cleared slo-burn finding")
    _add_common(slo)
    slo.add_argument("--polls", type=int, default=6)
    slo.add_argument("--duration", type=float, default=400.0,
                     help="simulated-time budget (default 400)")
    slo.add_argument("--outage-at", type=float, default=5.0)
    slo.add_argument("--outage-len", type=float, default=30.0)
    slo.add_argument("--slo", action="append", metavar="SPEC",
                     help="latency objective as stage:p:target[:window"
                          "[:fast]] (repeatable; default %s)"
                          % " ".join(DEFAULT_SLOS))
    slo.add_argument("--report", metavar="PATH", default=None,
                     help="write the CI-consumable JSON health report here")
    slo.set_defaults(handler=_cmd_slo)

    chaos = subparsers.add_parser(
        "chaos", help="run a catalog chaos scenario; exit 1 if its "
                      "invariant tier is violated")
    _add_common(chaos)
    chaos.add_argument("--scenario", metavar="NAME", default=None,
                       help="catalog scenario name (see --list)")
    chaos.add_argument("--list", action="store_true",
                       help="print the scenario catalog and exit")
    chaos.add_argument("--horizon", type=float, default=None,
                       help="simulated seconds to run (default: per-"
                            "scenario, %g unless noted)"
                            % _CHAOS_DEFAULT_HORIZON)
    chaos.add_argument("--analysis-hosts", type=int, default=4,
                       help="analysis hosts in the matrix topology "
                            "(default 4)")
    chaos.add_argument("--report", metavar="PATH", default=None,
                       help="write the CI-consumable JSON scenario report "
                            "here")
    chaos.set_defaults(handler=_cmd_chaos)

    crossover = subparsers.add_parser(
        "crossover", help="sweep workload volume across architectures")
    _add_common(crossover)
    crossover.add_argument("--points", type=int, nargs="+",
                           default=[1, 5, 10, 20])
    crossover.set_defaults(handler=_cmd_crossover)

    federation = subparsers.add_parser(
        "federation", help="run a multi-site deployment")
    _add_common(federation)
    federation.add_argument("--mode",
                            choices=("integrated", "siloed", "mesh"),
                            default="integrated")
    federation.add_argument("--sites", type=int, default=2)
    federation.add_argument("--devices", type=int, default=2,
                            help="devices per site")
    federation.add_argument("--polls", type=int, default=4)
    federation.add_argument("--reliable", action="store_true",
                            help="route inter-site traffic over the "
                                 "reliable channel (implied by mesh mode)")
    federation.add_argument("--heartbeat", type=float, default=None,
                            help="inter-site heartbeat interval in seconds "
                                 "(mesh mode; default 1.0)")
    federation.add_argument("--partition", metavar="SITE", default=None,
                            help="partition SITE mid-run (mesh fault drill)")
    federation.add_argument("--partition-at", type=float, default=15.0,
                            help="when the partition starts (default 15)")
    federation.add_argument("--heal-after", type=float, default=25.0,
                            help="partition duration (default 25)")
    federation.set_defaults(handler=_cmd_federation)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
