"""Command-line interface: run the paper's experiments from a shell.

Installed as the ``repro-sim`` console script::

    repro-sim figure6 --polls 10 --seed 42
    repro-sim table1
    repro-sim crossover --points 1 5 10 20
    repro-sim federation --mode integrated
    repro-sim quickstart --json out.json
    repro-sim trace --out trace.json --metrics metrics.json

Every subcommand prints the paper-style tables; ``--json PATH`` also dumps
machine-readable results.
"""

import argparse
import sys

from repro.evaluation import export
from repro.evaluation.tables import format_number, format_table


def _add_common(parser):
    parser.add_argument("--seed", type=int, default=42,
                        help="master random seed (default 42)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write results as JSON to PATH")


def _cmd_table1(args):
    from repro.core.costs import CostModel

    model = CostModel()
    rows = [
        (name, format_number(cost.cpu), format_number(cost.net),
         format_number(cost.disk), "est" if cost.estimated else "paper")
        for name, cost in model.table_rows()
    ]
    print(format_table(("Tasks", "CPU", "Network", "Disc", "source"), rows,
                       title="Table 1: relative times of management tasks"))
    if args.json:
        export.dump_json(
            [
                {"task": name, "cpu": cost.cpu, "net": cost.net,
                 "disk": cost.disk, "estimated": cost.estimated}
                for name, cost in model.table_rows()
            ],
            args.json,
        )
    return 0


def _cmd_figure6(args):
    from repro.baselines.driver import run_figure6
    from repro.evaluation.accounting import compare_reports
    from repro.simkernel.resources import ResourceKind

    results = run_figure6(polls_per_type=args.polls, seed=args.seed)
    for label in ("centralized", "multiagent", "grid"):
        print(results[label].report.render())
        print()
    comparison = compare_reports(
        [result.report for result in results.values()], ResourceKind.CPU)
    print(format_table(
        ("architecture", "bottleneck", "max CPU units", "makespan (s)"),
        [(entry["label"], entry["max_host"],
          format_number(entry["max_host_units"]),
          "%.1f" % entry["makespan"]) for entry in comparison],
        title="winner first:",
    ))
    if args.json:
        export.dump_json(
            {label: export.run_result_to_dict(result)
             for label, result in results.items()},
            args.json,
        )
    return 0


def _cmd_quickstart(args):
    from repro.baselines.driver import run_architecture
    from repro.core.system import GridTopologySpec

    reliability = {"redelivery": True} if args.reliable else False
    spec = GridTopologySpec.paper_figure6c(
        seed=args.seed, dataset_threshold=args.polls * 3,
        reliability=reliability)
    result = run_architecture(spec, "grid", polls_per_type=args.polls)
    print(result.report.render())
    print()
    print("records analyzed: %d   findings: %d" % (
        result.records_analyzed, len(result.findings)))
    for finding in result.findings:
        print("  %-18s %-8s %s" % (
            finding.kind, finding.severity, finding.device))
    if args.json:
        export.dump_json(export.run_result_to_dict(result), args.json)
    return 0


def _print_span_report(recorder, pipeline, trace_count):
    print(format_table(
        ("stage", "spans", "open", "total s"),
        [(name, count, open_count, format_number(duration))
         for name, count, open_count, duration
         in recorder.summary_rows()],
        title="span summary (%d spans, %d traces, %d dropped):" % (
            len(recorder), trace_count, recorder.dropped,
        ),
    ))
    print()
    print("pipeline: %d batches shipped, %d chains complete, "
          "%d incomplete, %d orphan spans, %d open spans, "
          "%d spans dropped" % (
              pipeline["batches"], pipeline["complete"],
              len(pipeline["incomplete"]), len(pipeline["orphans"]),
              len(pipeline["open"]), pipeline["dropped"]))
    if pipeline["dropped"]:
        print("  WARNING: %d spans were rejected at capacity -- chain "
              "counts above undercount (use --stream to lift the ceiling)"
              % pipeline["dropped"])
    for trace_id, stage, why in pipeline["incomplete"]:
        print("  incomplete %s at %s: %s" % (trace_id, stage, why))


def _cmd_trace_follow(args):
    from repro.simkernel.telemetry import load_streaming_trace

    recorder, manifest = load_streaming_trace(args.follow)
    print("streaming trace %s: %d chunks, %d spans exported, "
          "finalized=%s" % (
              args.follow, len(manifest["chunks"]),
              manifest["spans_exported"], manifest["finalized"]))
    print()
    _print_span_report(recorder, recorder.pipeline_report(),
                       manifest.get("trace_count", 0))
    return 0


def _cmd_trace(args):
    from repro.core.system import GridTopologySpec, GridManagementSystem

    if args.follow:
        return _cmd_trace_follow(args)
    telemetry_options = {"profile": args.profile,
                         "attribution": args.attribution}
    if args.stream:
        telemetry_options["stream_dir"] = args.stream
    spec = GridTopologySpec.paper_figure6c(
        seed=args.seed,
        dataset_threshold=args.polls * 3,
        telemetry=telemetry_options,
        reliability=args.reliable,
        shards=args.shards,
    )
    system = GridManagementSystem(spec)
    system.assign_goals(system.make_paper_goals(polls_per_type=args.polls))
    total = args.polls * 3
    completed = system.run_until_records(total, timeout=3000)
    system.stop_devices()
    telemetry = system.telemetry
    telemetry.finalize()
    if args.stream:
        # The in-memory store is drained once streamed: audit the full
        # on-disk view instead, exactly as --follow would.
        from repro.simkernel.telemetry import load_streaming_trace

        print("streaming trace written to %s (%d chunks, %d spans; "
              "inspect with: repro-sim trace --follow %s)" % (
                  args.stream, len(telemetry.exporter.chunks),
                  telemetry.exporter.spans_exported, args.stream))
        print()
        recorder, _ = load_streaming_trace(args.stream)
        _print_span_report(recorder, recorder.pipeline_report(),
                           telemetry.recorder.trace_count)
    else:
        pipeline = telemetry.pipeline_report()
        _print_span_report(telemetry.recorder, pipeline,
                           telemetry.recorder.trace_count)
    if telemetry.profiler is not None:
        print()
        print(format_table(
            ("callback", "events", "total s"),
            [(name, count, "%.4f" % total_seconds)
             for name, count, total_seconds in telemetry.profiler.top(10)],
            title="kernel profile (hottest callbacks):",
        ))
    if args.out:
        export.dump_json(telemetry.chrome_trace(), args.out)
        print()
        print("chrome trace written to %s "
              "(load in chrome://tracing or ui.perfetto.dev)" % args.out)
    if args.metrics:
        export.dump_json(telemetry.metrics_snapshot(), args.metrics)
        print("metrics snapshot written to %s" % args.metrics)
    return 0 if completed else 1


def _cmd_crossover(args):
    from repro.evaluation.experiments import crossover_experiment
    from repro.workloads.scenarios import crossover_scenarios

    rows = crossover_experiment(
        crossover_scenarios(points=tuple(args.points)), seed=args.seed)
    print(format_table(
        ("req/type", "centralized (s)", "multiagent (s)", "grid (s)",
         "winner"),
        [
            (row["requests_per_type"],
             "%.1f" % row["makespans"]["centralized"],
             "%.1f" % row["makespans"]["multiagent"],
             "%.1f" % row["makespans"]["grid"],
             row["winner"])
            for row in rows
        ],
        title="crossover sweep:",
    ))
    if args.json:
        export.dump_json(rows, args.json)
    return 0


def _cmd_federation(args):
    from repro.core.federation import (
        MESH, FederatedManagementSystem, FederatedTopologySpec, SiteSpec)

    spec = FederatedTopologySpec(
        sites=[
            SiteSpec.simple("site%d" % (index + 1), device_count=args.devices)
            for index in range(args.sites)
        ],
        mode=args.mode,
        seed=args.seed,
        dataset_threshold=args.devices * 3,
        federation_reliability=args.reliable or args.mode == MESH,
        heartbeat_interval=args.heartbeat,
    )
    system = FederatedManagementSystem(spec)
    first_devices = sorted(system.devices)[: args.sites]
    for device_name in first_devices:
        system.devices[device_name].inject_fault("cpu_runaway")
    system.assign_site_goals(system.make_site_goals(polls_per_type=args.polls))
    if args.partition:
        from repro.workloads.faults import apply_fault_plan, site_partition_plan

        apply_fault_plan(system, site_partition_plan(
            args.partition, partition_at=args.partition_at,
            heal_after=args.heal_after))
    total = args.sites * args.polls * 3
    completed = system.run_until_records(total, timeout=8000)
    system.stop_devices()
    print(system.utilization_report().render())
    kinds = sorted({finding.kind for finding in system.all_findings()})
    print()
    print("completed: %s   records: %d   findings: %s" % (
        completed, system.records_analyzed(), ", ".join(kinds) or "none"))
    forwarding = None
    if args.mode == MESH:
        forwarding = system.forwarding_report()
        print(format_table(
            ("site",) + tuple(sorted(system.sites)),
            [
                (site,) + tuple(
                    states.get(peer, "-") for peer in sorted(system.sites)
                )
                for site, states in sorted(
                    system.link_state_report().items())
            ],
            title="mesh link states:",
        ))
        print("forwarded: %d   delivered: %d   expired: %d   "
              "partitions: %d   heals: %d" % (
                  forwarding["jobs_forwarded"],
                  forwarding["results_delivered"],
                  forwarding["forwards_expired"],
                  forwarding["partitions_declared"],
                  forwarding["heals_declared"],
              ))
    if args.json:
        payload = {
            "mode": args.mode,
            "completed": completed,
            "records": system.records_analyzed(),
            "finding_kinds": kinds,
            "utilization": export.utilization_report_to_dict(
                system.utilization_report()),
        }
        if forwarding is not None:
            payload["forwarding"] = forwarding
            payload["link_states"] = system.link_state_report()
        export.dump_json(payload, args.json)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Agent-grid network management (MIDDLEWARE 2003) "
                    "reproduction experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="print Table 1")
    _add_common(table1)
    table1.set_defaults(handler=_cmd_table1)

    figure6 = subparsers.add_parser(
        "figure6", help="run the three-architecture comparison")
    _add_common(figure6)
    figure6.add_argument("--polls", type=int, default=10,
                         help="requests of each type (default 10)")
    figure6.set_defaults(handler=_cmd_figure6)

    quickstart = subparsers.add_parser(
        "quickstart", help="run the Figure 6(c) grid once")
    _add_common(quickstart)
    quickstart.add_argument("--polls", type=int, default=10)
    quickstart.add_argument(
        "--reliable", action="store_true",
        help="ship over the reliable channel with redelivery enabled "
             "(loss-free runs produce byte-identical output)")
    quickstart.set_defaults(handler=_cmd_quickstart)

    trace = subparsers.add_parser(
        "trace", help="run the Figure 6(c) grid with the flight recorder on")
    _add_common(trace)
    trace.add_argument("--polls", type=int, default=10)
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="write the Chrome-trace/Perfetto timeline here")
    trace.add_argument("--metrics", metavar="PATH", default=None,
                       help="write the labelled metrics snapshot here")
    trace.add_argument("--shards", type=int, default=1,
                       help="classifier/storage shards (>1 turns on the "
                            "consistent-hash sharded lane and its "
                            "shard.* metrics)")
    trace.add_argument("--profile", action="store_true",
                       help="also profile kernel callbacks (slower)")
    trace.add_argument("--reliable", action="store_true",
                       help="route critical sends over the reliable channel")
    trace.add_argument("--stream", metavar="DIR", default=None,
                       help="rotate closed spans to chunked Chrome-trace "
                            "files in DIR (no in-memory capacity ceiling)")
    trace.add_argument("--attribution", action="store_true",
                       help="record a sim-time span per behaviour "
                            "activation (who occupies the timeline)")
    trace.add_argument("--follow", metavar="DIR", default=None,
                       help="skip the run: read a streaming-export "
                            "manifest from DIR and print the span summary "
                            "and pipeline audit from the on-disk chunks")
    trace.set_defaults(handler=_cmd_trace)

    crossover = subparsers.add_parser(
        "crossover", help="sweep workload volume across architectures")
    _add_common(crossover)
    crossover.add_argument("--points", type=int, nargs="+",
                           default=[1, 5, 10, 20])
    crossover.set_defaults(handler=_cmd_crossover)

    federation = subparsers.add_parser(
        "federation", help="run a multi-site deployment")
    _add_common(federation)
    federation.add_argument("--mode",
                            choices=("integrated", "siloed", "mesh"),
                            default="integrated")
    federation.add_argument("--sites", type=int, default=2)
    federation.add_argument("--devices", type=int, default=2,
                            help="devices per site")
    federation.add_argument("--polls", type=int, default=4)
    federation.add_argument("--reliable", action="store_true",
                            help="route inter-site traffic over the "
                                 "reliable channel (implied by mesh mode)")
    federation.add_argument("--heartbeat", type=float, default=None,
                            help="inter-site heartbeat interval in seconds "
                                 "(mesh mode; default 1.0)")
    federation.add_argument("--partition", metavar="SITE", default=None,
                            help="partition SITE mid-run (mesh fault drill)")
    federation.add_argument("--partition-at", type=float, default=15.0,
                            help="when the partition starts (default 15)")
    federation.add_argument("--heal-after", type=float, default=25.0,
                            help="partition duration (default 25)")
    federation.set_defaults(handler=_cmd_federation)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
