"""The paper's contribution: the agent-grid management architecture.

Subpackage layout (one module per architectural element of Figure 2):

* :mod:`records <repro.core.records>` -- the common data representation
  collected data is normalized into;
* :mod:`costs <repro.core.costs>` -- the Table 1 cost model driving all
  resource charging;
* :mod:`storage <repro.core.storage>` -- the indexed management-data store;
* :mod:`collector <repro.core.collector>` -- the Collector Grid (CG);
* :mod:`classifier <repro.core.classifier>` -- the Classifier Grid (CLG);
* :mod:`processor <repro.core.processor>` -- the Processor Grid (PG): root
  broker, analyzer containers, multi-level analysis;
* :mod:`loadbalance <repro.core.loadbalance>` -- job-placement policies;
* :mod:`negotiation <repro.core.negotiation>` -- FIPA contract-net;
* :mod:`interface <repro.core.interface>` -- the Interface Grid (IG);
* :mod:`reports <repro.core.reports>` -- management reports and alerts;
* :mod:`system <repro.core.system>` -- :class:`GridManagementSystem`, the
  facade that deploys a full grid from a topology spec.
"""

from repro.core.records import CollectionGoal, ManagementRecord, Sample
from repro.core.costs import CostModel, TaskKind, REQUEST_TYPE_GROUPS
from repro.core.storage import ManagementDataStore, StorageAgent
from repro.core.reports import Alert, Finding, ManagementReport
from repro.core.loadbalance import (
    CapacityWeightedPolicy,
    IdleFirstPolicy,
    KnowledgeFirstPolicy,
    NegotiatedPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.core.collector import CollectorAgent
from repro.core.classifier import ClassifierAgent
from repro.core.processor import AnalyzerAgent, ProcessorRootAgent
from repro.core.interface import InterfaceAgent
from repro.core.system import GridManagementSystem, GridTopologySpec
from repro.core.federation import (
    FederatedManagementSystem,
    FederatedTopologySpec,
    SiteSpec,
)
from repro.core.reactive import ReactiveCollectionService
from repro.core.replication import ReplicationService, attach_failover
from repro.core.autonomic import MobilityBalancer

__all__ = [
    "Alert",
    "AnalyzerAgent",
    "CapacityWeightedPolicy",
    "ClassifierAgent",
    "CollectionGoal",
    "CollectorAgent",
    "FederatedManagementSystem",
    "FederatedTopologySpec",
    "MobilityBalancer",
    "ReactiveCollectionService",
    "ReplicationService",
    "SiteSpec",
    "attach_failover",
    "CostModel",
    "Finding",
    "GridManagementSystem",
    "GridTopologySpec",
    "IdleFirstPolicy",
    "InterfaceAgent",
    "KnowledgeFirstPolicy",
    "ManagementDataStore",
    "ManagementRecord",
    "ManagementReport",
    "NegotiatedPolicy",
    "ProcessorRootAgent",
    "REQUEST_TYPE_GROUPS",
    "RoundRobinPolicy",
    "Sample",
    "StorageAgent",
    "TaskKind",
    "make_policy",
]
