"""Autonomic load balancing through agent mobility.

The paper's future work: "Investigating further the utilization of mobile
agents in data analysis and in load balancing.  Agent mobility allows for
a migration of analysis activities attributed to them, improving the
utilization of resources."

:class:`MobilityBalancer` closes that loop automatically: it periodically
compares analyzer hosts' CPU pressure (queue backlog normalized by
capacity) and, when the imbalance crosses a threshold, migrates an
analyzer agent from the hottest container to the coolest one.  Migration
uses the platform :class:`~repro.agents.mobility.MobilityService`, so it
pays serialization CPU and transfer bytes, and any in-flight job on the
moving agent is recovered by the grid root's re-dispatch machinery.
"""

from repro.agents.mobility import MobilityService


class BalanceDecision:
    """Record of one balancing action (or the reason for inaction)."""

    def __init__(self, at, action, detail):
        self.at = at
        self.action = action  # "migrate" | "hold"
        self.detail = detail

    def __repr__(self):
        return "BalanceDecision(t=%g, %s: %s)" % (self.at, self.action, self.detail)


class MobilityBalancer:
    """Watches analyzer containers and migrates agents off hot hosts.

    Args:
        platform: the agent platform.
        containers: analyzer containers under management (agents may move
            between them; new agents deployed later are picked up).
        period: seconds between balance evaluations.
        imbalance_threshold: migrate when the hottest host's pressure
            exceeds the coolest's by at least this many *seconds of queued
            work per unit capacity*.
        max_migrations: stop after this many moves (None = unlimited).
    """

    def __init__(self, platform, containers, period=10.0,
                 imbalance_threshold=5.0, max_migrations=None):
        if len(containers) < 2:
            raise ValueError("balancing needs at least two containers")
        self.platform = platform
        self.sim = platform.sim
        self.containers = list(containers)
        self.period = period
        self.imbalance_threshold = imbalance_threshold
        self.max_migrations = max_migrations
        self.mobility = MobilityService(platform)
        self.decisions = []
        self.migrations = 0
        self._process = self.sim.spawn(self._run(), name="mobility-balancer")

    def stop(self):
        self._process.kill()

    # -- pressure model ----------------------------------------------------

    @staticmethod
    def pressure(container):
        """Seconds of queued CPU work per unit capacity on the host.

        Uses queue length x a nominal 20-unit job estimate (the directory
        profile does not expose exact queued units), plus a busy-agent
        term so an agent mid-job counts even with an empty queue.
        """
        host = container.host
        backlog_units = host.cpu.queue_length * 20.0 + container.busy_agents * 20.0
        return backlog_units / host.cpu.capacity

    # -- control loop ----------------------------------------------------------

    def _run(self):
        while True:
            yield self.period
            if (self.max_migrations is not None
                    and self.migrations >= self.max_migrations):
                return
            yield from self._evaluate()

    def _evaluate(self):
        live = [container for container in self.containers if container.alive]
        if len(live) < 2:
            return
        ranked = sorted(live, key=lambda c: (self.pressure(c), c.name))
        coolest, hottest = ranked[0], ranked[-1]
        gap = self.pressure(hottest) - self.pressure(coolest)
        if gap < self.imbalance_threshold:
            self.decisions.append(BalanceDecision(
                self.sim.now, "hold", "gap=%.1fs" % gap))
            return
        movable = [
            agent for agent in hottest.agents.values()
            if hasattr(agent, "knowledge_base")  # only analysis agents move
        ]
        if not movable or len(hottest.agents) <= 0:
            self.decisions.append(BalanceDecision(
                self.sim.now, "hold", "no movable agent on %s" % hottest.name))
            return
        agent = sorted(movable, key=lambda a: a.name)[0]
        self.decisions.append(BalanceDecision(
            self.sim.now, "migrate",
            "%s: %s -> %s (gap=%.1fs)" % (
                agent.name, hottest.name, coolest.name, gap),
        ))
        yield from self.mobility.migrate(agent, coolest)
        self.migrations += 1

    def __repr__(self):
        return "MobilityBalancer(migrations=%d, decisions=%d)" % (
            self.migrations, len(self.decisions))
