"""The Classifier Grid (CLG).

"The classification grid carries out the task of classifying and storing
this information in a more organized and easy-to-retrieve form [...] it is
clear that the classifier grid performs parsing, classification, indexing
and storing data tasks" (section 3.2).

A classifier agent receives collected batches, finishes parsing when
records arrive raw (centralized shipping), clusters them so "the analysis
tasks can be easily distributed" without loss of meaning, persists them
into the co-located :class:`~repro.core.storage.ManagementDataStore`
(paying the Table 1 Storing cost), and notifies the processor grid with a
FIPA ACL ``data-ready`` message once a dataset closes.
"""

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.agents.ontology import DATA_READY
from repro.core.costs import DEFAULT_COST_MODEL, TaskKind
from repro.core.storage import new_dataset_id

#: CPU units charged per record for classification/indexing proper (on top
#: of the Table 1 Storing cost, which covers persistence).  Documented
#: estimate; the paper folds classification into the storing task.
CLASSIFY_CPU_PER_RECORD = 1.0


def cluster_by_group(record):
    """Default clustering: by metric group (Figure 3's X / Y / W split)."""
    return record.group


def cluster_by_device(record):
    return "device:" + record.device


def cluster_by_site(record):
    return "site:" + (record.site or "unknown")


CLUSTER_STRATEGIES = {
    "by-group": cluster_by_group,
    "by-device": cluster_by_device,
    "by-site": cluster_by_site,
}


class ClassifierAgent(Agent):
    """Parses, classifies, indexes, stores; then notifies the PG.

    Args:
        name: agent name.
        store: the co-located data store (storage cost lands on its host,
            which must be this agent's host).
        processor_name: the processor-grid root agent to notify.
        cost_model: Table 1 cost model.
        cluster_strategy: one of :data:`CLUSTER_STRATEGIES` or a callable.
        dataset_threshold: close the open dataset and notify once it holds
            this many records (None = only on flush timeout).
        flush_timeout: close a non-empty dataset after this much quiet time.
        external_flush: when True, the classify loop blocks indefinitely on
            its mailbox and *never* wakes just to check staleness; some
            external watchdog (the sharded deployment uses one
            :class:`~repro.agents.behaviours.MultiplexedTickerBehaviour`
            for all shard classifiers) must call :meth:`_flush_if_stale`
            periodically.  Coalescing the per-classifier wakeups this way
            keeps idle shard lanes completely activation-free.
    """

    def __init__(
        self,
        name,
        store,
        processor_name,
        cost_model=None,
        cluster_strategy="by-group",
        dataset_threshold=None,
        flush_timeout=5.0,
        external_flush=False,
    ):
        super().__init__(name)
        self.store = store
        self.processor_name = processor_name
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        if callable(cluster_strategy):
            self.cluster_of = cluster_strategy
        else:
            try:
                self.cluster_of = CLUSTER_STRATEGIES[cluster_strategy]
            except KeyError:
                raise ValueError(
                    "unknown cluster strategy %r (known: %s)"
                    % (cluster_strategy, ", ".join(sorted(CLUSTER_STRATEGIES)))
                ) from None
        self.dataset_threshold = dataset_threshold
        self.flush_timeout = flush_timeout
        self.external_flush = bool(external_flush)
        self.records_classified = 0
        self.datasets_published = 0
        self._open_dataset = None
        self._open_count = 0
        self._open_cluster_counts = {}
        self._last_arrival = 0.0
        # True while a batch is mid-classification (blocked on cpu/disk).
        # An external flush watchdog runs in its own process and could
        # otherwise close the dataset the in-flight batch already chose,
        # stranding its records in a published dataset.
        self._classifying = False
        # last seen (time, value) per counter series, for rate derivation
        self._counter_state = {}
        # classify spans feeding the open dataset: [(trace_id, span_id)]
        self._open_contributors = []

    def setup(self):
        if self.store.host is not self.host:
            raise RuntimeError(
                "classifier %s must be co-located with its store (agent on %s, "
                "store on %s)" % (self.name, self.host.name, self.store.host.name)
            )
        agent = self

        class Classify(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(
                    MessageTemplate(performative=Performative.INFORM,
                                    ontology="collected-batch"),
                    timeout=None if agent.external_flush else agent.flush_timeout,
                )
                if message is None:
                    agent._flush_if_stale()
                    return
                agent._classifying = True
                try:
                    yield from agent._classify_batch(
                        message.content["records"], message=message,
                    )
                finally:
                    agent._classifying = False

        self.add_behaviour(Classify("classify"))

    # -- pipeline ---------------------------------------------------------

    def _classify_batch(self, records, message=None):
        span = None
        telemetry = self.telemetry
        if telemetry is not None and message is not None \
                and message.trace_context is not None:
            # The batch made it across the wire: close its ship span and
            # open the classify leg underneath it.
            recorder = telemetry.recorder
            trace_id, ship_id = message.trace_context
            recorder.end(ship_id)
            span = recorder.start(
                "classify", trace_id, parent=ship_id, grid="classifier",
                host=self.host.name, agent=self.name, records=len(records),
            )
        parsed_records = []
        parse_costs = self.cost_model.parse_costs
        for record in records:
            if not record.parsed:
                parse_cost = parse_costs[record.request_type]
                if parse_cost.cpu:
                    yield self.cpu.use(parse_cost.cpu, label=TaskKind.PARSE)
                record = record.parse(self.cost_model.parsed_record_size)
            yield self.cpu.use(CLASSIFY_CPU_PER_RECORD, label="classify")
            self._derive_rates(record)
            parsed_records.append(record)
        if self._open_dataset is None:
            self._open_dataset = new_dataset_id()
            self._open_count = 0
            self._open_cluster_counts = {}
        dataset_id = self._open_dataset
        yield from self.store.store_records(
            parsed_records, dataset_id=dataset_id, cluster_of=self.cluster_of,
        )
        for record in parsed_records:
            cluster = self.cluster_of(record)
            self._open_cluster_counts[cluster] = (
                self._open_cluster_counts.get(cluster, 0) + 1
            )
        self._open_count += len(parsed_records)
        self.records_classified += len(parsed_records)
        self._last_arrival = self.sim.now
        if span is not None:
            telemetry.recorder.end(span, dataset=dataset_id)
            self._open_contributors.append((span.trace_id, span.span_id))
        if (
            self.dataset_threshold is not None
            and self._open_count >= self.dataset_threshold
        ):
            self._publish()

    #: cumulative counter metrics converted to per-second rates.
    COUNTER_METRICS = {
        "if_in_octets": "if_in_rate",
        "if_out_octets": "if_out_rate",
    }

    def _derive_rates(self, record):
        """Turn cumulative counters into rate samples.

        SNMP interface counters only ever grow; threshold/surge analysis
        needs per-second rates, so the classifier derives them from
        successive observations (and re-seeds on counter wrap/reset).
        """
        from repro.core.records import Sample

        derived = []
        for sample in record.samples:
            rate_metric = self.COUNTER_METRICS.get(sample.metric)
            if rate_metric is None or not isinstance(sample.value, (int, float)):
                continue
            key = (sample.device, sample.metric, sample.instance)
            previous = self._counter_state.get(key)
            self._counter_state[key] = (sample.time, sample.value)
            if previous is None:
                continue
            prev_time, prev_value = previous
            if sample.time <= prev_time or sample.value < prev_value:
                continue  # stale or wrapped counter: just re-seed
            rate = (sample.value - prev_value) / (sample.time - prev_time)
            derived.append(Sample(
                device=sample.device, site=sample.site, group=sample.group,
                metric=rate_metric, value=rate, time=sample.time,
                instance=sample.instance,
            ))
        record.samples.extend(derived)

    def _flush_if_stale(self):
        if (
            not self._classifying
            and self._open_dataset is not None
            and self._open_count > 0
            and self.sim.now - self._last_arrival >= self.flush_timeout
        ):
            self._publish()

    def _publish(self):
        """Close the open dataset and notify the processor grid (Figure 2)."""
        content = DATA_READY.make(
            dataset=self._open_dataset,
            record_count=self._open_count,
            clusters=sorted(self._open_cluster_counts),
            cluster_sizes=dict(self._open_cluster_counts),
            storage_host=self.store.host.name,
        )
        # Notify fan-out rides the batched MTS lane (aggregate transfer
        # when several notifies leave for the same host in one instant);
        # a lost DATA_READY would orphan the whole dataset, so it goes
        # through the reliable channel when one is installed.
        message = ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=self.processor_name,
            content=dict(content),
            ontology=DATA_READY.name,
            size_units=self.cost_model.notify_size,
        )
        telemetry = self.telemetry
        if telemetry is not None and self._open_contributors:
            # Merge point: many classified batches close into one dataset.
            # The notify span takes the first contributor as its parent and
            # links the rest, so every batch's chain flows through it.
            recorder = telemetry.recorder
            first_trace, first_span = self._open_contributors[0]
            notify = recorder.start(
                "notify", first_trace, parent=first_span, grid="classifier",
                host=self.host.name, agent=self.name,
                dataset=self._open_dataset, records=self._open_count,
            )
            if notify is not None:
                recorder.link(notify, self._open_contributors[1:])
                message.trace_context = (first_trace, notify.span_id)
        self.send_batch_reliable([message])
        self.datasets_published += 1
        self._open_dataset = None
        self._open_count = 0
        self._open_cluster_counts = {}
        self._open_contributors = []

    def force_publish(self):
        """Close the open dataset immediately (drivers use this at end)."""
        if self._open_dataset is not None and self._open_count > 0:
            self._publish()

    def __repr__(self):
        return "ClassifierAgent(%r, classified=%d, published=%d)" % (
            self.name, self.records_classified, self.datasets_published,
        )
