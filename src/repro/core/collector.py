"""The Collector Grid (CG).

Collector agents own :class:`~repro.core.records.CollectionGoal` goals --
"extracting managed object values from one or more pieces of equipment in
the network between time intervals" -- and realize them through an SNMP
interface.  Each poll:

1. charges the Table 1 *Request* CPU cost on the collector's host;
2. performs the SNMP GET (network units at both ends of the poll);
3. normalizes the varbinds into the common representation;
4. optionally runs the *Parse* task locally ("The collector grid can
   contain agents that execute some local information analyses" -- and in
   the multi-agent/grid models of Figure 6, parsing at the collector is
   what shrinks the shipped data);
5. ships records to the classifier grid in protocol envelopes.
"""

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import OneShotBehaviour
from repro.core.costs import DEFAULT_COST_MODEL, TaskKind
from repro.core.records import ManagementRecord
from repro.network.protocols import HTTP
from repro.snmp.manager import SnmpClient, SnmpTimeout


class CollectorAgent(Agent):
    """A collector with goals, an SNMP interface and a shipping channel.

    Args:
        name: agent name.
        goals: list of :class:`~repro.core.records.CollectionGoal`.
        classifier_name: agent name of the classifier to ship to.
        cost_model: the Table 1 :class:`~repro.core.costs.CostModel`.
        parse_locally: run the Parse task at the collector (True in the
            multi-agent and grid models; False in the centralized model,
            which ships raw data).
        device_specs: optional map device name -> (interface_count,
            process_slots) used to build poll OID lists; defaults applied
            otherwise.
        batch_size: records per shipped envelope.
        protocol: shipping :class:`~repro.network.protocols.ProtocolSpec`.
        poll_retries: extra SNMP attempts after a timeout before the poll
            is counted as failed (lossy links are retried, not fatal).
        classifier_router: optional callable ``record -> classifier agent
            name`` used by the sharded grid to route each record to its
            shard's classifier lane; ``None`` (the default) ships every
            record to ``classifier_name`` on the exact single-envelope
            path the unsharded reproduction pins byte-identical.
    """

    def __init__(
        self,
        name,
        goals,
        classifier_name,
        cost_model=None,
        parse_locally=True,
        device_specs=None,
        batch_size=1,
        protocol=HTTP,
        poll_retries=2,
        classifier_router=None,
    ):
        super().__init__(name)
        self.goals = list(goals)
        self.classifier_name = classifier_name
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.parse_locally = parse_locally
        self.device_specs = dict(device_specs or {})
        self.batch_size = max(1, batch_size)
        self.protocol = protocol
        self.poll_retries = max(0, poll_retries)
        self.classifier_router = classifier_router
        self.snmp = None
        self.poll_retries_used = 0
        self.polls_completed = 0
        self.polls_failed = 0
        self.records_shipped = 0
        self._buffer = []
        self._active_goals = 0
        self.idle_event = None

    def setup(self):
        self.snmp = SnmpClient(
            self.host, self.platform.transport, client_id=self.name,
        )
        self.idle_event = self.sim.event(self.name + ".idle")
        self._active_goals = len(self.goals)
        if self._active_goals == 0:
            self.idle_event.trigger(self)
            return
        for index, goal in enumerate(self.goals):
            self.add_behaviour(_GoalBehaviour(goal, name="goal-%d" % index))

    # -- goal execution (called from behaviours) ----------------------------

    def add_goal(self, goal):
        """Install a new goal at runtime (interface-grid feedback)."""
        self._active_goals += 1
        if self.idle_event is not None and self.idle_event.triggered:
            self.idle_event = self.sim.event(self.name + ".idle")
        self.add_behaviour(_GoalBehaviour(goal, name="goal-late-%d" % self._active_goals))

    def poll_once(self, goal):
        """One poll of one goal (process generator): request -> record."""
        request_cost = self.cost_model.request_cost(goal.request_type)
        if request_cost.cpu:
            yield self.cpu.use(request_cost.cpu, label=TaskKind.REQUEST)
        interface_count, process_slots = self.device_specs.get(
            goal.device_name, (2, 3),
        )
        oids = goal.oids(interface_count=interface_count,
                         process_slots=process_slots)
        response = None
        for attempt in range(1 + self.poll_retries):
            try:
                response = yield from self.snmp.get(
                    goal.device_name,
                    oids,
                    request_size_units=self.cost_model.poll_request_size,
                    response_size_units=self.cost_model.poll_response_size,
                )
                break
            except SnmpTimeout:
                if attempt < self.poll_retries:
                    self.poll_retries_used += 1
                    continue
        if response is None:
            self.polls_failed += 1
            return None
        record = ManagementRecord.from_varbinds(
            device=goal.device_name,
            site=self._device_site(goal.device_name),
            request_type=goal.request_type,
            group=goal.group,
            varbinds=response.varbinds,
            collected_at=self.sim.now,
            size_units=self.cost_model.raw_record_size,
        )
        if self.parse_locally:
            parse_cost = self.cost_model.parse_cost(goal.request_type)
            if parse_cost.cpu:
                yield self.cpu.use(parse_cost.cpu, label=TaskKind.PARSE)
            record = record.parse(self.cost_model.parsed_record_size)
        self.polls_completed += 1
        return record

    def _device_site(self, device_name):
        try:
            return self.platform.network.host(device_name).site.name
        except KeyError:
            return ""

    def ship(self, records):
        """Send records to the classifier grid in protocol envelopes.

        Unsharded (no router): one envelope to ``classifier_name``.
        Sharded: records group by the router's target and each shard's
        records leave in their own envelope (target order sorted for
        determinism); envelopes still ride one ``send_batch_reliable``
        call so same-host shards share an aggregate wire transfer.
        """
        records = [record for record in records if record is not None]
        if not records:
            return
        if self.classifier_router is None:
            groups = [(self.classifier_name, records)]
        else:
            by_target = {}
            for record in records:
                by_target.setdefault(self.classifier_router(record), []).append(
                    record)
            groups = sorted(by_target.items())
        messages = []
        telemetry = self.telemetry
        for target, group in groups:
            payload_units = sum(record.size_units for record in group)
            wire_units = self.protocol.size(payload_units)
            # Batched shipping lane: envelopes shipped in the same instant
            # to the same classifier host travel as one aggregate wire
            # transfer.  Reliable variant: with a channel installed the
            # envelope is acked, retransmitted on loss and dead-lettered
            # (never silently lost).
            message = ACLMessage(
                Performative.INFORM,
                sender=self.name,
                receiver=target,
                content={"op": "classify-batch", "records": group},
                ontology="collected-batch",
                size_units=wire_units,
            )
            if telemetry is not None:
                # One trace per shipped envelope: a closed "collect" span
                # covering poll time, and an open "ship" span the
                # classifier (or the dead-letter hook) will close.  The
                # envelope names the ship span so the receiving end can
                # pick up the chain.
                recorder = telemetry.recorder
                trace_id = recorder.new_trace()
                collect = recorder.start(
                    "collect", trace_id, grid="collector", host=self.host.name,
                    agent=self.name,
                    t_start=min(record.collected_at for record in group),
                    records=len(group),
                )
                recorder.end(collect)
                ship = recorder.start(
                    "ship", trace_id, parent=collect, grid="collector",
                    host=self.host.name, agent=self.name,
                    records=len(group), size_units=wire_units,
                )
                if ship is not None:
                    message.trace_context = (trace_id, ship.span_id)
            messages.append(message)
        self.send_batch_reliable(messages)
        self.records_shipped += len(records)

    def _buffer_and_ship(self, record, force=False):
        if record is not None:
            self._buffer.append(record)
        if self._buffer and (force or len(self._buffer) >= self.batch_size):
            batch, self._buffer = self._buffer, []
            self.ship(batch)

    def _goal_finished(self):
        self._active_goals -= 1
        if self._active_goals == 0:
            self._buffer_and_ship(None, force=True)
            if not self.idle_event.triggered:
                self.idle_event.trigger(self)

    def __repr__(self):
        return "CollectorAgent(%r, polls=%d, shipped=%d)" % (
            self.name, self.polls_completed, self.records_shipped,
        )


class _GoalBehaviour(OneShotBehaviour):
    """Executes one goal: count polls spaced by the goal's interval."""

    def __init__(self, goal, name):
        super().__init__(name)
        self.goal = goal

    def action(self):
        agent = self.agent
        goal = self.goal
        if goal.start_after > 0:
            yield goal.start_after
        polls_remaining = goal.count
        try:
            while polls_remaining is None or polls_remaining > 0:
                record = yield from agent.poll_once(goal)
                agent._buffer_and_ship(record)
                if polls_remaining is not None:
                    polls_remaining -= 1
                    if polls_remaining == 0:
                        break
                yield goal.interval
        finally:
            agent._goal_finished()
