"""The Table 1 cost model.

The paper evaluates its three architectures by attributing *relative*
CPU / network / disc costs to each management task (Table 1) and counting
what each host accumulates under 10 requests of each type (Figure 6).
This module is the single source of truth for those numbers.

Request types map to metric groups following the paper's section 4.1
workload ("processor usage, memory availability, available disk space and
the list of processes, interface traffic" -- cf. Figure 3):

* type **A** -- performance (CPU load, memory, load average);
* type **B** -- storage (disk space, process table);
* type **C** -- traffic (interface counters and status).

Provenance: the copy of the paper available to this reproduction has a
partially corrupted Table 1 -- the CPU/network digits of "Request B/C" and
the "Storing" row did not survive text extraction.  Legible cells are used
verbatim; corrupted cells carry documented estimates (marked
``estimated=True``) chosen to be consistent with the legible pattern.  The
sensitivity bench (X5) perturbs the estimated cells and shows the Figure 6
ordering is unaffected.
"""

from types import MappingProxyType


class TaskKind:
    """Management task kinds (the rows of Table 1)."""

    REQUEST = "request"          # poll managed objects from a device
    PARSE = "parse"              # normalize/extract relevant information
    STORE = "store"              # classify + persist records
    INFER = "infer"              # run inference rules over one cluster
    INFER_CROSS = "infer-cross"  # the paper's "Inference AxBxC"

    ALL = (REQUEST, PARSE, STORE, INFER, INFER_CROSS)


#: Request type -> metric group.
REQUEST_TYPE_GROUPS = {
    "A": "performance",
    "B": "storage",
    "C": "traffic",
}

#: Metric group -> request type (inverse of the above).
GROUP_REQUEST_TYPES = {group: rtype for rtype, group in REQUEST_TYPE_GROUPS.items()}


class TaskCost:
    """Relative CPU / network / disc cost of one task execution."""

    __slots__ = ("cpu", "net", "disk", "estimated")

    def __init__(self, cpu=0.0, net=0.0, disk=0.0, estimated=False):
        if min(cpu, net, disk) < 0:
            raise ValueError("costs must be non-negative")
        self.cpu = float(cpu)
        self.net = float(net)
        self.disk = float(disk)
        self.estimated = estimated

    def scaled(self, factor):
        """This cost multiplied by ``factor`` (sensitivity experiments)."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return TaskCost(
            self.cpu * factor, self.net * factor, self.disk * factor,
            estimated=self.estimated,
        )

    @property
    def total(self):
        return self.cpu + self.net + self.disk

    def __eq__(self, other):
        return (
            isinstance(other, TaskCost)
            and (other.cpu, other.net, other.disk) == (self.cpu, self.net, self.disk)
        )

    def __repr__(self):
        return "TaskCost(cpu=%g, net=%g, disk=%g%s)" % (
            self.cpu, self.net, self.disk, ", est" if self.estimated else "",
        )


def _default_table():
    """Table 1, with documented estimates for the corrupted cells."""
    verbatim = TaskCost
    return {
        # -- verbatim from the paper ------------------------------------
        (TaskKind.REQUEST, "A"): verbatim(cpu=10, net=5),
        (TaskKind.PARSE, "A"): verbatim(cpu=15),
        (TaskKind.PARSE, "B"): verbatim(cpu=15),
        (TaskKind.PARSE, "C"): verbatim(cpu=15),
        (TaskKind.INFER, "A"): verbatim(cpu=20, net=5),
        (TaskKind.INFER, "B"): verbatim(cpu=20, net=5),
        (TaskKind.INFER, "C"): verbatim(cpu=20, net=5),
        (TaskKind.INFER_CROSS, None): verbatim(cpu=40, net=8),
        # -- estimated (digits lost in the available copy) ----------------
        (TaskKind.REQUEST, "B"): TaskCost(cpu=10, net=5, estimated=True),
        (TaskKind.REQUEST, "C"): TaskCost(cpu=10, net=5, estimated=True),
        (TaskKind.STORE, None): TaskCost(cpu=10, net=5, disk=20, estimated=True),
    }


class CostModel:
    """Maps (task kind, request type) to :class:`TaskCost`.

    Also derives the message-size constants the pipeline uses, chosen so
    that the *network ledger* of a host performing a task matches the
    task's Table 1 network cost:

    * a poll costs ``poll_request_size + poll_response_size`` =
      ``REQUEST.net`` at the polling host;
    * an inference's storage fetch costs ``fetch_query_size +
      fetch_reply_size`` = ``INFER.net`` at the analyzing host;
    * the cross-inference fetch likewise sums to ``INFER_CROSS.net``.

    Parsing shrinks a record from ``raw_record_size`` (= poll response) to
    ``parsed_record_size`` -- the multi-agent/grid models ship the small
    form, the centralized model pays the raw form; this asymmetry is the
    paper's "reduction in communication traffic".
    """

    #: parsed size as a fraction of raw (the parse step drops ~2/3).
    PARSE_SHRINK = 1.0 / 3.0

    def __init__(self, table=None, overrides=None):
        self._table = dict(table if table is not None else _default_table())
        if overrides:
            self._table.update(overrides)
        request_net = self.cost(TaskKind.REQUEST, "A").net
        self.poll_request_size = 0.1 * request_net
        self.poll_response_size = 0.9 * request_net
        self.raw_record_size = self.poll_response_size
        self.parsed_record_size = self.raw_record_size * self.PARSE_SHRINK
        infer_net = self.cost(TaskKind.INFER, "A").net
        self.fetch_query_size = 0.1 * infer_net
        self.fetch_reply_size = 0.9 * infer_net
        cross_net = self.cost(TaskKind.INFER_CROSS, None).net
        self.cross_query_size = 0.1 * cross_net
        self.cross_reply_size = 0.9 * cross_net
        self.notify_size = 0.2
        self.report_size = 2.0
        # Per-kind lookup caches: the pipeline charges a cost per record,
        # so the (kind, request_type) -> TaskCost resolution (key
        # normalization, tuple build, dict probe, error wrap) dominates the
        # charge path at scale.  The table is immutable after construction
        # (derived models build a fresh CostModel), so the entries are
        # resolved once here and call sites index plain dicts.
        self.request_costs = self._kind_cache(TaskKind.REQUEST)
        self.parse_costs = self._kind_cache(TaskKind.PARSE)
        self.infer_costs = self._kind_cache(TaskKind.INFER)
        self.store_cost_entry = self._table.get((TaskKind.STORE, None))
        self.cross_cost_entry = self._table.get((TaskKind.INFER_CROSS, None))
        self._flat = {}
        for (kind, rtype), entry in self._table.items():
            self._flat[(kind, rtype)] = entry
            if rtype is None:
                self._flat[kind] = entry
        # Enforce the immutability the caches above assume: runtime model
        # changes (chaos plans, scenario overrides) must build a fresh
        # CostModel via derive()/scaled(), never poke the table of a live
        # one -- a poked entry would silently diverge from the cached
        # sizes/entries resolved here.  Same contract as LinkSpec: swap
        # the object, don't mutate it.
        self._table = MappingProxyType(self._table)

    def _kind_cache(self, kind):
        return {
            rtype: entry
            for (entry_kind, rtype), entry in self._table.items()
            if entry_kind == kind
        }

    # -- lookups --------------------------------------------------------

    def cost(self, kind, request_type=None):
        """The cost entry for a task; raises KeyError when undefined."""
        if kind in (TaskKind.STORE, TaskKind.INFER_CROSS):
            key = (kind, None)
        else:
            key = (kind, request_type)
        try:
            return self._table[key]
        except KeyError:
            raise KeyError(
                "no cost for task %r / request type %r" % (kind, request_type)
            ) from None

    def cost_cached(self, kind, request_type=None):
        """Fast-path :meth:`cost`: one dict probe, no key normalization.

        STORE / INFER_CROSS resolve regardless of ``request_type`` (same
        tolerance as :meth:`cost`); unknown entries fall back to
        :meth:`cost` for its descriptive KeyError.
        """
        entry = self._flat.get((kind, request_type))
        if entry is not None:
            return entry
        entry = self._flat.get(kind)
        if entry is not None:
            return entry
        return self.cost(kind, request_type)

    def request_cost(self, request_type):
        entry = self.request_costs.get(request_type)
        if entry is None:
            return self.cost(TaskKind.REQUEST, request_type)
        return entry

    def parse_cost(self, request_type):
        entry = self.parse_costs.get(request_type)
        if entry is None:
            return self.cost(TaskKind.PARSE, request_type)
        return entry

    def store_cost(self):
        if self.store_cost_entry is None:
            return self.cost(TaskKind.STORE)
        return self.store_cost_entry

    def infer_cost(self, request_type):
        entry = self.infer_costs.get(request_type)
        if entry is None:
            return self.cost(TaskKind.INFER, request_type)
        return entry

    def cross_cost(self):
        if self.cross_cost_entry is None:
            return self.cost(TaskKind.INFER_CROSS)
        return self.cross_cost_entry

    def for_group(self, group):
        """Request type letter for a metric group ("performance" -> "A")."""
        try:
            return GROUP_REQUEST_TYPES[group]
        except KeyError:
            raise KeyError("unknown metric group %r" % group) from None

    # -- derived models ----------------------------------------------------------

    def with_estimates_scaled(self, factor):
        """A model with every *estimated* cell scaled (sensitivity bench)."""
        table = {
            key: (cost.scaled(factor) if cost.estimated else cost)
            for key, cost in self._table.items()
        }
        return CostModel(table)

    def with_override(self, kind, request_type, cost):
        """A model with one cell replaced."""
        key = (kind, None) if kind in (TaskKind.STORE, TaskKind.INFER_CROSS) \
            else (kind, request_type)
        table = dict(self._table)
        table[key] = cost
        return CostModel(table)

    # -- presentation -------------------------------------------------------------

    def table_rows(self):
        """Rows shaped like the paper's Table 1 (for the T1 bench)."""
        rows = []
        for rtype in ("A", "B", "C"):
            cost = self.request_cost(rtype)
            rows.append(("Request %s" % rtype, cost))
        for rtype in ("A", "B", "C"):
            rows.append(("Parse %s" % rtype, self.parse_cost(rtype)))
        rows.append(("Storing", self.store_cost()))
        for rtype in ("A", "B", "C"):
            rows.append(("Inference %s" % rtype, self.infer_cost(rtype)))
        rows.append(("Inference AxBxC", self.cross_cost()))
        return rows

    def __repr__(self):
        return "CostModel(%d entries)" % len(self._table)


#: The default, paper-faithful cost model.
DEFAULT_COST_MODEL = CostModel()
