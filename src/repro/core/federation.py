"""Multi-site federation: the paper's Site I / Site II deployment.

Figure 2 of the paper spans two sites, each with its own collector and
classifier grids, feeding a shared processing grid whose knowledge base is
fed back from both; Figure 5's baseline is the same hardware *without*
integration ("there's no relation among different sites [...] no high
level analysis can be carried out [...] The only possible evolution of
this system would be the integration of knowledge bases").

Three federation modes realize the comparison:

* ``"integrated"`` -- one grid root brokering analyzers across all sites,
  one interface grid, and a cross-analysis window so problems from
  different sites' datasets correlate (the agent-grid architecture);
* ``"siloed"`` -- an independent root + interface per site; analyzers only
  register locally; no cross-site data ever meets (the Figure 5 baseline);
* ``"mesh"`` -- the siloed per-site structure plus a
  :class:`SiteGatewayAgent` per site forming a partition-tolerant mesh:
  persistent inter-site streams over the reliable channel, a heartbeat
  driven link-state machine (up -> suspect -> partitioned -> healing),
  explicit degradation (a partitioned peer's devices are reported
  offline, never silently stale) and cross-site job forwarding when the
  local processor grid saturates.

All modes share the simulator, WAN topology, devices and workload, so any
difference in findings or utilization is due to the architecture alone.
Reliability, telemetry and the mesh machinery are opt-in; with every knob
at its default the build is byte-identical with the historical
integrated/siloed reproduction.
"""

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour, TickerBehaviour
from repro.agents.ontology import (
    ANALYSIS_JOB,
    ANALYSIS_RESULT,
    FORWARDED_JOB,
    FORWARDED_RESULT,
    SITE_HEARTBEAT,
    SITE_STATUS,
)
from repro.agents.platform import AgentPlatform
from repro.core.classifier import ClassifierAgent
from repro.core.collector import CollectorAgent
from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.interface import InterfaceAgent
from repro.core.loadbalance import make_policy
from repro.core.processor import AnalyzerAgent, ProcessorRootAgent
from repro.core.reports import Finding, ManagementReport
from repro.core.storage import ManagementDataStore, StorageAgent
from repro.core.system import DeviceSpec, HostSpec
from repro.network.topology import Network
from repro.network.transport import Transport
from repro.rules.stdlib import standard_knowledge_base
from repro.simkernel.simulator import Simulator
from repro.snmp.device import ManagedDevice
from repro.snmp.engine import SnmpEngine

INTEGRATED = "integrated"
SILOED = "siloed"
MESH = "mesh"

#: Link states a gateway tracks per peer site.
LINK_UP = "up"
LINK_SUSPECT = "suspect"
LINK_PARTITIONED = "partitioned"
LINK_HEALING = "healing"


class SiteSpec:
    """One site's slice of the federation."""

    def __init__(self, name, devices, collector_count=1, analyzer_count=1):
        if not devices:
            raise ValueError("site %r needs at least one device" % name)
        self.name = name
        self.devices = list(devices)
        self.collector_count = collector_count
        self.analyzer_count = analyzer_count

    @classmethod
    def simple(cls, name, device_count=2, collector_count=1,
               analyzer_count=1):
        profiles = ("server", "router")
        devices = [
            DeviceSpec("%s-dev%d" % (name, index + 1),
                       profiles[index % len(profiles)], name)
            for index in range(device_count)
        ]
        return cls(name, devices, collector_count, analyzer_count)

    def __repr__(self):
        return "SiteSpec(%r, devices=%d)" % (self.name, len(self.devices))


class FederatedTopologySpec:
    """A multi-site deployment description.

    Args:
        sites: list of :class:`SiteSpec`.
        mode: :data:`INTEGRATED`, :data:`SILOED` or :data:`MESH`.
        policy: placement-policy name (integrated root only).
        dataset_threshold: per-classifier dataset size.
        cross_window: how long cross jobs remember other datasets' problems
            (integrated mode; enables multi-site correlation).
        seed / cost_model / wan / job_timeout: as in GridTopologySpec.
        federation_reliability: install a
            :class:`~repro.network.reliable.ReliableChannel` under the
            platform -- ``True`` for defaults, a dict for channel kwargs,
            ``False`` (default) for the historical fire-and-forget build
            (byte-identical inert path).
        telemetry: attach the flight recorder -- ``True``/dict/``False``
            as in ``GridTopologySpec``; trace context then crosses the
            site boundary with forwarded jobs.
        heartbeat_interval: seconds between inter-site gateway beacons
            (mesh mode; defaults to 1.0 when unset there).
        heartbeat_timeout: beacon silence after which a peer is declared
            partitioned (defaults to ``4 * heartbeat_interval``).
        forwarding_budget: max in-flight forwarded jobs per peer site.
        forward_threshold: per-container outstanding-job count at which
            the local grid counts as saturated (see
            ``ProcessorRootAgent.forward_threshold``).
        reconnect_max_backoff: cap on the probe backoff toward a
            partitioned peer (defaults to ``8 * heartbeat_interval``).
    """

    def __init__(
        self,
        sites,
        mode=INTEGRATED,
        policy="knowledge",
        dataset_threshold=6,
        cross_window=120.0,
        seed=0,
        cost_model=None,
        wan=None,
        job_timeout=60.0,
        knowledge_base_factory=None,
        federation_reliability=False,
        telemetry=False,
        heartbeat_interval=None,
        heartbeat_timeout=None,
        forwarding_budget=4,
        forward_threshold=2,
        reconnect_max_backoff=None,
    ):
        if len(sites) < 1:
            raise ValueError("at least one site is required")
        if mode not in (INTEGRATED, SILOED, MESH):
            raise ValueError("unknown federation mode %r" % mode)
        if mode == MESH and len(sites) < 2:
            raise ValueError("mesh mode needs at least two sites")
        self.sites = list(sites)
        self.mode = mode
        self.policy = policy
        self.dataset_threshold = dataset_threshold
        self.cross_window = cross_window
        self.seed = seed
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.wan = wan
        self.job_timeout = job_timeout
        self.knowledge_base_factory = (
            knowledge_base_factory if knowledge_base_factory is not None
            else standard_knowledge_base
        )
        self.federation_reliability = federation_reliability
        self.telemetry = telemetry
        if heartbeat_interval is None and mode == MESH:
            heartbeat_interval = 1.0
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = 4.0 * heartbeat_interval
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        if forwarding_budget < 1:
            raise ValueError("forwarding_budget must be >= 1")
        self.forwarding_budget = forwarding_budget
        if forward_threshold < 1:
            raise ValueError("forward_threshold must be >= 1")
        self.forward_threshold = forward_threshold
        if reconnect_max_backoff is None and heartbeat_interval is not None:
            reconnect_max_backoff = 8.0 * heartbeat_interval
        if reconnect_max_backoff is not None and heartbeat_interval is not None \
                and reconnect_max_backoff < heartbeat_interval:
            raise ValueError(
                "reconnect_max_backoff must be >= heartbeat_interval")
        self.reconnect_max_backoff = reconnect_max_backoff

    def total_devices(self):
        return sum(len(site.devices) for site in self.sites)

    def __repr__(self):
        return "FederatedTopologySpec(%s, sites=%d)" % (self.mode, len(self.sites))


class _SiteRuntime:
    """Everything built for one site."""

    def __init__(self, name):
        self.name = name
        self.devices = {}
        self.collectors = []
        self.analyzers = []
        self.store = None
        self.storage_agent = None
        self.classifier = None
        self.root = None               # siloed / mesh modes only
        self.interface = None          # siloed / mesh modes only
        self.storage_container = None  # mesh gateways co-locate here
        self.gateway = None            # mesh mode only


class SiteGatewayAgent(Agent):
    """One site's endpoint in the partition-tolerant federation mesh.

    Each gateway maintains a link-state machine per peer site, driven by
    inter-site heartbeats::

        up --silence > timeout/2--> suspect --silence > timeout--> partitioned
        partitioned --beacon--> healing --beacon--> up

    While a peer is partitioned the gateway probes it at a doubling
    backoff capped at ``reconnect_max_backoff`` and tells the local
    interface to mark the peer's devices offline (plus a major
    ``site-partition`` finding; an info ``site-partition-heal`` finding
    clears it).  Beacons piggyback a capacity advertisement so
    :meth:`try_forward` can ship surplus jobs to the idlest reachable
    peer when the local processor grid saturates; forwarded jobs and
    their results ride the reliable channel and carry trace context so
    a cross-site chain audits end to end.
    """

    def __init__(self, name, site, interface_name, root, peer_gateways,
                 devices_by_site, heartbeat_interval=1.0,
                 heartbeat_timeout=None, forwarding_budget=4,
                 reconnect_max_backoff=None, cost_model=None):
        super().__init__(name)
        self.site = site
        self.interface_name = interface_name
        self.root = root
        self.peer_gateways = dict(peer_gateways)   # peer site -> gateway name
        self.devices_by_site = {
            peer: list(devices) for peer, devices in devices_by_site.items()
        }
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else 4.0 * heartbeat_interval
        )
        self.reconnect_max_backoff = (
            reconnect_max_backoff if reconnect_max_backoff is not None
            else 8.0 * heartbeat_interval
        )
        self.forwarding_budget = forwarding_budget
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.link_state = {peer: LINK_UP for peer in self.peer_gateways}
        self._last_heard = {}      # peer -> sim time of last beacon
        self.peer_capacity = {}    # peer -> {"analyzers": n, "outstanding": n}
        #: Optional zero-arg callable returning this site's scorecard
        #: state ("green"/"degraded"/"red"); when set, beacons advertise
        #: it and peers collect the states in :attr:`peer_health` -- the
        #: federation leg of the health layer's scorecard aggregation.
        self.health_supplier = None
        self.peer_health = {}      # peer -> last advertised health state
        self._probe_interval = {}  # peer -> current backoff (partitioned only)
        self._next_probe_at = {}   # peer -> next probe time
        self.partitions = []       # (peer, declared_at)
        self.heals = []            # (peer, healed_at)
        self._pending_forwards = {}  # job_id -> {"peer", "span", "sent_at"}
        self._remote_jobs = {}     # job_id -> origin bookkeeping
        self._analyzer_rr = 0
        self.jobs_forwarded = 0
        self.results_delivered = 0
        self.duplicate_results = 0
        self.forwards_expired = 0
        self.jobs_accepted = 0
        self.jobs_rejected = 0
        self.results_returned = 0
        self.beacons_sent = 0
        self.beacons_received = 0
        self.probes_sent = 0

    def setup(self):
        gateway = self
        for peer in self.peer_gateways:
            self._last_heard[peer] = self.sim.now

        class Beat(TickerBehaviour):
            def on_tick(self):
                gateway._tick()
                return
                yield  # pragma: no cover

        class Detector(TickerBehaviour):
            def on_tick(self):
                gateway._check_peers()
                return
                yield  # pragma: no cover

        class Beacons(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=SITE_HEARTBEAT.name,
                ))
                if message is not None:
                    gateway._on_beacon(message)

        class ForwardedJobs(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.REQUEST,
                    ontology=FORWARDED_JOB.name,
                ))
                if message is not None:
                    gateway._on_forwarded_job(message)

        class AnalyzerResults(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=ANALYSIS_RESULT.name,
                ))
                if message is not None:
                    gateway._on_local_result(message)

        class ForwardedResults(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=FORWARDED_RESULT.name,
                ))
                if message is not None:
                    gateway._on_forwarded_result(message)

        self.add_behaviour(Beat(period=self.heartbeat_interval, name="beat"))
        # The detector samples well inside the timeout so detection
        # latency stays bounded by the timeout itself, not by a coarse
        # polling grid on top of it.
        self.add_behaviour(Detector(
            period=max(0.25, self.heartbeat_timeout / 8.0), name="detector"))
        self.add_behaviour(Beacons("beacons"))
        self.add_behaviour(ForwardedJobs("forwarded-jobs"))
        self.add_behaviour(AnalyzerResults("analyzer-results"))
        self.add_behaviour(ForwardedResults("forwarded-results"))

    # -- heartbeats and the link-state machine ---------------------------

    def _send_beacon(self, peer, probe=False):
        content_kwargs = dict(
            site=self.site,
            sent_at=self.sim.now,
            analyzers=len(self.root._analyzer_agent_by_container),
            outstanding=sum(
                self.root._outstanding_by_container.values()),
        )
        if probe:
            content_kwargs["probe"] = True
        if self.health_supplier is not None:
            content_kwargs["health"] = self.health_supplier()
        # Plain (unreliable) send on purpose: retransmission would mask
        # the very silence the failure detector listens for.
        self.send(ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=self.peer_gateways[peer],
            content=SITE_HEARTBEAT.make(**content_kwargs),
            ontology=SITE_HEARTBEAT.name,
            size_units=0.2,
        ))
        self.beacons_sent += 1
        if probe:
            self.probes_sent += 1

    def _tick(self):
        self._expire_forwards()
        now = self.sim.now
        for peer in sorted(self.peer_gateways):
            if self.link_state[peer] != LINK_PARTITIONED:
                self._send_beacon(peer)
            elif now >= self._next_probe_at.get(peer, 0.0):
                self._send_beacon(peer, probe=True)
                interval = min(
                    self._probe_interval.get(
                        peer, self.heartbeat_interval) * 2.0,
                    self.reconnect_max_backoff,
                )
                self._probe_interval[peer] = interval
                self._next_probe_at[peer] = now + interval

    def _check_peers(self):
        now = self.sim.now
        for peer in sorted(self.peer_gateways):
            state = self.link_state[peer]
            if state == LINK_PARTITIONED:
                continue  # probed at backoff, not timed out again
            silence = now - self._last_heard[peer]
            if silence > self.heartbeat_timeout:
                self._declare_partition(peer)
            elif state == LINK_UP and silence > self.heartbeat_timeout / 2.0:
                self.link_state[peer] = LINK_SUSPECT

    def _on_beacon(self, message):
        content = SITE_HEARTBEAT.validate(message.content)
        peer = content["site"]
        if peer not in self.peer_gateways:
            return
        self.beacons_received += 1
        self._last_heard[peer] = self.sim.now
        self.peer_capacity[peer] = {
            "analyzers": content["analyzers"],
            "outstanding": content["outstanding"],
        }
        if "health" in content:
            self.peer_health[peer] = content["health"]
        state = self.link_state[peer]
        if state == LINK_PARTITIONED:
            # First sign of life: not trusted yet -- one more beacon
            # confirms the link before the peer's devices come back.
            self.link_state[peer] = LINK_HEALING
            self._probe_interval.pop(peer, None)
            self._next_probe_at.pop(peer, None)
        elif state == LINK_HEALING:
            self._declare_heal(peer)
        elif state == LINK_SUSPECT:
            self.link_state[peer] = LINK_UP
        if content.get("probe"):
            # Answer probes immediately so both sides reconverge within
            # a beacon round trip instead of a full heartbeat interval.
            self._send_beacon(peer)

    def _declare_partition(self, peer):
        self.link_state[peer] = LINK_PARTITIONED
        self.partitions.append((peer, self.sim.now))
        self._probe_interval[peer] = self.heartbeat_interval
        self._next_probe_at[peer] = self.sim.now
        devices = self.devices_by_site.get(peer, [])
        self._notify_interface(peer, "partitioned", devices)
        self._ship_link_report(peer, Finding(
            kind="site-partition",
            severity="major",
            device="",
            site=peer,
            detail={
                "devices": list(devices),
                "status": "offline",
                "detected_by": self.site,
            },
        ))

    def _declare_heal(self, peer):
        self.link_state[peer] = LINK_UP
        self.heals.append((peer, self.sim.now))
        devices = self.devices_by_site.get(peer, [])
        self._notify_interface(peer, "online", devices)
        self._ship_link_report(peer, Finding(
            kind="site-partition-heal",
            severity="info",
            device="",
            site=peer,
            detail={
                "devices": list(devices),
                "status": "online",
                "detected_by": self.site,
            },
        ))

    def _notify_interface(self, peer, status, devices):
        self.send(ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=self.interface_name,
            content=SITE_STATUS.make(
                site=peer, status=status, devices=list(devices),
                at=self.sim.now,
            ),
            ontology=SITE_STATUS.name,
            size_units=0.2,
        ))

    def _ship_link_report(self, peer, finding):
        report = ManagementReport(
            dataset_id="link-%s-%s" % (self.site, peer),
            findings=[finding],
            records_analyzed=0,
            generated_at=self.sim.now,
            kind="link-state",
        )
        self.send(ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=self.interface_name,
            content={"report": report},
            ontology="management-report",
            size_units=self.cost_model.notify_size,
        ))

    # -- outbound forwarding (this site saturated) -----------------------

    def _expire_forwards(self):
        """Reclaim forwarding budget from jobs the peer never answered.

        The origin root's Reaper re-dispatches the job itself (under a
        new job id, so a late remote result drops as a duplicate); this
        only stops a dead peer from pinning budget forever.
        """
        ttl = 2.0 * self.root.job_timeout
        now = self.sim.now
        for job_id in [
            job_id for job_id, entry in self._pending_forwards.items()
            if now - entry["sent_at"] > ttl
        ]:
            entry = self._pending_forwards.pop(job_id)
            self.forwards_expired += 1
            span = entry.get("span")
            if span is not None:
                self.telemetry.recorder.end(span, status="expired")

    def try_forward(self, job_content, span=None):
        """Offer a job to the idlest reachable peer; None when none fits.

        Installed as ``ProcessorRootAgent.forwarder``; called only when
        the local grid is saturated.  A peer qualifies when its link is
        fully up, it has advertised capacity, and fewer than
        ``forwarding_budget`` of our forwards are still in flight there.
        """
        self._expire_forwards()
        pending_by_peer = {}
        for entry in self._pending_forwards.values():
            pending_by_peer[entry["peer"]] = (
                pending_by_peer.get(entry["peer"], 0) + 1)
        best = None
        best_idle = 0
        for peer in sorted(self.peer_gateways):
            if self.link_state[peer] != LINK_UP:
                continue
            capacity = self.peer_capacity.get(peer)
            if capacity is None:
                continue
            pending = pending_by_peer.get(peer, 0)
            if pending >= self.forwarding_budget:
                continue
            idle = capacity["analyzers"] - capacity["outstanding"] - pending
            if idle > best_idle:
                best, best_idle = peer, idle
        if best is None:
            return None
        message = ACLMessage(
            Performative.REQUEST,
            sender=self.name,
            receiver=self.peer_gateways[best],
            content=FORWARDED_JOB.make(
                job=dict(job_content),
                origin_site=self.site,
                origin_gateway=self.name,
                forward_hops=1,
            ),
            ontology=FORWARDED_JOB.name,
            size_units=self.cost_model.notify_size,
        )
        forward_span = None
        telemetry = self.telemetry
        if telemetry is not None and span is not None:
            forward_span = telemetry.recorder.start(
                "forward", span.trace_id, parent=span.span_id,
                grid="federation", host=self.host.name, agent=self.name,
                job_id=job_content["job_id"], peer=best,
            )
            message.trace_context = (
                forward_span.trace_id, forward_span.span_id)
        self._pending_forwards[job_content["job_id"]] = {
            "peer": best, "span": forward_span, "sent_at": self.sim.now,
        }
        self.jobs_forwarded += 1
        self.send_reliable(message)
        return best

    def _on_forwarded_result(self, message):
        content = FORWARDED_RESULT.validate(message.content)
        result = dict(content["result"])
        entry = self._pending_forwards.pop(result.get("job_id"), None)
        if entry is None:
            self.duplicate_results += 1
            return
        self.results_delivered += 1
        span = entry.get("span")
        if span is not None:
            self.telemetry.recorder.end(
                span, executed_by=content["executed_by"])
        # Re-emit as a plain analyzer result: the root completes the job
        # exactly as if a local container had run it.
        self.send_reliable(ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=self.root.name,
            content=result,
            ontology=ANALYSIS_RESULT.name,
            size_units=self.cost_model.notify_size,
        ))

    # -- inbound forwarding (a peer site saturated) ----------------------

    def _on_forwarded_job(self, message):
        content = FORWARDED_JOB.validate(message.content)
        analyzers = sorted(self.root._analyzer_agent_by_container.values())
        if content["forward_hops"] > 1 or not analyzers:
            self.jobs_rejected += 1
            return
        job = dict(content["job"])
        job_id = job.get("job_id")
        if job_id in self._remote_jobs:
            return  # redelivered duplicate; the first copy is running
        self._remote_jobs[job_id] = {
            "origin_site": content["origin_site"],
            "origin_gateway": content["origin_gateway"],
            "trace": message.trace_context,
        }
        self.jobs_accepted += 1
        # Dispatch straight to an analyzer, never through the local root:
        # a forwarded job must not be forwarded again (no ping-pong), and
        # the analyzer replies to its requester -- us.
        agent_name = analyzers[self._analyzer_rr % len(analyzers)]
        self._analyzer_rr += 1
        request = ACLMessage(
            Performative.REQUEST,
            sender=self.name,
            receiver=agent_name,
            content=job,
            ontology=ANALYSIS_JOB.name,
            size_units=self.cost_model.notify_size,
        )
        request.trace_context = message.trace_context
        self.send(request)

    def _on_local_result(self, message):
        content = ANALYSIS_RESULT.validate(message.content)
        entry = self._remote_jobs.pop(content["job_id"], None)
        if entry is None:
            return
        self.results_returned += 1
        reply = ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=entry["origin_gateway"],
            content=FORWARDED_RESULT.make(
                result=dict(content),
                origin_site=entry["origin_site"],
                executed_by=str(message.sender),
            ),
            ontology=FORWARDED_RESULT.name,
            size_units=self.cost_model.notify_size,
        )
        reply.trace_context = entry["trace"]
        self.send_reliable(reply)

    def stats(self):
        return {
            "jobs_forwarded": self.jobs_forwarded,
            "results_delivered": self.results_delivered,
            "duplicate_results": self.duplicate_results,
            "forwards_expired": self.forwards_expired,
            "jobs_accepted": self.jobs_accepted,
            "jobs_rejected": self.jobs_rejected,
            "results_returned": self.results_returned,
            "beacons_sent": self.beacons_sent,
            "beacons_received": self.beacons_received,
            "probes_sent": self.probes_sent,
            "partitions_declared": len(self.partitions),
            "heals_declared": len(self.heals),
        }

    def __repr__(self):
        return "SiteGatewayAgent(%r, peers=%d)" % (
            self.name, len(self.peer_gateways))


class FederatedManagementSystem:
    """A built multi-site deployment (integrated, siloed or mesh)."""

    def __init__(self, spec):
        self.spec = spec
        self.cost_model = spec.cost_model
        self.sim = Simulator(seed=spec.seed)
        self.network = Network(self.sim, wan=spec.wan)
        self.transport = Transport(self.network)
        self.telemetry = None
        if spec.telemetry:
            from repro.simkernel.telemetry import Telemetry

            telemetry_kwargs = (
                dict(spec.telemetry) if isinstance(spec.telemetry, dict)
                else {}
            )
            self.telemetry = Telemetry(self.sim, **telemetry_kwargs)
        self.reliable_channel = None
        if spec.federation_reliability:
            from repro.network.reliable import ReliableChannel

            channel_kwargs = (
                dict(spec.federation_reliability)
                if isinstance(spec.federation_reliability, dict)
                else {}
            )
            if self.telemetry is not None:
                channel_kwargs.setdefault("metrics", self.telemetry.registry)
                channel_kwargs.setdefault(
                    "metric_labels", {"grid": "federation"})
            self.reliable_channel = ReliableChannel(
                self.transport, **channel_kwargs)
        self.platform = AgentPlatform(
            self.sim, self.network, self.transport,
            reliable_channel=self.reliable_channel,
            telemetry=self.telemetry,
        )
        self.sites = {}
        self.devices = {}
        self.global_root = None
        self.global_interface = None
        if spec.mode == INTEGRATED:
            self._build_integrated()
        else:
            # mesh is the siloed per-site structure plus gateways
            self._build_siloed()
        if spec.mode == MESH:
            self._build_gateways()
        if self.telemetry is not None:
            self._wire_federation_telemetry()

    # -- construction -----------------------------------------------------

    def _build_devices(self, site_spec, runtime):
        for device_spec in site_spec.devices:
            host = self.network.add_host(
                device_spec.name, site_spec.name, role="device")
            device = ManagedDevice(self.sim, host, profile=device_spec.profile)
            SnmpEngine(device, self.transport)
            runtime.devices[device_spec.name] = device
            self.devices[device_spec.name] = device

    def _build_site_storage(self, site_spec, runtime, root_name):
        host = self.network.add_host(
            "%s-storage" % site_spec.name, site_spec.name, role="storage")
        container = self.platform.create_container(
            "%s-storage-container" % site_spec.name, host,
            services=("storage", "classification"))
        runtime.store = ManagementDataStore(host, self.cost_model)
        runtime.storage_agent = StorageAgent(
            "storage@" + host.name, runtime.store)
        container.deploy(runtime.storage_agent)
        runtime.classifier = ClassifierAgent(
            "classifier@" + site_spec.name,
            store=runtime.store,
            processor_name=root_name,
            cost_model=self.cost_model,
            dataset_threshold=self.spec.dataset_threshold,
        )
        container.deploy(runtime.classifier)
        return container

    def _build_site_collectors(self, site_spec, runtime):
        device_specs = {
            name: (device.profile.interface_count,
                   device.profile.process_slots)
            for name, device in runtime.devices.items()
        }
        for index in range(site_spec.collector_count):
            host = self.network.add_host(
                "%s-collector%d" % (site_spec.name, index + 1),
                site_spec.name, role="collector")
            container = self.platform.create_container(
                "%s-collector-%d" % (site_spec.name, index + 1), host,
                services=("collection",))
            collector = CollectorAgent(
                "collector%d@%s" % (index + 1, site_spec.name),
                goals=[],
                classifier_name=runtime.classifier.name,
                cost_model=self.cost_model,
                device_specs=device_specs,
            )
            container.deploy(collector)
            runtime.collectors.append(collector)

    def _build_site_analyzers(self, site_spec, runtime, root_name):
        for index in range(site_spec.analyzer_count):
            host = self.network.add_host(
                "%s-analysis%d" % (site_spec.name, index + 1),
                site_spec.name, role="analysis")
            container = self.platform.create_container(
                "%s-analysis-%d" % (site_spec.name, index + 1), host,
                services=("analysis",))
            analyzer = AnalyzerAgent(
                "analyzer%d@%s" % (index + 1, site_spec.name),
                root_name=root_name,
                knowledge_base=self.spec.knowledge_base_factory(),
                cost_model=self.cost_model,
            )
            container.deploy(analyzer)
            runtime.analyzers.append(analyzer)

    def _build_integrated(self):
        first_site = self.spec.sites[0]
        interface_host = self.network.add_host(
            "noc-interface", first_site.name, role="interface")
        interface_container = self.platform.create_container(
            "noc-interface-container", interface_host, services=("interface",))
        self.global_interface = InterfaceAgent("interface@noc")
        interface_container.deploy(self.global_interface)

        root_name = "pg-root@noc"
        for site_spec in self.spec.sites:
            runtime = _SiteRuntime(site_spec.name)
            self.sites[site_spec.name] = runtime
            self._build_devices(site_spec, runtime)
            storage_container = self._build_site_storage(
                site_spec, runtime, root_name)
            if site_spec is first_site:
                # the single root is co-located with the first site's storage
                self.global_root = ProcessorRootAgent(
                    root_name,
                    storage_agent_name=runtime.storage_agent.name,
                    interface_name=self.global_interface.name,
                    policy=make_policy(self.spec.policy),
                    cost_model=self.cost_model,
                    job_timeout=self.spec.job_timeout,
                    cross_window=self.spec.cross_window,
                )
                storage_container.deploy(self.global_root)
            self._build_site_collectors(site_spec, runtime)
            self._build_site_analyzers(site_spec, runtime, root_name)

    def _build_siloed(self):
        for site_spec in self.spec.sites:
            runtime = _SiteRuntime(site_spec.name)
            self.sites[site_spec.name] = runtime
            self._build_devices(site_spec, runtime)
            root_name = "pg-root@" + site_spec.name
            storage_container = self._build_site_storage(
                site_spec, runtime, root_name)
            runtime.storage_container = storage_container
            interface_host = self.network.add_host(
                "%s-interface" % site_spec.name, site_spec.name,
                role="interface")
            interface_container = self.platform.create_container(
                "%s-interface-container" % site_spec.name, interface_host,
                services=("interface",))
            runtime.interface = InterfaceAgent("interface@" + site_spec.name)
            interface_container.deploy(runtime.interface)
            runtime.root = ProcessorRootAgent(
                root_name,
                storage_agent_name=runtime.storage_agent.name,
                interface_name=runtime.interface.name,
                policy=make_policy(self.spec.policy),
                cost_model=self.cost_model,
                job_timeout=self.spec.job_timeout,
            )
            storage_container.deploy(runtime.root)
            self._build_site_collectors(site_spec, runtime)
            self._build_site_analyzers(site_spec, runtime, root_name)

    def _build_gateways(self):
        """Mesh mode: one gateway per site, wired into the local root."""
        spec = self.spec
        gateway_names = {
            site_name: "gateway@" + site_name for site_name in self.sites
        }
        devices_by_site = {
            site_name: sorted(runtime.devices)
            for site_name, runtime in self.sites.items()
        }
        for site_name, runtime in self.sites.items():
            peers = {
                peer: name for peer, name in gateway_names.items()
                if peer != site_name
            }
            gateway = SiteGatewayAgent(
                gateway_names[site_name],
                site=site_name,
                interface_name=runtime.interface.name,
                root=runtime.root,
                peer_gateways=peers,
                devices_by_site=devices_by_site,
                heartbeat_interval=spec.heartbeat_interval,
                heartbeat_timeout=spec.heartbeat_timeout,
                forwarding_budget=spec.forwarding_budget,
                reconnect_max_backoff=spec.reconnect_max_backoff,
                cost_model=self.cost_model,
            )
            runtime.storage_container.deploy(gateway)
            runtime.gateway = gateway
            # Saturation overflow drains through the gateway.
            runtime.root.forwarder = gateway.try_forward
            runtime.root.forward_threshold = spec.forward_threshold

    def _wire_federation_telemetry(self):
        """Register every component as a labelled metric source.

        Same contract as ``GridManagementSystem._wire_telemetry``: the
        reliable channel's span hooks terminate in-flight traces on
        dead-letter, and snapshots unify the per-site grids.
        """
        from repro.simkernel.telemetry import wire_channel_tracing

        if self.reliable_channel is not None:
            wire_channel_tracing(self.telemetry.recorder,
                                 self.reliable_channel)
        telemetry = self.telemetry
        for runtime in self.sites.values():
            for collector in runtime.collectors:
                telemetry.register_source(
                    lambda c=collector: {
                        "polls_completed": c.polls_completed,
                        "polls_failed": c.polls_failed,
                        "records_shipped": c.records_shipped,
                    },
                    grid="collector", host=collector.host.name,
                    agent=collector.name,
                )
            classifier = runtime.classifier
            telemetry.register_source(
                lambda c=classifier: {
                    "records_classified": c.records_classified,
                    "datasets_published": c.datasets_published,
                },
                grid="classifier", host=classifier.host.name,
                agent=classifier.name,
            )
            for analyzer in runtime.analyzers:
                telemetry.register_source(
                    lambda a=analyzer: {
                        "jobs_completed": a.jobs_completed,
                        "records_analyzed": a.records_analyzed,
                        "rules_fired": a.rules_fired,
                    },
                    grid="processor", host=analyzer.host.name,
                    agent=analyzer.name,
                )
        for root in self.roots():
            telemetry.register_source(
                lambda r=root: {
                    "jobs_dispatched": r.jobs_dispatched,
                    "jobs_redispatched": r.jobs_redispatched,
                    "jobs_abandoned": r.jobs_abandoned,
                    "jobs_forwarded": r.jobs_forwarded,
                    "reports_issued": r.reports_issued,
                },
                grid="processor", host=root.host.name, agent=root.name,
            )
        for interface in self.interfaces():
            telemetry.register_source(
                lambda i=interface: {
                    "reports": len(i.reports),
                    "alerts": len(i.alerts),
                },
                grid="interface", host=interface.host.name,
                agent=interface.name,
            )
        for gateway in self.gateways():
            telemetry.register_source(
                gateway.stats, grid="federation", host=gateway.host.name,
                agent=gateway.name,
            )
        telemetry.register_source(self.platform.stats, grid="platform")
        telemetry.register_source(self.transport.stats, grid="network")
        if self.reliable_channel is not None:
            telemetry.register_source(
                self.reliable_channel.stats, grid="network",
                agent="reliable-channel",
            )

    # -- workload -----------------------------------------------------------

    def assign_site_goals(self, goals_by_site):
        """Distribute per-site goal lists over each site's collectors."""
        for site_name, goals in goals_by_site.items():
            runtime = self.sites[site_name]
            for index, goal in enumerate(goals):
                runtime.collectors[
                    index % len(runtime.collectors)].add_goal(goal)

    def make_site_goals(self, polls_per_type=4, interval=1.0, stagger=0.1):
        """Paper-style goals for every site (each polls its own devices)."""
        from repro.core.records import CollectionGoal

        goals_by_site = {}
        for site_name, runtime in self.sites.items():
            device_names = sorted(runtime.devices)
            goals = []
            for type_index, request_type in enumerate(("A", "B", "C")):
                for poll_index in range(polls_per_type):
                    goals.append(CollectionGoal(
                        device_names[poll_index % len(device_names)],
                        request_type,
                        count=1,
                        interval=interval,
                        start_after=stagger * (poll_index * 3 + type_index),
                    ))
            goals_by_site[site_name] = goals
        return goals_by_site

    # -- running / reporting --------------------------------------------------

    def interfaces(self):
        if self.spec.mode == INTEGRATED:
            return [self.global_interface]
        return [runtime.interface for runtime in self.sites.values()]

    def roots(self):
        if self.spec.mode == INTEGRATED:
            return [self.global_root]
        return [runtime.root for runtime in self.sites.values()]

    def gateways(self):
        return [
            runtime.gateway for runtime in self.sites.values()
            if runtime.gateway is not None
        ]

    def link_state_report(self):
        """Per-site view of the mesh: ``{site: {peer: link_state}}``."""
        return {
            site_name: dict(runtime.gateway.link_state)
            for site_name, runtime in self.sites.items()
            if runtime.gateway is not None
        }

    # -- health scorecards (mesh mode) ------------------------------------

    def site_scorecard(self, site_name):
        """One site's green/degraded/red state from its own containers.

        A severed link degrades the observing site too: a gateway that
        has declared a peer partitioned is operating without that peer's
        capacity, which is a degradation even when every local container
        is green.
        """
        from repro.core.health import (
            DEGRADED, GREEN, container_scorecard, worst_state)

        runtime = self.sites[site_name]
        now = self.sim.now
        states = []
        for container in self.platform.containers.values():
            if container.host.site.name != site_name:
                continue
            card = container_scorecard(
                container, now, root=runtime.root,
                channel=self.reliable_channel)
            states.append(card["state"])
        state = worst_state(states) if states else GREEN
        gateway = runtime.gateway
        if gateway is not None and state == GREEN and any(
                link in (LINK_PARTITIONED, LINK_HEALING)
                for link in gateway.link_state.values()):
            state = DEGRADED
        return state

    def enable_health_ads(self):
        """Make every gateway advertise its site scorecard on beacons.

        Peers collect the advertised states in ``gateway.peer_health``;
        :meth:`mesh_health_report` merges both views.  Opt-in (off by
        default) because the extra beacon field is visible to ontology
        validation and message accounting.
        """
        for site_name, runtime in self.sites.items():
            if runtime.gateway is None:
                continue
            runtime.gateway.health_supplier = (
                lambda site=site_name: self.site_scorecard(site))

    def mesh_health_report(self):
        """``{site: {"self": state, "peers": {observer: advertised}}}``.

        ``self`` is the site's own scorecard right now; ``peers`` maps
        each observing site to the state it last heard advertised --
        stale during a partition, which is exactly the point: the mesh's
        view of a severed site freezes at the last beacon.
        """
        report = {}
        for site_name in self.sites:
            observed = {}
            for observer, runtime in self.sites.items():
                if observer == site_name or runtime.gateway is None:
                    continue
                state = runtime.gateway.peer_health.get(site_name)
                if state is not None:
                    observed[observer] = state
            report[site_name] = {
                "self": self.site_scorecard(site_name),
                "peers": observed,
            }
        return report

    def forwarding_report(self):
        """Mesh-wide forwarding counters, summed over all gateways."""
        totals = {}
        for gateway in self.gateways():
            for key, value in gateway.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def records_shipped(self):
        return sum(
            collector.records_shipped
            for runtime in self.sites.values()
            for collector in runtime.collectors
        )

    def records_classified(self):
        return sum(
            runtime.classifier.records_classified
            for runtime in self.sites.values()
        )

    def all_findings(self):
        findings = []
        for interface in self.interfaces():
            findings.extend(interface.all_findings())
        return findings

    def records_analyzed(self):
        return sum(
            report.records_analyzed
            for interface in self.interfaces()
            for report in interface.reports
        )

    def run_until_records(self, total, timeout=2000.0, settle=1.0):
        deadline = self.sim.now + timeout
        while self.records_analyzed() < total and self.sim.now < deadline:
            self.sim.run(until=min(deadline, self.sim.now + 5.0))
        if self.records_analyzed() >= total and settle > 0:
            self.sim.run(until=self.sim.now + settle)
        return self.records_analyzed() >= total

    def stop_devices(self):
        for device in self.devices.values():
            device.stop()

    def management_hosts(self):
        return [
            host for host in self.network.hosts.values()
            if host.role != "device"
        ]

    def utilization_report(self, label=None):
        from repro.evaluation.accounting import UtilizationReport

        return UtilizationReport.from_hosts(
            label if label is not None else self.spec.mode,
            self.management_hosts(), horizon=self.sim.now,
        )

    def share_knowledge(self, rule):
        """Teach a rule to analyzers (the paper's "shared knowledge").

        In integrated mode the rule reaches every site's analyzers through
        the single interface grid; in siloed mode it can only reach the
        analyzers of the site whose interface learned it (the first site),
        mirroring the baseline's isolation.
        """
        if self.spec.mode == INTEGRATED:
            names = [a.name for r in self.sites.values() for a in r.analyzers]
            return self.global_interface.submit_rule(rule, names)
        first = next(iter(sorted(self.sites)))
        runtime = self.sites[first]
        return runtime.interface.submit_rule(
            rule, [analyzer.name for analyzer in runtime.analyzers])

    def __repr__(self):
        return "FederatedManagementSystem(%s, sites=%d)" % (
            self.spec.mode, len(self.sites))
