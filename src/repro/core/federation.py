"""Multi-site federation: the paper's Site I / Site II deployment.

Figure 2 of the paper spans two sites, each with its own collector and
classifier grids, feeding a shared processing grid whose knowledge base is
fed back from both; Figure 5's baseline is the same hardware *without*
integration ("there's no relation among different sites [...] no high
level analysis can be carried out [...] The only possible evolution of
this system would be the integration of knowledge bases").

Two federation modes realize the comparison:

* ``"integrated"`` -- one grid root brokering analyzers across all sites,
  one interface grid, and a cross-analysis window so problems from
  different sites' datasets correlate (the agent-grid architecture);
* ``"siloed"`` -- an independent root + interface per site; analyzers only
  register locally; no cross-site data ever meets (the Figure 5 baseline).

Both modes share the simulator, WAN topology, devices and workload, so any
difference in findings or utilization is due to integration alone.
"""

from repro.agents.platform import AgentPlatform
from repro.core.classifier import ClassifierAgent
from repro.core.collector import CollectorAgent
from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.interface import InterfaceAgent
from repro.core.loadbalance import make_policy
from repro.core.processor import AnalyzerAgent, ProcessorRootAgent
from repro.core.storage import ManagementDataStore, StorageAgent
from repro.core.system import DeviceSpec, HostSpec
from repro.network.topology import Network
from repro.network.transport import Transport
from repro.rules.stdlib import standard_knowledge_base
from repro.simkernel.simulator import Simulator
from repro.snmp.device import ManagedDevice
from repro.snmp.engine import SnmpEngine

INTEGRATED = "integrated"
SILOED = "siloed"


class SiteSpec:
    """One site's slice of the federation."""

    def __init__(self, name, devices, collector_count=1, analyzer_count=1):
        if not devices:
            raise ValueError("site %r needs at least one device" % name)
        self.name = name
        self.devices = list(devices)
        self.collector_count = collector_count
        self.analyzer_count = analyzer_count

    @classmethod
    def simple(cls, name, device_count=2, collector_count=1,
               analyzer_count=1):
        profiles = ("server", "router")
        devices = [
            DeviceSpec("%s-dev%d" % (name, index + 1),
                       profiles[index % len(profiles)], name)
            for index in range(device_count)
        ]
        return cls(name, devices, collector_count, analyzer_count)

    def __repr__(self):
        return "SiteSpec(%r, devices=%d)" % (self.name, len(self.devices))


class FederatedTopologySpec:
    """A multi-site deployment description.

    Args:
        sites: list of :class:`SiteSpec`.
        mode: :data:`INTEGRATED` or :data:`SILOED`.
        policy: placement-policy name (integrated root only).
        dataset_threshold: per-classifier dataset size.
        cross_window: how long cross jobs remember other datasets' problems
            (integrated mode; enables multi-site correlation).
        seed / cost_model / wan / job_timeout: as in GridTopologySpec.
    """

    def __init__(
        self,
        sites,
        mode=INTEGRATED,
        policy="knowledge",
        dataset_threshold=6,
        cross_window=120.0,
        seed=0,
        cost_model=None,
        wan=None,
        job_timeout=60.0,
        knowledge_base_factory=None,
    ):
        if len(sites) < 1:
            raise ValueError("at least one site is required")
        if mode not in (INTEGRATED, SILOED):
            raise ValueError("unknown federation mode %r" % mode)
        self.sites = list(sites)
        self.mode = mode
        self.policy = policy
        self.dataset_threshold = dataset_threshold
        self.cross_window = cross_window
        self.seed = seed
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.wan = wan
        self.job_timeout = job_timeout
        self.knowledge_base_factory = (
            knowledge_base_factory if knowledge_base_factory is not None
            else standard_knowledge_base
        )

    def total_devices(self):
        return sum(len(site.devices) for site in self.sites)

    def __repr__(self):
        return "FederatedTopologySpec(%s, sites=%d)" % (self.mode, len(self.sites))


class _SiteRuntime:
    """Everything built for one site."""

    def __init__(self, name):
        self.name = name
        self.devices = {}
        self.collectors = []
        self.analyzers = []
        self.store = None
        self.storage_agent = None
        self.classifier = None
        self.root = None          # siloed mode only
        self.interface = None     # siloed mode only


class FederatedManagementSystem:
    """A built multi-site deployment (integrated or siloed)."""

    def __init__(self, spec):
        self.spec = spec
        self.cost_model = spec.cost_model
        self.sim = Simulator(seed=spec.seed)
        self.network = Network(self.sim, wan=spec.wan)
        self.transport = Transport(self.network)
        self.platform = AgentPlatform(self.sim, self.network, self.transport)
        self.sites = {}
        self.devices = {}
        self.global_root = None
        self.global_interface = None
        if spec.mode == INTEGRATED:
            self._build_integrated()
        else:
            self._build_siloed()

    # -- construction -----------------------------------------------------

    def _build_devices(self, site_spec, runtime):
        for device_spec in site_spec.devices:
            host = self.network.add_host(
                device_spec.name, site_spec.name, role="device")
            device = ManagedDevice(self.sim, host, profile=device_spec.profile)
            SnmpEngine(device, self.transport)
            runtime.devices[device_spec.name] = device
            self.devices[device_spec.name] = device

    def _build_site_storage(self, site_spec, runtime, root_name):
        host = self.network.add_host(
            "%s-storage" % site_spec.name, site_spec.name, role="storage")
        container = self.platform.create_container(
            "%s-storage-container" % site_spec.name, host,
            services=("storage", "classification"))
        runtime.store = ManagementDataStore(host, self.cost_model)
        runtime.storage_agent = StorageAgent(
            "storage@" + host.name, runtime.store)
        container.deploy(runtime.storage_agent)
        runtime.classifier = ClassifierAgent(
            "classifier@" + site_spec.name,
            store=runtime.store,
            processor_name=root_name,
            cost_model=self.cost_model,
            dataset_threshold=self.spec.dataset_threshold,
        )
        container.deploy(runtime.classifier)
        return container

    def _build_site_collectors(self, site_spec, runtime):
        device_specs = {
            name: (device.profile.interface_count,
                   device.profile.process_slots)
            for name, device in runtime.devices.items()
        }
        for index in range(site_spec.collector_count):
            host = self.network.add_host(
                "%s-collector%d" % (site_spec.name, index + 1),
                site_spec.name, role="collector")
            container = self.platform.create_container(
                "%s-collector-%d" % (site_spec.name, index + 1), host,
                services=("collection",))
            collector = CollectorAgent(
                "collector%d@%s" % (index + 1, site_spec.name),
                goals=[],
                classifier_name=runtime.classifier.name,
                cost_model=self.cost_model,
                device_specs=device_specs,
            )
            container.deploy(collector)
            runtime.collectors.append(collector)

    def _build_site_analyzers(self, site_spec, runtime, root_name):
        for index in range(site_spec.analyzer_count):
            host = self.network.add_host(
                "%s-analysis%d" % (site_spec.name, index + 1),
                site_spec.name, role="analysis")
            container = self.platform.create_container(
                "%s-analysis-%d" % (site_spec.name, index + 1), host,
                services=("analysis",))
            analyzer = AnalyzerAgent(
                "analyzer%d@%s" % (index + 1, site_spec.name),
                root_name=root_name,
                knowledge_base=self.spec.knowledge_base_factory(),
                cost_model=self.cost_model,
            )
            container.deploy(analyzer)
            runtime.analyzers.append(analyzer)

    def _build_integrated(self):
        first_site = self.spec.sites[0]
        interface_host = self.network.add_host(
            "noc-interface", first_site.name, role="interface")
        interface_container = self.platform.create_container(
            "noc-interface-container", interface_host, services=("interface",))
        self.global_interface = InterfaceAgent("interface@noc")
        interface_container.deploy(self.global_interface)

        root_name = "pg-root@noc"
        for site_spec in self.spec.sites:
            runtime = _SiteRuntime(site_spec.name)
            self.sites[site_spec.name] = runtime
            self._build_devices(site_spec, runtime)
            storage_container = self._build_site_storage(
                site_spec, runtime, root_name)
            if site_spec is first_site:
                # the single root is co-located with the first site's storage
                self.global_root = ProcessorRootAgent(
                    root_name,
                    storage_agent_name=runtime.storage_agent.name,
                    interface_name=self.global_interface.name,
                    policy=make_policy(self.spec.policy),
                    cost_model=self.cost_model,
                    job_timeout=self.spec.job_timeout,
                    cross_window=self.spec.cross_window,
                )
                storage_container.deploy(self.global_root)
            self._build_site_collectors(site_spec, runtime)
            self._build_site_analyzers(site_spec, runtime, root_name)

    def _build_siloed(self):
        for site_spec in self.spec.sites:
            runtime = _SiteRuntime(site_spec.name)
            self.sites[site_spec.name] = runtime
            self._build_devices(site_spec, runtime)
            root_name = "pg-root@" + site_spec.name
            storage_container = self._build_site_storage(
                site_spec, runtime, root_name)
            interface_host = self.network.add_host(
                "%s-interface" % site_spec.name, site_spec.name,
                role="interface")
            interface_container = self.platform.create_container(
                "%s-interface-container" % site_spec.name, interface_host,
                services=("interface",))
            runtime.interface = InterfaceAgent("interface@" + site_spec.name)
            interface_container.deploy(runtime.interface)
            runtime.root = ProcessorRootAgent(
                root_name,
                storage_agent_name=runtime.storage_agent.name,
                interface_name=runtime.interface.name,
                policy=make_policy(self.spec.policy),
                cost_model=self.cost_model,
                job_timeout=self.spec.job_timeout,
            )
            storage_container.deploy(runtime.root)
            self._build_site_collectors(site_spec, runtime)
            self._build_site_analyzers(site_spec, runtime, root_name)

    # -- workload -----------------------------------------------------------

    def assign_site_goals(self, goals_by_site):
        """Distribute per-site goal lists over each site's collectors."""
        for site_name, goals in goals_by_site.items():
            runtime = self.sites[site_name]
            for index, goal in enumerate(goals):
                runtime.collectors[
                    index % len(runtime.collectors)].add_goal(goal)

    def make_site_goals(self, polls_per_type=4, interval=1.0, stagger=0.1):
        """Paper-style goals for every site (each polls its own devices)."""
        from repro.core.records import CollectionGoal

        goals_by_site = {}
        for site_name, runtime in self.sites.items():
            device_names = sorted(runtime.devices)
            goals = []
            for type_index, request_type in enumerate(("A", "B", "C")):
                for poll_index in range(polls_per_type):
                    goals.append(CollectionGoal(
                        device_names[poll_index % len(device_names)],
                        request_type,
                        count=1,
                        interval=interval,
                        start_after=stagger * (poll_index * 3 + type_index),
                    ))
            goals_by_site[site_name] = goals
        return goals_by_site

    # -- running / reporting --------------------------------------------------

    def interfaces(self):
        if self.spec.mode == INTEGRATED:
            return [self.global_interface]
        return [runtime.interface for runtime in self.sites.values()]

    def all_findings(self):
        findings = []
        for interface in self.interfaces():
            findings.extend(interface.all_findings())
        return findings

    def records_analyzed(self):
        return sum(
            report.records_analyzed
            for interface in self.interfaces()
            for report in interface.reports
        )

    def run_until_records(self, total, timeout=2000.0, settle=1.0):
        deadline = self.sim.now + timeout
        while self.records_analyzed() < total and self.sim.now < deadline:
            self.sim.run(until=min(deadline, self.sim.now + 5.0))
        if self.records_analyzed() >= total and settle > 0:
            self.sim.run(until=self.sim.now + settle)
        return self.records_analyzed() >= total

    def stop_devices(self):
        for device in self.devices.values():
            device.stop()

    def management_hosts(self):
        return [
            host for host in self.network.hosts.values()
            if host.role != "device"
        ]

    def utilization_report(self, label=None):
        from repro.evaluation.accounting import UtilizationReport

        return UtilizationReport.from_hosts(
            label if label is not None else self.spec.mode,
            self.management_hosts(), horizon=self.sim.now,
        )

    def share_knowledge(self, rule):
        """Teach a rule to analyzers (the paper's "shared knowledge").

        In integrated mode the rule reaches every site's analyzers through
        the single interface grid; in siloed mode it can only reach the
        analyzers of the site whose interface learned it (the first site),
        mirroring the baseline's isolation.
        """
        if self.spec.mode == INTEGRATED:
            names = [a.name for r in self.sites.values() for a in r.analyzers]
            return self.global_interface.submit_rule(rule, names)
        first = next(iter(sorted(self.sites)))
        runtime = self.sites[first]
        return runtime.interface.submit_rule(
            rule, [analyzer.name for analyzer in runtime.analyzers])

    def __repr__(self):
        return "FederatedManagementSystem(%s, sites=%d)" % (
            self.spec.mode, len(self.sites))
