"""SWIM-style gossip between analyzer containers: peer liveness +
suspicion levels that survive the loss of the grid root.

The root's heartbeat detector (DESIGN.md section 5.2) is a *centralized*
failure detector: when the root's own host is cut off -- a split-brain
partition or a plain outage -- nobody is left to detect anything, and the
domain-partitioned EMS literature (Gavalas et al.; Saini & Mishra) argues
detection must survive exactly that.  This module adds the decentralized
complement: analyzer containers exchange periodic *digest gossip* so
every analyzer converges on its own suspicion view, elects a stand-in
dispatcher while the root is unreachable, and reconciles with the root on
heal -- exactly-once preserved above the root's job-id dedup (duplicates
are counted, never shipped twice).

Protocol (SWIM flavoured, deterministic -- no RNG draws, so an enabled
mesh still replays byte-identically and a disabled one builds nothing):

* every member entry is ``(status, incarnation, last_heard)`` with
  ``alive < suspect < confirmed`` and digest **merge = max** under the
  total order ``(incarnation, status precedence, last_heard)``.  A max
  over a total order is a join-semilattice: commutative, associative,
  idempotent (property-tested in ``tests/test_core_gossip.py``), and a
  ``confirmed`` entry can only regress to ``alive`` via a *fresh
  incarnation* -- the subject's own refutation.
* each analyzer ticks every ``interval``: it pushes its digest to the
  root (riding the existing heartbeat cadence) and to the next peer in a
  deterministic round-robin rotation; digests and probes are answered
  with an ``ack`` carrying the responder's digest (anti-entropy).
* silence beyond ``suspect_after`` raises a local *suspect*; suspicion
  triggers a direct ``ping`` plus an indirect ``ping-req`` through the
  next live peer; ``confirm_after`` of unanswered suspicion escalates to
  *confirmed*.  A member that learns it is suspected bumps its
  incarnation and re-advertises itself alive (refutation).
* when an analyzer's view confirms the **root** dead, the
  lexicographically-smallest alive analyzer in that view becomes the
  *stand-in dispatcher*: analysis results that would be lost against the
  dead root are redirected to it and buffered (dedup by job id --
  duplicates counted, not shipped).  When the view sees the root alive
  again (its refutation after the heal), the buffer is flushed to the
  root over the reliable channel; the root's own ``job.done`` dedup
  absorbs anything the Reaper already re-dispatched.
"""

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.behaviours import CyclicBehaviour, TickerBehaviour
from repro.agents.ontology import ANALYSIS_RESULT, GOSSIP

ALIVE = "alive"
SUSPECT = "suspect"
CONFIRMED = "confirmed"

#: Status precedence at equal incarnation: suspicion only escalates.
_PRECEDENCE = {ALIVE: 0, SUSPECT: 1, CONFIRMED: 2}

#: Nominal wire size of one gossip message (they are tiny beacons).
GOSSIP_SIZE = 0.2


def entry_key(entry):
    """Total order on digest entries: incarnation, precedence, recency."""
    status, incarnation, last_heard = entry
    return (incarnation, _PRECEDENCE[status], last_heard)


def merge_entries(a, b):
    """Join of two entries for one member: the max under :func:`entry_key`.

    Max over a total order makes the merge commutative, associative and
    idempotent, and encodes the SWIM refutation rule: at equal
    incarnation, suspicion wins (``confirmed`` never regresses to
    ``alive``); only a strictly higher incarnation -- which only the
    subject itself issues -- can bring a member back.
    """
    return a if entry_key(a) >= entry_key(b) else b


def merge_digests(a, b):
    """Join of two digests (member -> entry maps); pure, non-mutating."""
    merged = dict(a)
    for member, entry in b.items():
        mine = merged.get(member)
        merged[member] = entry if mine is None else merge_entries(mine, entry)
    return merged


class PeerView:
    """One member's suspicion view over the gossip group.

    Args:
        self_name: the owning member (refutations bump *its* incarnation).
        members: every group member, including ``self_name`` and the root.
        suspect_after: seconds of silence before a member turns suspect.
        confirm_after: seconds of unrefuted suspicion before confirmed.
        clock: zero-arg callable returning the current simulated time.
    """

    def __init__(self, self_name, members, suspect_after, confirm_after,
                 clock):
        if suspect_after <= 0 or confirm_after <= 0:
            raise ValueError("suspect_after and confirm_after must be > 0")
        self.self_name = self_name
        self.suspect_after = suspect_after
        self.confirm_after = confirm_after
        self.clock = clock
        now = clock()
        self.table = {name: (ALIVE, 0, now) for name in members}
        if self_name not in self.table:
            raise ValueError("self %r must be a member" % self_name)
        self.incarnation = 0
        self._suspected_at = {}
        #: member -> first time this view confirmed it dead.
        self.confirm_times = {}
        #: member -> last time this view saw it return from confirmed.
        self.recover_times = {}
        self.suspects_raised = 0
        self.confirms = 0
        self.recoveries = 0
        self.refutations = 0

    # -- queries -----------------------------------------------------------

    def entry(self, member):
        return self.table[member]

    def status(self, member):
        return self.table[member][0]

    def alive_members(self):
        """Members currently alive in this view, sorted by name."""
        return sorted(
            name for name, entry in self.table.items() if entry[0] == ALIVE
        )

    def digest(self):
        """The shippable view: own entry refreshed, entries as lists."""
        now = self.clock()
        self.table[self.self_name] = (ALIVE, self.incarnation, now)
        return {name: list(entry) for name, entry in self.table.items()}

    # -- evidence ----------------------------------------------------------

    def note_heard(self, member):
        """Direct evidence (a message arrived from ``member``): refresh
        recency only.  Status transitions go strictly through the merge --
        a confirmed member stays confirmed until its refutation arrives.
        """
        entry = self.table.get(member)
        if entry is None:
            return
        status, incarnation, last_heard = entry
        self.table[member] = (status, incarnation,
                              max(last_heard, self.clock()))

    def merge(self, digest):
        """Fold a received digest into the view; returns the transitions
        as ``[(member, old_status, new_status)]``.

        Self-suspicion is refuted on the spot: learning that the group
        suspects (or confirmed!) us at incarnation *i*, we come back at
        *i + 1* -- the only legal confirmed -> alive edge.
        """
        transitions = []
        now = self.clock()
        for member, raw in digest.items():
            entry = (raw[0], raw[1], raw[2])
            if entry[0] not in _PRECEDENCE:
                raise ValueError("unknown gossip status %r" % (entry[0],))
            mine = self.table.get(member)
            if member == self.self_name:
                if entry[0] != ALIVE and entry[1] >= self.incarnation:
                    self.incarnation = entry[1] + 1
                    self.refutations += 1
                self.table[member] = (ALIVE, self.incarnation, now)
                continue
            merged = entry if mine is None else merge_entries(mine, entry)
            old_status = mine[0] if mine is not None else None
            self.table[member] = merged
            if old_status == merged[0]:
                continue
            transitions.append((member, old_status, merged[0]))
            if merged[0] == CONFIRMED:
                self.confirms += 1
                self.confirm_times.setdefault(member, now)
            elif merged[0] == ALIVE:
                self._suspected_at.pop(member, None)
                if old_status == CONFIRMED:
                    self.recoveries += 1
                    self.recover_times[member] = now
        return transitions

    def tick(self):
        """Local escalation sweep; returns ``(new_suspects, new_confirms)``.

        Both moves are monotone under the merge order (same incarnation,
        higher precedence), so local escalation and remote merges can
        interleave freely without regressing anybody.
        """
        now = self.clock()
        new_suspects = []
        new_confirms = []
        for member, (status, incarnation, last_heard) in self.table.items():
            if member == self.self_name:
                continue
            if status == ALIVE:
                if now - last_heard > self.suspect_after:
                    self.table[member] = (SUSPECT, incarnation, last_heard)
                    self._suspected_at[member] = now
                    self.suspects_raised += 1
                    new_suspects.append(member)
            elif status == SUSPECT:
                suspected_at = self._suspected_at.get(member, last_heard)
                if now - suspected_at > self.confirm_after:
                    self.table[member] = (CONFIRMED, incarnation, last_heard)
                    self.confirms += 1
                    self.confirm_times.setdefault(member, now)
                    new_confirms.append(member)
        return new_suspects, new_confirms


class _GossipParticipant:
    """Shared plumbing: receive loop + ack replies for one agent."""

    def __init__(self, agent):
        self.agent = agent
        self.digests_received = 0
        self.acks_sent = 0

    def _send(self, receiver, kind, digest=True, subject=None):
        content = dict(
            kind=kind,
            origin=self.agent.name,
            sent_at=self.agent.sim.now,
        )
        if digest:
            content["digest"] = self.view.digest()
        if subject is not None:
            content["subject"] = subject
        self.agent.send(ACLMessage(
            Performative.INFORM,
            sender=self.agent.name,
            receiver=receiver,
            content=GOSSIP.validate(content),
            ontology=GOSSIP.name,
            size_units=GOSSIP_SIZE,
        ))

    def _install_inbox(self, name):
        participant = self

        class GossipInbox(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=GOSSIP.name,
                ))
                if message is not None:
                    participant._on_gossip(message)

        self.agent.add_behaviour(GossipInbox(name))

    def _on_gossip(self, message):
        content = GOSSIP.validate(message.content)
        origin = content["origin"]
        self.digests_received += 1
        self.view.note_heard(origin)
        transitions = []
        if "digest" in content:
            transitions = self.view.merge(content["digest"])
        kind = content["kind"]
        if kind in ("digest", "ping"):
            # Answer with our digest: the ack is both liveness evidence
            # for the origin and an anti-entropy exchange.
            self.acks_sent += 1
            self._send(origin, "ack")
        elif kind == "ping-req":
            # Indirect probe: relay a ping to the subject on the
            # origin's behalf; the subject's ack lands in *our* view and
            # travels onward by rotation.
            subject = content.get("subject")
            if subject and subject != self.agent.name:
                self._send(subject, "ping")
        self._after_merge(transitions)

    def _after_merge(self, transitions):
        """Hook for subclasses (stand-in / reconciliation logic)."""


class RootGossip(_GossipParticipant):
    """The grid root's (purely reactive) side of the mesh.

    The root never ticks: its digests travel only as acks to whoever
    gossips at it, which is exactly the evidence analyzers need -- and
    after an outage, the first probe that reaches the healed root makes
    it refute its own confirmed status with a bumped incarnation.
    """

    def __init__(self, agent, members, suspect_after, confirm_after):
        super().__init__(agent)
        self.view = PeerView(
            agent.name, members, suspect_after, confirm_after,
            clock=lambda: agent.sim.now,
        )
        self._install_inbox("gossip-inbox")

    def stats(self):
        return {
            "digests_received": self.digests_received,
            "acks_sent": self.acks_sent,
            "refutations": self.view.refutations,
        }


class AnalyzerGossip(_GossipParticipant):
    """One analyzer's gossip component: ticker, probes, stand-in duty.

    Attached to the :class:`~repro.core.processor.AnalyzerAgent` as
    ``agent.gossip``; the agent consults :meth:`intercept_result` before
    shipping an analysis result so results bound for a confirmed-dead
    root are buffered at the elected stand-in instead of vanishing.
    """

    def __init__(self, agent, root_name, members, interval, suspect_after,
                 confirm_after, index=0):
        super().__init__(agent)
        self.root_name = root_name
        self.view = PeerView(
            agent.name, members, suspect_after, confirm_after,
            clock=lambda: agent.sim.now,
        )
        #: Deterministic round-robin over everyone else (peers + root).
        self.rotation = sorted(set(members) - {agent.name})
        self._rotation_index = index % len(self.rotation) if self.rotation \
            else 0
        self.rounds = 0
        self.digests_sent = 0
        self.pings_sent = 0
        self.ping_reqs_sent = 0
        #: job_id -> ANALYSIS_RESULT content buffered while standing in.
        self.buffered_results = {}
        self.results_buffered = 0
        self.results_redirected = 0
        self.results_flushed = 0
        #: Duplicates absorbed by the stand-in buffer: counted, not shipped.
        self.duplicates_absorbed = 0
        #: [(time, elected stand-in)] -- one entry per root confirmation.
        self.elections = []
        agent.gossip = self
        self._install_inbox("gossip-inbox")
        component = self

        class GossipTicker(TickerBehaviour):
            def on_tick(self):
                component._on_tick()
                return
                yield  # pragma: no cover - keeps on_tick a generator

        class StandInResults(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=ANALYSIS_RESULT.name,
                ))
                if message is not None:
                    component._buffer_result(
                        ANALYSIS_RESULT.validate(message.content))

        # Stagger tick phases deterministically so the mesh does not
        # beat in lockstep (and peers hear each other between ticks).
        agent.add_behaviour(GossipTicker(
            period=interval, name="gossip",
            initial_delay=interval * (1.0 + index / (len(members) + 1.0)),
        ))
        agent.add_behaviour(StandInResults("gossip-standin"))

    # -- the periodic round ------------------------------------------------

    def _on_tick(self):
        self.rounds += 1
        new_suspects, _ = self.view.tick()
        for member in new_suspects:
            self._probe(member)
        # The root rides every round (the heartbeat cadence); peers take
        # turns.  Confirmed members stay in the rotation on purpose: those
        # pushes are the probes that reach a healed root first.
        self._send(self.root_name, "digest")
        self.digests_sent += 1
        if self.rotation:
            peer = self.rotation[self._rotation_index % len(self.rotation)]
            self._rotation_index += 1
            if peer != self.root_name:
                self._send(peer, "digest")
                self.digests_sent += 1
        self._check_root()

    def _probe(self, member):
        """Direct ping plus an indirect ping-req via the next live peer."""
        self._send(member, "ping")
        self.pings_sent += 1
        for relay in self.view.alive_members():
            if relay not in (self.agent.name, member):
                self._send(relay, "ping-req", subject=member)
                self.ping_reqs_sent += 1
                break

    # -- stand-in dispatcher ----------------------------------------------

    def root_unreachable(self):
        return self.view.status(self.root_name) == CONFIRMED

    def stand_in(self):
        """The elected stand-in: smallest alive analyzer in this view."""
        candidates = [
            name for name in self.view.alive_members()
            if name != self.root_name
        ]
        return candidates[0] if candidates else self.agent.name

    def _after_merge(self, transitions):
        self._check_root(transitions)

    def _check_root(self, transitions=()):
        for member, old_status, new_status in transitions:
            if member != self.root_name:
                continue
            if new_status == CONFIRMED:
                self.elections.append((self.agent.sim.now, self.stand_in()))
            elif old_status == CONFIRMED and new_status == ALIVE:
                self._flush_buffer()
        # Local escalation can also confirm the root (tick path).
        if self.root_unreachable() and (
                not self.elections
                or self.elections[-1][0] < self.view.confirm_times.get(
                    self.root_name, 0.0)):
            self.elections.append((self.agent.sim.now, self.stand_in()))

    def intercept_result(self, content, default_receiver):
        """Reroute one analysis result while the root is confirmed dead.

        Returns True when the result was handled (buffered locally or
        redirected to the stand-in); False lets the caller ship normally.
        Results bound for anyone *other* than the root (e.g. a site
        gateway that forwarded the job) are never intercepted.
        """
        if default_receiver != self.root_name or not self.root_unreachable():
            return False
        stand_in = self.stand_in()
        if stand_in == self.agent.name:
            self._buffer_result(content)
            return True
        self.results_redirected += 1
        self.agent.send(ACLMessage(
            Performative.INFORM,
            sender=self.agent.name,
            receiver=stand_in,
            content=dict(content),
            ontology=ANALYSIS_RESULT.name,
            size_units=GOSSIP_SIZE,
        ))
        return True

    def _buffer_result(self, content):
        job_id = content["job_id"]
        if job_id in self.buffered_results:
            self.duplicates_absorbed += 1
            return
        self.buffered_results[job_id] = dict(content)
        self.results_buffered += 1

    def _flush_buffer(self):
        """Reconcile with the healed root: ship the buffer exactly once."""
        if not self.buffered_results:
            return
        for job_id in sorted(self.buffered_results):
            self.agent.send_reliable(ACLMessage(
                Performative.INFORM,
                sender=self.agent.name,
                receiver=self.root_name,
                content=self.buffered_results[job_id],
                ontology=ANALYSIS_RESULT.name,
                size_units=GOSSIP_SIZE,
            ))
            self.results_flushed += 1
        self.buffered_results = {}

    def stats(self):
        return {
            "rounds": self.rounds,
            "digests_sent": self.digests_sent,
            "digests_received": self.digests_received,
            "acks_sent": self.acks_sent,
            "pings_sent": self.pings_sent,
            "ping_reqs_sent": self.ping_reqs_sent,
            "suspects_raised": self.view.suspects_raised,
            "confirms": self.view.confirms,
            "recoveries": self.view.recoveries,
            "refutations": self.view.refutations,
            "results_buffered": self.results_buffered,
            "results_redirected": self.results_redirected,
            "results_flushed": self.results_flushed,
            "duplicates_absorbed": self.duplicates_absorbed,
        }


class GossipMesh:
    """The whole mesh: one component per analyzer + the reactive root.

    Built by :class:`~repro.core.system.GridManagementSystem` when the
    spec sets ``gossip=``; when unset, nothing here is imported and zero
    behaviours, events or messages exist -- the byte-identity contract.

    Args:
        root: the :class:`~repro.core.processor.ProcessorRootAgent`.
        analyzers: the grid's :class:`AnalyzerAgent` list.
        interval: gossip tick period (default 1.0).
        suspect_after: silence threshold (default ``3 * interval``).
        confirm_after: unrefuted-suspicion threshold (default
            ``3 * interval``); detection latency for a dead member is
            about ``suspect_after + confirm_after`` as seen by each peer.
    """

    def __init__(self, root, analyzers, interval=1.0, suspect_after=None,
                 confirm_after=None):
        if interval <= 0:
            raise ValueError("gossip interval must be positive")
        if not analyzers:
            raise ValueError("gossip needs at least one analyzer")
        if suspect_after is None:
            suspect_after = 3.0 * interval
        if confirm_after is None:
            confirm_after = 3.0 * interval
        self.interval = interval
        self.suspect_after = suspect_after
        self.confirm_after = confirm_after
        members = [root.name] + sorted(a.name for a in analyzers)
        self.root_name = root.name
        self.root_gossip = RootGossip(
            root, members, suspect_after, confirm_after)
        self.members = {}
        for index, analyzer in enumerate(
                sorted(analyzers, key=lambda a: a.name)):
            self.members[analyzer.name] = AnalyzerGossip(
                analyzer, root.name, members, interval,
                suspect_after, confirm_after, index=index,
            )

    def views(self):
        return {name: member.view for name, member in self.members.items()}

    def detection_times(self, member=None):
        """When each analyzer's view confirmed ``member`` (default root)."""
        member = member if member is not None else self.root_name
        return {
            name: component.view.confirm_times[member]
            for name, component in self.members.items()
            if member in component.view.confirm_times
        }

    def recovery_times(self, member=None):
        member = member if member is not None else self.root_name
        return {
            name: component.view.recover_times[member]
            for name, component in self.members.items()
            if member in component.view.recover_times
        }

    def stand_ins(self):
        """The latest election in each analyzer's view (None = no outage)."""
        return {
            name: (component.elections[-1][1] if component.elections
                   else None)
            for name, component in self.members.items()
        }

    def stats(self):
        totals = {}
        for component in self.members.values():
            for key, value in component.stats().items():
                totals[key] = totals.get(key, 0) + value
        totals["root_digests_received"] = self.root_gossip.digests_received
        totals["root_refutations"] = self.root_gossip.view.refutations
        return totals
