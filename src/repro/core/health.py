"""Operational health: SLOs, burn-rate alerting and scorecards.

The flight recorder answers forensic questions after a run; this module
answers the operator's question *during* one -- "is the grid healthy
right now, and which shard/site/stage is burning its latency budget?"
Three pieces:

* **Per-stage latency histograms**, fed *in line* from the span close
  hook (:attr:`~repro.simkernel.telemetry.SpanRecorder.close_hooks`):
  every closed Figure-2 pipeline span lands in a
  :class:`~repro.simkernel.histogram.LatencyHistogram`, so stage
  p50/p95/p99 are available at any instant without re-scanning spans.

* **SLO burn-rate monitoring** (:class:`SLOSpec` + :class:`SLOTracker`):
  the standard SRE multi-window scheme.  An SLO "p99 of dispatch < 5s
  over 1h" grants an error budget of 1% ; the *burn rate* is how fast
  the deployment consumes it (bad-event fraction / budget).  A burn
  alert trips only when **both** a fast window (default ``window/12``,
  i.e. 5 min against 1 h) and the slow window exceed their thresholds:
  the fast window makes alerts prompt and self-clearing, the slow
  window keeps blips from paging.  Trips and clears ship as
  ``slo-burn`` / ``slo-burn-clear`` :class:`~repro.core.reports.Finding`
  objects through the *existing* report/alert path, so SLO violations
  land in the same interface-grid pipeline the grid already audits.

* **Scorecards** (:func:`container_scorecard` et al.): every container
  folds queue depth, heartbeat freshness, host/container liveness,
  parked dead-letters and active burns into a green/degraded/red state,
  aggregated per site and overall -- the root's view of its own grid,
  and (via the federation gateways' beacon ``health`` field) each
  site's view of its peers.

A span closing with status ``timeout``/``evicted``/``dead-letter``/
``abandoned``/``expired`` counts against the budget regardless of
duration -- that is what makes burns trip *during* an outage, when the
slow spans are precisely the ones not closing normally yet.

Everything records in O(1) and holds bounded state (log-bucketed
histograms, fixed-bin sliding windows), so the monitor is safe to leave
on for week-long runs.  The monitor only exists when
``GridTopologySpec(slos=...)`` is set: without it, deployments carry
zero health state and remain byte-identical to previous releases.
"""

from repro.simkernel.histogram import LatencyHistogram
from repro.simkernel.telemetry import PIPELINE_STAGES

#: Span statuses that consume error budget no matter how fast they closed.
BAD_STATUSES = frozenset(
    ("timeout", "evicted", "dead-letter", "abandoned", "expired"))

#: Scorecard states, best to worst.
GREEN, DEGRADED, RED = "green", "degraded", "red"
_STATE_RANK = {GREEN: 0, DEGRADED: 1, RED: 2}

#: Which grid's containers a burning stage implicates on the scorecard.
STAGE_GRID = {
    "collect": "collection", "ship": "collection",
    "classify": "classification", "notify": "classification",
    "dispatch": "analysis", "analyze": "analysis",
    "report": "interface",
}

#: CPU queue depth at which a container counts as backlogged.
QUEUE_DEPTH_DEGRADED = 5


def worst_state(states):
    """The worst of an iterable of scorecard states (green when empty)."""
    worst = GREEN
    for state in states:
        if _STATE_RANK[state] > _STATE_RANK[worst]:
            worst = state
    return worst


class SLOSpec:
    """A declarative latency objective on one pipeline stage.

    Args:
        stage: span name to watch ("dispatch", "ship", ...; usually one
            of the Figure-2 :data:`PIPELINE_STAGES`).
        p: target percentile in (0, 100) -- "p99" is ``p=99``.  The
            error budget is ``1 - p/100``.
        target: latency objective in simulated seconds; a span slower
            than this (or closing with a failure status) is a bad event.
        window: slow-burn window in simulated seconds (SRE default: 1h).
        fast_window: fast-burn window; defaults to ``window / 12``
            (5 min against the 1 h default).
        burn_threshold: both windows' burn rate must reach this to trip
            (2.0 = burning budget twice as fast as sustainable).
        clear_threshold: the fast burn rate must drop below this to
            clear a tripped alert (hysteresis).
    """

    __slots__ = ("stage", "p", "target", "window", "fast_window",
                 "burn_threshold", "clear_threshold")

    def __init__(self, stage, p=99.0, target=1.0, window=3600.0,
                 fast_window=None, burn_threshold=2.0, clear_threshold=1.0):
        if not stage:
            raise ValueError("stage must be a non-empty span name")
        if not 0 < p < 100:
            raise ValueError("p must be in (0, 100) (got %r)" % (p,))
        if target <= 0:
            raise ValueError("target must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        if fast_window is None:
            fast_window = window / 12.0
        if not 0 < fast_window <= window:
            raise ValueError("fast_window must be in (0, window]")
        if clear_threshold > burn_threshold:
            raise ValueError("clear_threshold must not exceed burn_threshold")
        self.stage = stage
        self.p = p
        self.target = target
        self.window = window
        self.fast_window = fast_window
        self.burn_threshold = burn_threshold
        self.clear_threshold = clear_threshold

    @property
    def budget(self):
        """Error budget: the tolerable bad-event fraction."""
        return 1.0 - self.p / 100.0

    def to_dict(self):
        return {
            "stage": self.stage, "p": self.p, "target": self.target,
            "window": self.window, "fast_window": self.fast_window,
            "burn_threshold": self.burn_threshold,
            "clear_threshold": self.clear_threshold,
        }

    def __repr__(self):
        return "SLOSpec(%s p%g < %gs over %gs)" % (
            self.stage, self.p, self.target, self.window)


class _SlidingWindow:
    """Fixed-bin sliding-window good/bad counter: O(1) record, O(bins) read.

    Events land in ``bins`` coarse time buckets; buckets older than the
    window are pruned on write and ignored on read, so memory stays
    bounded no matter how long the run is.  Bin granularity slightly
    blurs the window edge (by at most ``window / bins``), which is fine
    for burn-rate purposes.
    """

    __slots__ = ("window", "bins", "_width", "_counts")

    def __init__(self, window, bins=30):
        self.window = window
        self.bins = bins
        self._width = window / bins
        self._counts = {}  # bin index -> [total, bad]

    def record(self, now, bad):
        index = int(now / self._width)
        entry = self._counts.get(index)
        if entry is None:
            entry = self._counts[index] = [0, 0]
            oldest = index - self.bins
            stale = [key for key in self._counts if key <= oldest]
            for key in stale:
                del self._counts[key]
        entry[0] += 1
        if bad:
            entry[1] += 1

    def totals(self, now):
        """``(total, bad)`` over the trailing window ending at ``now``."""
        oldest = int(now / self._width) - self.bins
        total = bad = 0
        for index, (events, bad_events) in self._counts.items():
            if index > oldest:
                total += events
                bad += bad_events
        return total, bad

    def bad_fraction(self, now):
        total, bad = self.totals(now)
        if not total:
            return 0.0
        return bad / total


class SLOTracker:
    """Burn-rate state machine for one :class:`SLOSpec`.

    Feed it every closed span of its stage (:meth:`record`), poll it
    periodically (:meth:`evaluate`); it answers ``"raise"`` when the
    multi-window trip condition first holds, ``"clear"`` once the fast
    burn falls back below the clear threshold, and ``None`` otherwise.
    Usable standalone (the ``repro-sim top --follow`` replay drives it
    straight from streamed spans, no simulator required).
    """

    def __init__(self, slo):
        self.slo = slo
        self.fast = _SlidingWindow(slo.fast_window)
        self.slow = _SlidingWindow(slo.window)
        self.burning = False
        self.raised = 0
        self.cleared = 0
        self.events = []  # [(time, "raise"/"clear", fast_burn, slow_burn)]

    def record(self, now, duration, status="ok"):
        """Account one closed span; returns whether it was a bad event."""
        bad = status in BAD_STATUSES or (
            duration is not None and duration > self.slo.target)
        self.fast.record(now, bad)
        self.slow.record(now, bad)
        return bad

    def burn_rates(self, now):
        budget = self.slo.budget
        return (self.fast.bad_fraction(now) / budget,
                self.slow.bad_fraction(now) / budget)

    def evaluate(self, now):
        fast_burn, slow_burn = self.burn_rates(now)
        if not self.burning:
            if fast_burn >= self.slo.burn_threshold \
                    and slow_burn >= self.slo.burn_threshold:
                self.burning = True
                self.raised += 1
                self.events.append((now, "raise", fast_burn, slow_burn))
                return "raise"
        elif fast_burn < self.slo.clear_threshold:
            self.burning = False
            self.cleared += 1
            self.events.append((now, "clear", fast_burn, slow_burn))
            return "clear"
        return None

    def snapshot(self, now):
        fast_burn, slow_burn = self.burn_rates(now)
        return {
            "slo": self.slo.to_dict(),
            "fast_burn": fast_burn,
            "slow_burn": slow_burn,
            "burning": self.burning,
            "raised": self.raised,
            "cleared": self.cleared,
        }


# -- scorecards -----------------------------------------------------------


def container_scorecard(container, now, root=None, channel=None,
                        burning_services=frozenset()):
    """One container's health state with the reasons that produced it.

    * **red** -- the container (or its host) is down, or the processor
      root evicted it / its heartbeats have gone fully stale;
    * **degraded** -- heartbeats past half the timeout, CPU queue
      backlog, parked dead-letters addressed to its host, or an active
      burn on a stage its service owns;
    * **green** -- none of the above.
    """
    reasons = []
    state = GREEN

    def mark(new_state, reason):
        nonlocal state
        reasons.append(reason)
        if _STATE_RANK[new_state] > _STATE_RANK[state]:
            state = new_state

    if not container.alive:
        mark(RED, "container down")
    if not container.host.up:
        mark(RED, "host down")
    if root is not None:
        if container.name in root._evicted:
            mark(RED, "evicted by heartbeat detector")
        elif root.heartbeat_timeout is not None:
            last = root._last_heartbeat.get(container.name)
            if last is not None:
                age = now - last
                if age > root.heartbeat_timeout:
                    mark(RED, "heartbeat stale (%.1fs)" % age)
                elif age > root.heartbeat_timeout / 2.0:
                    mark(DEGRADED, "heartbeat aging (%.1fs)" % age)
    if container.host.cpu.queue_length >= QUEUE_DEPTH_DEGRADED:
        mark(DEGRADED,
             "cpu queue depth %d" % container.host.cpu.queue_length)
    if channel is not None:
        parked = channel.parked_count(container.host.name)
        if parked:
            mark(DEGRADED, "%d parked dead-letters" % parked)
    for service in container.services:
        if service in burning_services:
            mark(DEGRADED, "slo burn on %s stage" % service)
            break
    return {
        "state": state,
        "host": container.host.name,
        "site": container.host.site.name,
        "services": list(container.services),
        "reasons": reasons,
    }


def aggregate_scorecards(cards):
    """Fold per-container cards into per-site states and an overall state."""
    sites = {}
    for card in cards.values():
        sites.setdefault(card["site"], []).append(card["state"])
    site_states = {site: worst_state(states)
                   for site, states in sorted(sites.items())}
    return {
        "containers": cards,
        "sites": site_states,
        "overall": worst_state(site_states.values()),
    }


class HealthMonitor:
    """The live health layer of one grid deployment.

    Attaches to the deployment's telemetry span-close hook (in-line
    histogram + window updates, O(1) per span, no events scheduled) and
    runs one periodic checker process that evaluates every SLO tracker
    and ships ``slo-burn`` / ``slo-burn-clear`` findings from the
    processor root to the interface grid over the ordinary
    ``management-report`` path -- so burns raise
    :class:`~repro.core.reports.Alert` objects exactly like any other
    major finding.

    Args:
        system: the :class:`~repro.core.system.GridManagementSystem`
            facade (telemetry must be enabled).
        slos: iterable of :class:`SLOSpec`.
        check_interval: burn evaluation period, simulated seconds.
    """

    def __init__(self, system, slos, check_interval=5.0):
        if system.telemetry is None:
            raise ValueError("HealthMonitor requires telemetry")
        self.system = system
        self.sim = system.sim
        self.slos = list(slos)
        self.check_interval = check_interval
        self.trackers = [SLOTracker(slo) for slo in self.slos]
        self._trackers_by_stage = {}
        for tracker in self.trackers:
            self._trackers_by_stage.setdefault(
                tracker.slo.stage, []).append(tracker)
        self.stage_histograms = {}  # stage -> LatencyHistogram
        self._watched = set(PIPELINE_STAGES) | set(self._trackers_by_stage)
        self.findings_shipped = 0
        self._process = None
        # Containers ever seen on the platform.  A killed container is
        # deregistered from the platform registry, but operators need it
        # to show up RED on the scorecard -- not to vanish.
        self._known_containers = {}

    # -- wiring ------------------------------------------------------------

    def attach(self):
        """Hook the span feed and start the periodic checker."""
        for container in self.system.platform.containers.values():
            self._known_containers[container.name] = container
        self.system.telemetry.recorder.close_hooks.append(self.observe)
        self._process = self.sim.spawn(self._run(), name="health-monitor")
        return self

    def observe(self, span):
        """Span-close hook: in-line histogram + burn-window accounting."""
        if span.name not in self._watched:
            return
        duration = span.duration
        if span.name in self._trackers_by_stage:
            for tracker in self._trackers_by_stage[span.name]:
                tracker.record(span.t_end, duration, span.status)
        if span.name in PIPELINE_STAGES and duration is not None:
            histogram = self.stage_histograms.get(span.name)
            if histogram is None:
                histogram = self.stage_histograms[span.name] = \
                    LatencyHistogram()
            histogram.record(duration)

    def _run(self):
        while True:
            yield self.check_interval
            self.evaluate()

    # -- burn evaluation ---------------------------------------------------

    def evaluate(self):
        """Evaluate every tracker once; ship findings for transitions."""
        now = self.sim.now
        for tracker in self.trackers:
            transition = tracker.evaluate(now)
            if transition == "raise":
                self._ship_finding(tracker, "slo-burn", "major", now)
            elif transition == "clear":
                self._ship_finding(tracker, "slo-burn-clear", "info", now)

    def _ship_finding(self, tracker, kind, severity, now):
        from repro.agents.acl import ACLMessage, Performative
        from repro.core.reports import Finding, ManagementReport

        slo = tracker.slo
        fast_burn, slow_burn = tracker.burn_rates(now)
        root = self.system.root
        finding = Finding(
            kind=kind,
            severity=severity,
            device="",
            site=root.host.site.name,
            detail={
                "stage": slo.stage,
                "p": slo.p,
                "target": slo.target,
                "fast_burn": round(fast_burn, 3),
                "slow_burn": round(slow_burn, 3),
            },
        )
        report = ManagementReport(
            dataset_id="slo-%s-p%g" % (slo.stage, slo.p),
            findings=[finding],
            records_analyzed=0,
            generated_at=now,
            kind="health",
        )
        root.send(ACLMessage(
            Performative.INFORM,
            sender=root.name,
            receiver=self.system.interface.name,
            content={"report": report},
            ontology="management-report",
            size_units=root.cost_model.notify_size,
        ))
        self.findings_shipped += 1

    # -- scorecards --------------------------------------------------------

    def burning_services(self):
        """Services implicated by currently-burning SLO stages."""
        return frozenset(
            STAGE_GRID.get(tracker.slo.stage, tracker.slo.stage)
            for tracker in self.trackers if tracker.burning
        )

    def scorecards(self):
        """Per-container / per-site / overall health states, right now."""
        now = self.sim.now
        system = self.system
        burning = self.burning_services()
        for container in system.platform.containers.values():
            self._known_containers[container.name] = container
        cards = {}
        for container in self._known_containers.values():
            cards[container.name] = container_scorecard(
                container, now, root=system.root,
                channel=system.reliable_channel,
                burning_services=burning,
            )
        return aggregate_scorecards(cards)

    # -- reporting ---------------------------------------------------------

    def active_burns(self):
        return [tracker.slo.to_dict()
                for tracker in self.trackers if tracker.burning]

    def stage_latency(self, qs=(50, 95, 99)):
        return {
            stage: self.stage_histograms[stage].summary(qs)
            for stage in PIPELINE_STAGES
            if stage in self.stage_histograms
        }

    def snapshot(self):
        """One JSON-ready view of the whole health layer (dashboard feed)."""
        now = self.sim.now
        payload = {
            "time": now,
            "stage_latency": self.stage_latency(),
            "slos": [tracker.snapshot(now) for tracker in self.trackers],
            "scorecards": self.scorecards(),
            "burn_events": [
                {"time": time, "event": event, "stage": tracker.slo.stage,
                 "p": tracker.slo.p, "fast_burn": round(fast, 3),
                 "slow_burn": round(slow, 3)}
                for tracker in self.trackers
                for time, event, fast, slow in tracker.events
            ],
            "active_burns": self.active_burns(),
            "findings_shipped": self.findings_shipped,
        }
        channel = self.system.reliable_channel
        if channel is not None:
            payload["reliable_channel"] = channel.stats()
        return payload

    def __repr__(self):
        return "HealthMonitor(slos=%d, burning=%d)" % (
            len(self.trackers), len(self.active_burns()))
