"""The Interface Grid (IG).

"The grid of interface agents is the communication channel between the
grid and the network manager [...] flexible and multi-protocol" (section
3.4).  The interface agent receives consolidated reports from the
processor grid, renders them through pluggable channels (console / HTML /
e-mail flavoured), raises alerts for critical findings, and accepts user
feedback: new rules pushed into analyzer knowledge bases and new goals
pushed to collectors.
"""

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.core.reports import Alert


class Channel:
    """A presentation channel; rendering costs CPU on the interface host."""

    def __init__(self, name, render_cpu_per_report=1.0):
        self.name = name
        self.render_cpu_per_report = render_cpu_per_report
        self.delivered_reports = []
        self.delivered_alerts = []

    def render_report(self, report):
        """Format a report; returns the rendered text."""
        lines = ["[%s] %s: %d findings over %d records" % (
            self.name, report.report_id, len(report.findings),
            report.records_analyzed,
        )]
        for finding in report.deduplicated():
            lines.append("  - %s (%s) device=%s site=%s" % (
                finding.kind, finding.severity, finding.device, finding.site,
            ))
        return "\n".join(lines)

    def deliver_report(self, report, rendered):
        self.delivered_reports.append((report, rendered))

    def deliver_alert(self, alert):
        self.delivered_alerts.append(alert)

    def __repr__(self):
        return "Channel(%r, reports=%d, alerts=%d)" % (
            self.name, len(self.delivered_reports), len(self.delivered_alerts),
        )


class HtmlChannel(Channel):
    """HTML page flavour: heavier rendering."""

    def __init__(self):
        super().__init__("html", render_cpu_per_report=2.0)

    def render_report(self, report):
        rows = "".join(
            "<tr><td>%s</td><td>%s</td><td>%s</td></tr>"
            % (finding.kind, finding.severity, finding.device)
            for finding in report.deduplicated()
        )
        return "<html><body><h1>%s</h1><table>%s</table></body></html>" % (
            report.report_id, rows,
        )


class EmailChannel(Channel):
    """E-mail flavour: light rendering, used mainly for alerts."""

    def __init__(self):
        super().__init__("email", render_cpu_per_report=0.5)


class InterfaceAgent(Agent):
    """Receives reports/alerts; injects user feedback into the system.

    Args:
        name: agent name.
        channels: presentation channels (default: one console channel).
        alert_min_severity: findings at or above this severity raise alerts.
    """

    def __init__(self, name, channels=None, alert_min_severity="major"):
        super().__init__(name)
        self.channels = list(channels) if channels else [Channel("console")]
        self.alert_min_severity = alert_min_severity
        self.reports = []
        self.alerts = []
        self.feedback_log = []
        self._report_waiters = []  # (count, SimEvent)
        self.subscribers = {}      # agent name -> minimum severity
        # -- remote-site degradation (federation mesh) ----------------------
        self.site_status = {}      # site -> last SITE_STATUS content
        self._device_site = {}     # device name -> owning site

    def setup(self):
        interface = self

        class Reports(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology="management-report",
                ))
                if message is not None:
                    yield from interface._handle_report(
                        message.content["report"], message=message,
                    )

        class Subscriptions(CyclicBehaviour):
            """FIPA SUBSCRIBE: user agents register for alert pushes."""

            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.SUBSCRIBE,
                    ontology="alert-subscription",
                ))
                if message is not None:
                    interface._handle_subscription(message)

        class SiteStatus(CyclicBehaviour):
            """Degradation notices from the local site gateway."""

            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology="site-status",
                ))
                if message is not None:
                    interface._handle_site_status(message)

        self.add_behaviour(Reports("reports"))
        self.add_behaviour(Subscriptions("subscriptions"))
        self.add_behaviour(SiteStatus("site-status"))

    # -- report handling -----------------------------------------------------

    def _handle_report(self, report, message=None):
        from repro.core.reports import severity_rank

        for channel in self.channels:
            if channel.render_cpu_per_report:
                yield self.cpu.use(
                    channel.render_cpu_per_report, label="render",
                )
            rendered = channel.render_report(report)
            channel.deliver_report(report, rendered)
        threshold = severity_rank(self.alert_min_severity)
        for finding in report.deduplicated():
            if severity_rank(finding.severity) >= threshold:
                alert = Alert(finding, raised_at=self.sim.now)
                self.alerts.append(alert)
                for channel in self.channels:
                    channel.deliver_alert(alert)
                self._push_alert(alert)
        self.reports.append(report)
        telemetry = self.telemetry
        if telemetry is not None and message is not None \
                and message.trace_context is not None:
            # Last stop of the pipeline: the report span closes once the
            # report is rendered and every alert has gone out.
            telemetry.recorder.end(
                message.trace_context[1], findings=len(report.findings),
            )
        self._notify_report_waiters()

    def _push_alert(self, alert):
        """Push an alert to every qualifying subscriber."""
        from repro.agents.acl import ACLMessage, Performative
        from repro.core.reports import severity_rank

        for subscriber, min_severity in self.subscribers.items():
            if severity_rank(alert.finding.severity) < \
                    severity_rank(min_severity):
                continue
            # Alerts are the one output a manager must not miss; they use
            # the reliable channel when one is installed.
            self.send_reliable(ACLMessage(
                Performative.INFORM,
                sender=self.name,
                receiver=subscriber,
                content={
                    "alert_id": alert.alert_id,
                    "kind": alert.finding.kind,
                    "severity": alert.finding.severity,
                    "device": alert.finding.device,
                    "site": alert.finding.site,
                },
                ontology="alert",
                size_units=alert.size_units,
            ))

    def _handle_subscription(self, message):
        from repro.agents.acl import Performative

        content = message.content or {}
        min_severity = content.get("min_severity", self.alert_min_severity)
        if content.get("cancel"):
            self.subscribers.pop(str(message.sender), None)
        else:
            self.subscribers[str(message.sender)] = min_severity
        self.reply_to(message, Performative.CONFIRM,
                      content={"subscribed": not content.get("cancel", False)})

    def _notify_report_waiters(self):
        still_waiting = []
        for count, event in self._report_waiters:
            if len(self.reports) >= count and not event.triggered:
                event.trigger(len(self.reports))
            elif not event.triggered:
                still_waiting.append((count, event))
        self._report_waiters = still_waiting

    def reports_event(self, count):
        """A SimEvent triggered once ``count`` reports have arrived."""
        event = self.sim.event("%s.reports>=%d" % (self.name, count))
        if len(self.reports) >= count:
            event.trigger(len(self.reports))
        else:
            self._report_waiters.append((count, event))
        return event

    def all_findings(self):
        findings = []
        for report in self.reports:
            findings.extend(report.findings)
        return findings

    # -- remote-site degradation (federation mesh) --------------------------

    def _handle_site_status(self, message):
        from repro.agents.ontology import SITE_STATUS

        content = SITE_STATUS.validate(message.content)
        self.site_status[content["site"]] = dict(content)
        for device in content["devices"]:
            self._device_site[device] = content["site"]

    def partitioned_sites(self):
        return sorted(
            site for site, status in self.site_status.items()
            if status["status"] == "partitioned"
        )

    def device_status(self, device_name):
        """"offline" while the device's site is partitioned, else "online".

        Only devices named in a SITE_STATUS notice are tracked; everything
        else (including all local devices) is online by definition.
        """
        site = self._device_site.get(device_name)
        if site is None:
            return "online"
        status = self.site_status.get(site)
        if status is not None and status["status"] == "partitioned":
            return "offline"
        return "online"

    def offline_devices(self):
        """Devices currently behind a partitioned site boundary."""
        return sorted(
            device for device in self._device_site
            if self.device_status(device) == "offline"
        )

    def stale_findings(self):
        """Findings whose source site is currently partitioned.

        The degradation contract: data from a severed site is never
        silently stale -- the manager can always ask which of the
        findings on screen come from a site the mesh cannot reach.
        """
        partitioned = set(self.partitioned_sites())
        if not partitioned:
            return []
        return [
            finding for finding in self.all_findings()
            if finding.site in partitioned
            or self._device_site.get(finding.device) in partitioned
        ]

    # -- user feedback (input channel) -------------------------------------------

    def submit_rule(self, rule, analyzer_names):
        """Push a learned rule to analyzer agents (the paper's feedback loop).

        Rules are injected into each analyzer's knowledge base; duplicate
        names are skipped per-analyzer and reported back.
        """
        skipped = []
        for analyzer_name in analyzer_names:
            analyzer = self.platform.agent(analyzer_name)
            if analyzer is None:
                skipped.append(analyzer_name)
                continue
            if rule.name in analyzer.knowledge_base:
                skipped.append(analyzer_name)
                continue
            analyzer.knowledge_base.learn(rule)
        self.feedback_log.append(("rule", rule.name, tuple(analyzer_names)))
        return skipped

    def submit_rule_spec(self, spec, analyzer_names):
        """Transmit a declarative rule spec to analyzers over ACL.

        Unlike :meth:`submit_rule` (direct in-process injection used by
        drivers), this is the paper's actual transmission path: the spec
        travels as message content and each analyzer builds and learns the
        rule itself, confirming or refusing by reply.
        """
        from repro.agents.acl import ACLMessage, Performative

        for analyzer_name in analyzer_names:
            self.send(ACLMessage(
                Performative.INFORM,
                sender=self.name,
                receiver=analyzer_name,
                content=spec.to_dict(),
                ontology="learn-rule",
                size_units=0.5,
            ))
        self.feedback_log.append(
            ("rule-spec", spec.factory, tuple(analyzer_names)))

    def submit_goal(self, goal, collector_name):
        """Push a new collection goal to a collector agent."""
        collector = self.platform.agent(collector_name)
        if collector is None:
            raise KeyError("unknown collector %r" % collector_name)
        collector.add_goal(goal)
        self.feedback_log.append(("goal", repr(goal), collector_name))

    def __repr__(self):
        return "InterfaceAgent(%r, reports=%d, alerts=%d)" % (
            self.name, len(self.reports), len(self.alerts),
        )
