"""Job-placement policies for the processor grid root.

Section 3.5 of the paper gives three placement principles: distribute to
containers *with the knowledge* to process the data, to containers *with
computational capacity*, and to containers that are *idle*.  Each principle
is a policy here, plus a naive round-robin baseline and a negotiation-backed
policy (FIPA contract-net), so the ablation bench (X2) can compare them.

A policy sees:

* the job: required service, cluster (knowledge area), record count and
  the estimated CPU units it will consume;
* the candidate profiles: fresh
  :class:`~repro.agents.container.ResourceProfile` snapshots from the
  directory (the paper's "request the current profile of the resources").

It returns the chosen profile (or None when no candidate qualifies).
"""


class PlacementJob:
    """What the root knows about a job when placing it."""

    def __init__(self, job_id, cluster, record_count, cpu_units,
                 required_service="analysis"):
        self.job_id = job_id
        self.cluster = cluster
        self.record_count = record_count
        self.cpu_units = cpu_units
        self.required_service = required_service

    def __repr__(self):
        return "PlacementJob(%s, cluster=%s, records=%d)" % (
            self.job_id, self.cluster, self.record_count,
        )


class PlacementPolicy:
    """Base class; subclasses implement :meth:`choose`."""

    name = "abstract"
    #: When True, :meth:`choose` returns the *candidate list* and the root
    #: must run contract-net negotiation to award the job.
    needs_negotiation = False

    def choose(self, job, profiles):
        raise NotImplementedError

    def _qualified(self, job, profiles):
        """Candidates offering the required service."""
        return [
            profile for profile in profiles
            if profile.offers(job.required_service)
        ]

    def __repr__(self):
        return "%s()" % type(self).__name__


class RoundRobinPolicy(PlacementPolicy):
    """Naive baseline: rotate through qualified containers."""

    name = "round-robin"

    def __init__(self):
        self._next_index = 0

    def choose(self, job, profiles):
        candidates = self._qualified(job, profiles)
        if not candidates:
            return None
        choice = candidates[self._next_index % len(candidates)]
        self._next_index += 1
        return choice


class IdleFirstPolicy(PlacementPolicy):
    """The paper's "using resources that are idle" principle.

    Prefers idle containers; among equals, the shortest CPU queue wins,
    then container name for determinism.
    """

    name = "idle-first"

    def choose(self, job, profiles):
        candidates = self._qualified(job, profiles)
        if not candidates:
            return None
        return min(candidates, key=lambda profile: (
            not profile.idle,
            profile.cpu_queue_length,
            profile.busy_agents,
            profile.container_name,
        ))


class CapacityWeightedPolicy(PlacementPolicy):
    """The paper's "resources that have computational capacity" principle.

    Scores candidates by estimated completion time: queued work plus this
    job, divided by CPU capacity.  Queue length is used as a proxy for
    queued units (the directory profile does not expose exact units).
    """

    name = "capacity"

    #: Assumed CPU units per already-queued request when estimating backlog.
    QUEUED_UNIT_ESTIMATE = 20.0

    def estimate_completion(self, job, profile):
        backlog = profile.cpu_queue_length * self.QUEUED_UNIT_ESTIMATE
        return (backlog + job.cpu_units) / profile.cpu_capacity

    def choose(self, job, profiles):
        candidates = self._qualified(job, profiles)
        if not candidates:
            return None
        return min(candidates, key=lambda profile: (
            self.estimate_completion(job, profile),
            profile.container_name,
        ))


class KnowledgeFirstPolicy(PlacementPolicy):
    """The paper's "containers with knowledge to process it" principle.

    Filters to containers whose knowledge areas cover the job's cluster
    (containers advertising no knowledge are treated as generalists), then
    falls back to capacity weighting among them.
    """

    name = "knowledge"

    def __init__(self):
        self._tiebreak = CapacityWeightedPolicy()

    def choose(self, job, profiles):
        candidates = self._qualified(job, profiles)
        knowing = [
            profile for profile in candidates if profile.knows(job.cluster)
        ]
        pool = knowing if knowing else candidates
        if not pool:
            return None
        return min(pool, key=lambda profile: (
            self._tiebreak.estimate_completion(job, profile),
            profile.container_name,
        ))


class NegotiatedPolicy(PlacementPolicy):
    """Marker policy: placement happens via contract-net negotiation.

    The root does not pick from profiles directly; it runs the
    :class:`~repro.core.negotiation.ContractNetInitiator` against the
    qualified candidates and awards the job to the best bidder.  This class
    only narrows the candidate set (service + knowledge filter).
    """

    name = "negotiated"
    needs_negotiation = True

    def choose(self, job, profiles):
        candidates = self._qualified(job, profiles)
        knowing = [
            profile for profile in candidates if profile.knows(job.cluster)
        ]
        pool = knowing if knowing else candidates
        return pool or None  # the root negotiates among these


_POLICIES = {
    policy.name: policy
    for policy in (
        RoundRobinPolicy, IdleFirstPolicy, CapacityWeightedPolicy,
        KnowledgeFirstPolicy, NegotiatedPolicy,
    )
}


def make_policy(name):
    """Instantiate a policy by name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError("unknown policy %r (known: %s)" % (
            name, ", ".join(sorted(_POLICIES)))) from None


def policy_names():
    return sorted(_POLICIES)
