"""FIPA contract-net negotiation between the grid root and containers.

Section 3.5: the root "could [...] negotiate with containers concerning
the possibility of sending information to be processed by them.  In this
way it can use negotiation protocols established by FIPA."

Protocol (fipa-contract-net):

1. root sends **CFP** with the job outline to every candidate analyzer;
2. each analyzer replies **PROPOSE** (bid: estimated completion time from
   its live host state) or **REFUSE**;
3. root picks the lowest bid, sends **ACCEPT-PROPOSAL** to the winner and
   **REJECT-PROPOSAL** to the rest;
4. the winner performs the job (normal job flow takes over).

The initiator runs inside the root's own process via ``yield from``.
"""

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.ontology import JOB_CFP, JOB_PROPOSAL

#: Protocol tag carried by every negotiation message.
CONTRACT_NET = "fipa-contract-net"


class NegotiationOutcome:
    """Result of one contract-net round."""

    def __init__(self, job_id, winner, bids, refusals):
        self.job_id = job_id
        self.winner = winner            # winning container name, or None
        self.bids = bids                # {container_name: estimated_completion}
        self.refusals = refusals        # [container_name]

    @property
    def succeeded(self):
        return self.winner is not None

    def __repr__(self):
        return "NegotiationOutcome(%s -> %s, bids=%d)" % (
            self.job_id, self.winner, len(self.bids),
        )


class ContractNetInitiator:
    """Runs contract-net rounds from an initiating agent (the grid root).

    Args:
        agent: the initiating agent.
        deadline: seconds to wait for proposals after sending CFPs.
    """

    def __init__(self, agent, deadline=2.0):
        self.agent = agent
        self.deadline = deadline
        self.rounds = 0

    def negotiate(self, job, candidate_agent_names):
        """One round (process generator).  Returns a NegotiationOutcome.

        ``job`` is a :class:`~repro.core.loadbalance.PlacementJob`.
        """
        self.rounds += 1
        conversation = "cnet-%s-%d" % (job.job_id, self.rounds)
        cfp_content = JOB_CFP.make(
            job_id=job.job_id,
            cluster=job.cluster,
            record_count=job.record_count,
            required_service=job.required_service,
        )
        for name in candidate_agent_names:
            self.agent.send(ACLMessage(
                Performative.CFP,
                sender=self.agent.name,
                receiver=name,
                content=dict(cfp_content),
                ontology=JOB_CFP.name,
                protocol=CONTRACT_NET,
                conversation_id=conversation,
            ))
        bids = {}
        proposers = {}
        refusals = []
        deadline_at = self.agent.sim.now + self.deadline
        pending = set(candidate_agent_names)
        while pending and self.agent.sim.now < deadline_at:
            remaining = deadline_at - self.agent.sim.now
            message = yield from self.agent.receive(
                MessageTemplate(protocol=CONTRACT_NET,
                                conversation_id=conversation),
                timeout=remaining,
            )
            if message is None:
                break
            sender = str(message.sender)
            pending.discard(sender)
            if message.performative == Performative.PROPOSE:
                content = JOB_PROPOSAL.validate(message.content)
                bids[content["container"]] = content["estimated_completion"]
                proposers[content["container"]] = sender
            elif message.performative == Performative.REFUSE:
                refusals.append(sender)
        winner = None
        if bids:
            winner = min(bids, key=lambda container: (bids[container], container))
        for container, proposer in proposers.items():
            performative = (
                Performative.ACCEPT_PROPOSAL if container == winner
                else Performative.REJECT_PROPOSAL
            )
            self.agent.send(ACLMessage(
                performative,
                sender=self.agent.name,
                receiver=proposer,
                content={"job_id": job.job_id, "container": container},
                protocol=CONTRACT_NET,
                conversation_id=conversation,
            ))
        return NegotiationOutcome(job.job_id, winner, bids, refusals)


class ContractNetResponder:
    """The analyzer-side half: bid on CFPs using live host state.

    Installed by analyzer agents as part of their message loop; given a
    CFP message, :meth:`bid` sends PROPOSE (or REFUSE when the job's
    cluster is outside the container's knowledge).
    """

    def __init__(self, agent, busy_penalty=1.0):
        self.agent = agent
        self.busy_penalty = busy_penalty
        self.proposals_sent = 0
        self.refusals_sent = 0

    def bid(self, cfp_message, job_cpu_units_estimate=None):
        """Answer one CFP (plain call; sending is fire-and-forget)."""
        content = JOB_CFP.validate(cfp_message.content)
        container = self.agent.container
        if container.knowledge and content["cluster"] not in container.knowledge:
            self.refusals_sent += 1
            self.agent.reply_to(
                cfp_message, Performative.REFUSE,
                content={"job_id": content["job_id"],
                         "reason": "no knowledge of %s" % content["cluster"]},
            )
            return None
        host = container.host
        if job_cpu_units_estimate is None:
            job_cpu_units_estimate = 20.0 * content["record_count"]
        backlog_units = host.cpu.queue_length * 20.0
        estimate = (
            (backlog_units + job_cpu_units_estimate) / host.cpu.capacity
            + self.busy_penalty * container.busy_agents
        )
        proposal = JOB_PROPOSAL.make(
            job_id=content["job_id"],
            container=container.name,
            estimated_completion=estimate,
            queue_length=host.cpu.queue_length,
        )
        self.proposals_sent += 1
        self.agent.reply_to(
            cfp_message, Performative.PROPOSE, content=dict(proposal),
        )
        return proposal
