"""The Processor Grid (PG): root broker, analyzer containers, multi-level
analysis.

Section 3.3: the grid root "co-ordinates this distribution, functioning as
a broker in the system" -- it receives data-ready notifications from the
classifier grid, divides analysis activities per cluster (Figure 3),
selects containers through directory profiles or negotiation (Figure 4 /
section 3.5), tracks outstanding jobs with timeouts (fault tolerance), runs
the level-3 cross-inference once level-1/2 jobs complete, and ships the
consolidated report to the interface grid.

Analyzer agents do the actual work: fetch their cluster from storage,
charge the Table 1 inference cost, run the rule engine over the facts, and
return findings.
"""

import itertools

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour, TickerBehaviour
from repro.agents.directory import DirectoryFacilitator
from repro.agents.ontology import (
    ANALYSIS_JOB,
    ANALYSIS_RESULT,
    CONTAINER_PROFILE,
    DATA_READY,
    HEARTBEAT,
)
from repro.core.costs import DEFAULT_COST_MODEL, GROUP_REQUEST_TYPES, TaskKind
from repro.core.loadbalance import KnowledgeFirstPolicy, PlacementJob
from repro.core.negotiation import (
    CONTRACT_NET,
    ContractNetInitiator,
    ContractNetResponder,
)
from repro.core.reports import Finding, ManagementReport
from repro.rules.facts import Fact, WorkingMemory

#: Cluster name used for level-3 cross-inference jobs.
CROSS_CLUSTER = "correlation"


class _JobState:
    """Root-side bookkeeping for one dispatched job."""

    def __init__(self, job_id, dataset_id, cluster, record_count, level,
                 container, agent_name, deadline, attempt=1):
        self.job_id = job_id
        self.dataset_id = dataset_id
        self.cluster = cluster
        self.record_count = record_count
        self.level = level
        self.container = container
        self.agent_name = agent_name
        self.deadline = deadline
        self.attempt = attempt
        self.done = False
        self.excluded_containers = set()
        self.span = None  # the dispatch span for this attempt (telemetry)


class _DatasetState:
    """Root-side bookkeeping for one dataset under analysis."""

    def __init__(self, dataset_id, record_count, storage_host, clusters):
        self.dataset_id = dataset_id
        self.record_count = record_count
        self.storage_host = storage_host
        self.pending_clusters = set(clusters)
        self.findings = []
        self.records_analyzed = 0
        self.cross_dispatched = False
        self.finished = False
        self.trace = None  # (trace_id, notify span id) from the classifier


class _ScatterRound:
    """One scatter-gather correlation round over a sharded grid.

    Datasets whose level-2 clusters all settled enroll here; the round
    closes (and dispatches ONE cross job over all members) when every
    shard's storage host is represented -- the fan-out barrier -- or when
    ``scatter_window`` elapses first, whichever comes sooner.  The first
    member is the *primary*: the cross job is dispatched against it, its
    dataset collects the level-3 findings, and every other member
    finalizes alongside it.
    """

    def __init__(self, round_id, opened_at):
        self.round_id = round_id
        self.opened_at = opened_at
        self.members = []   # dataset ids, primary first
        self.shards = []    # [(storage_host, dataset_id)] per member
        self.hosts = set()  # distinct storage hosts enrolled so far
        self.closed = False


class ProcessorRootAgent(Agent):
    """The analysis-grid root / broker.

    Args:
        name: agent name.
        storage_agent_name: where analyzers fetch data from.
        interface_name: the interface-grid agent receiving reports.
        policy: a :class:`~repro.core.loadbalance.PlacementPolicy`
            (default knowledge-first, the paper's primary principle).
        cost_model: Table 1 cost model.
        directory: optional shared
            :class:`~repro.agents.directory.DirectoryFacilitator`; the root
            creates a private one ("D1") when omitted.
        job_timeout: grace period added to a job's *estimated service time*
            before it is considered lost and re-dispatched to a different
            container (fault tolerance).  The grace doubles per attempt so
            a slow-but-alive analyzer is not stampeded with duplicates.
        max_attempts: after this many dispatch attempts a cluster is
            abandoned (the dataset report proceeds without its findings,
            carrying an ``analysis-abandoned`` error finding instead).
        heartbeat_timeout: seconds without a heartbeat after which an
            analyzer container is declared dead and *evicted*: its
            outstanding jobs are settled and re-dispatched immediately
            instead of waiting out the Reaper's job timeout.  ``None``
            (default) disables the detector; containers that resume
            heartbeating after an eviction are re-registered.
        enable_cross: run the level-3 cross analysis per dataset.
        negotiation_deadline: proposal window for the negotiated policy.
        cross_window: when > 0, cross jobs also carry problems found in
            *other* datasets within this many seconds -- the federation
            layer uses this so network-wide incidents spanning sites (and
            hence datasets from different classifiers) can be correlated.
        scatter_shards: number of classifier/storage shards feeding this
            root.  At 1 (default) level-3 correlation runs per dataset on
            the historical path; above 1 the root gathers one finished
            dataset per shard into a :class:`_ScatterRound` and dispatches
            a single scatter-gather cross job over all of them.
        scatter_window: barrier timeout -- a round whose shards have not
            all reported within this many seconds dispatches over the
            members it has (a quiet shard must not stall correlation).
    """

    _job_ids = itertools.count(1)

    def __init__(
        self,
        name,
        storage_agent_name,
        interface_name,
        policy=None,
        cost_model=None,
        directory=None,
        job_timeout=60.0,
        enable_cross=True,
        negotiation_deadline=2.0,
        max_attempts=6,
        cross_window=0.0,
        heartbeat_timeout=None,
        scatter_shards=1,
        scatter_window=10.0,
    ):
        super().__init__(name)
        self.storage_agent_name = storage_agent_name
        self.interface_name = interface_name
        self.policy = policy if policy is not None else KnowledgeFirstPolicy()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.directory = directory
        self.job_timeout = job_timeout
        self.enable_cross = enable_cross
        self.negotiation_deadline = negotiation_deadline
        self.max_attempts = max_attempts
        self.heartbeat_timeout = heartbeat_timeout
        self.jobs_abandoned = 0
        #: Seconds to wait for a placeable container before abandoning a
        #: job outright (e.g. every analyzer in the grid is gone).
        self.placement_patience = 120.0
        self.cross_window = cross_window
        if scatter_shards < 1:
            raise ValueError("scatter_shards must be >= 1")
        if scatter_window <= 0:
            raise ValueError("scatter_window must be positive")
        self.scatter_shards = scatter_shards
        self.scatter_window = scatter_window
        self._scatter_round = None       # the currently-open round
        self._scatter_by_dataset = {}    # primary dataset id -> round
        self._scatter_round_ids = itertools.count(1)
        self.scatter_rounds = 0
        self.scatter_fanout_total = 0
        self.last_scatter_fanout = 0
        self._recent_problems = []  # [(time, problem_dict)] across datasets
        self._analyzer_agent_by_container = {}
        self._outstanding_by_container = {}
        self.jobs = {}
        self.datasets = {}
        self.jobs_dispatched = 0
        self.jobs_redispatched = 0
        self.reports_issued = 0
        # -- cross-site forwarding (federation mesh) ------------------------
        #: Optional callable ``forwarder(job_content, span) -> site | None``
        #: installed by a site gateway; consulted when the local grid is
        #: saturated.  A non-None return means the job left the site -- the
        #: gateway owns delivery and the result comes back as a normal
        #: ANALYSIS_RESULT under the same job id.
        self.forwarder = None
        #: Outstanding jobs per live container at/above which the local
        #: grid counts as saturated for forwarding purposes.
        self.forward_threshold = 2
        self.jobs_forwarded = 0
        self.negotiator = None
        # -- heartbeat failure detection ------------------------------------
        self._last_heartbeat = {}   # container name -> last beacon time
        self._evicted = {}          # container name -> eviction time
        self.evictions = []         # [(container, evicted_at)]
        self.heartbeats_received = 0
        self.containers_evicted = 0
        self.containers_recovered = 0
        #: Results that arrived for an already-settled job id -- normally
        #: a re-dispatch race, but after a split-brain heal also the
        #: gossip stand-in's buffer flush colliding with the Reaper's
        #: re-dispatch.  Counted (exactly-once audit), never re-applied.
        self.duplicate_results = 0

    def setup(self):
        if self.directory is None:
            self.directory = DirectoryFacilitator(self.sim)
        self.negotiator = ContractNetInitiator(self, self.negotiation_deadline)
        root = self

        class Registrations(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=CONTAINER_PROFILE.name,
                ))
                if message is not None:
                    root._register_analyzer(message)

        class DataReady(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=DATA_READY.name,
                ))
                if message is not None:
                    yield from root._start_dataset(message)

        class Results(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=ANALYSIS_RESULT.name,
                ))
                if message is not None:
                    yield from root._job_completed(message)

        class Reaper(TickerBehaviour):
            def on_tick(self):
                yield from root._reap_expired_jobs()

        class Heartbeats(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology=HEARTBEAT.name,
                ))
                if message is not None:
                    root._on_heartbeat(message)

        class Detector(TickerBehaviour):
            def on_tick(self):
                yield from root._check_heartbeats()

        self.add_behaviour(Registrations("registrations"))
        self.add_behaviour(DataReady("data-ready"))
        self.add_behaviour(Results("results"))
        self.add_behaviour(Reaper(
            period=max(1.0, self.job_timeout / 4.0), name="reaper",
        ))
        self.add_behaviour(Heartbeats("heartbeats"))
        if self.heartbeat_timeout is not None:
            self.add_behaviour(Detector(
                period=max(0.5, self.heartbeat_timeout / 4.0),
                name="failure-detector",
            ))

    # -- registration (Figure 4) ------------------------------------------

    def _register_analyzer(self, message):
        content = CONTAINER_PROFILE.validate(message.content)
        container = self.platform.containers.get(content["container"])
        if container is None:
            return
        self.directory.register_container_profile(container.profile())
        self._analyzer_agent_by_container[content["container"]] = str(message.sender)

    def analyzer_containers(self):
        return sorted(self._analyzer_agent_by_container)

    # -- dataset handling -----------------------------------------------------

    def _start_dataset(self, message):
        content = DATA_READY.validate(message.content)
        dataset_id = content["dataset"]
        clusters = list(content["clusters"])
        sizes = content.get("cluster_sizes") or {}
        state = _DatasetState(
            dataset_id, content["record_count"], content["storage_host"], clusters,
        )
        telemetry = self.telemetry
        if telemetry is not None and message.trace_context is not None:
            # The DATA_READY survived the wire: close the notify span and
            # hang every dispatch/report span for this dataset under it.
            telemetry.recorder.end(message.trace_context[1])
            state.trace = message.trace_context
        self.datasets[dataset_id] = state
        for cluster in clusters:
            record_count = int(sizes.get(cluster, 0)) or max(
                1, content["record_count"] // max(1, len(clusters)),
            )
            yield from self._dispatch_job(
                dataset_id, cluster, record_count, level=2, exclude=(),
            )

    def _fresh_profiles(self, exclude=()):
        """Live profiles of registered analyzer containers.

        Static facts come from the directory; dynamic load is refreshed
        from the containers themselves (the paper's "request the current
        profile of the resources"), and dead containers are dropped.
        """
        profiles = []
        for container_name in sorted(self._analyzer_agent_by_container):
            if container_name in exclude:
                continue
            container = self.platform.containers.get(container_name)
            if container is None or not container.alive:
                continue
            profile = container.profile()
            # Jobs this root has dispatched but not yet seen answered are
            # invisible to the container's own queue (they may still be in
            # flight); fold them into the load indicators so back-to-back
            # dispatches spread instead of dog-piling one container.
            outstanding = self._outstanding_by_container.get(container_name, 0)
            profile.cpu_queue_length += outstanding
            profile.busy_agents += outstanding
            self.directory.register_container_profile(profile)
            profiles.append(profile)
        return profiles

    def _job_content(self, job_id, dataset_id, cluster, record_count, level,
                     state):
        """Build the validated ANALYSIS_JOB content for one job.

        Independent of placement -- the same content ships to a local
        analyzer or, via the forwarder, to a peer site.
        """
        scatter = (
            self._scatter_by_dataset.get(dataset_id) if level >= 3 else None
        )
        content_kwargs = dict(
            job_id=job_id,
            dataset=dataset_id,
            cluster=cluster,
            record_count=record_count,
            level=level,
            storage_host=state.storage_host,
            problems=(
                self._scatter_problems(scatter) if scatter is not None
                else self._cross_problems(state) if level >= 3 else []
            ),
        )
        if scatter is not None:
            # Scatter-gather: the job names every shard's (host, dataset)
            # so the analyzer fetches all of them before correlating.  The
            # round stays registered until _finalize_cross, so a Reaper
            # re-dispatch rebuilds the same merged view.
            content_kwargs["shards"] = [list(pair) for pair in scatter.shards]
        return ANALYSIS_JOB.make(**content_kwargs)

    def _grid_saturated(self, profiles):
        """True when every live container is at the forwarding threshold.

        An empty profile list counts as saturated only when containers
        *had* registered -- they are gone, not merely late to register;
        a freshly built grid waits for registrations instead of shipping
        its first jobs off-site.
        """
        if not profiles:
            return bool(self._analyzer_agent_by_container or self._evicted)
        outstanding = self._outstanding_by_container
        return all(
            outstanding.get(profile.container_name, 0)
            >= self.forward_threshold
            for profile in profiles
        )

    def _forward_job(self, job_id, dataset_id, cluster, record_count, level,
                     state, span, exclude, attempt):
        """Offer one job to the forwarder; book it as remote on success."""
        remote = self.forwarder(
            dict(self._job_content(
                job_id, dataset_id, cluster, record_count, level, state,
            )),
            span,
        )
        if remote is None:
            return None
        remote_label = "remote:%s" % remote
        # No service estimate for a remote container: the deadline is the
        # attempt's full grace window, and the Reaper re-dispatches
        # locally (new job id; the stale result dedups) if it expires.
        grace = self.job_timeout * (2 ** (attempt - 1))
        job_state = _JobState(
            job_id, dataset_id, cluster, record_count, level,
            remote_label, remote_label,
            deadline=self.sim.now + grace, attempt=attempt,
        )
        job_state.excluded_containers = set(exclude)
        job_state.span = span
        self.jobs[job_id] = job_state
        self.jobs_dispatched += 1
        self.jobs_forwarded += 1
        if attempt > 1:
            self.jobs_redispatched += 1
        if span is not None:
            span.detail["container"] = remote_label
        return job_state

    def _dispatch_job(self, dataset_id, cluster, record_count, level,
                      exclude=(), attempt=1):
        """Place and send one analysis job (process generator)."""
        state = self.datasets[dataset_id]
        if level >= 3:
            infer_cpu = self.cost_model.cross_cost().cpu
            cpu_units = infer_cpu
        else:
            group = cluster if cluster in GROUP_REQUEST_TYPES else "performance"
            infer_cpu = self.cost_model.infer_cost(
                GROUP_REQUEST_TYPES[group]).cpu
            cpu_units = infer_cpu * max(1, record_count)
        job_id = "job-%d" % next(ProcessorRootAgent._job_ids)
        span = None
        telemetry = self.telemetry
        if telemetry is not None and state.trace is not None:
            # One dispatch span per attempt, covering placement (incl. any
            # negotiation) through to the job's settlement: "ok" on result,
            # "timeout"/"evicted" when the attempt is retired.
            span = telemetry.recorder.start(
                "dispatch", state.trace[0], parent=state.trace[1],
                grid="processor", host=self.host.name, agent=self.name,
                job_id=job_id, cluster=cluster, level=level, attempt=attempt,
            )
        placement = PlacementJob(
            job_id, cluster, record_count, cpu_units,
            required_service="analysis",
        )
        container_name = None
        wait_deadline = self.sim.now + self.placement_patience
        while container_name is None:
            if self.sim.now >= wait_deadline:
                if span is not None:
                    telemetry.recorder.end(
                        span, status="abandoned",
                        reason="no placeable analyzer container",
                    )
                yield from self._abandon_placement(dataset_id, cluster, level)
                return None
            profiles = self._fresh_profiles(exclude=exclude)
            if not profiles and exclude:
                # Every non-excluded container is gone; retry everywhere.
                profiles = self._fresh_profiles(exclude=())
            if self.forwarder is not None and self._grid_saturated(profiles):
                forwarded = self._forward_job(
                    job_id, dataset_id, cluster, record_count, level,
                    state, span, exclude, attempt,
                )
                if forwarded is not None:
                    return forwarded
            if not profiles:
                yield 1.0  # no analyzers yet; wait for registrations
                continue
            if self.policy.needs_negotiation:
                pool = self.policy.choose(placement, profiles)
                if not pool:
                    yield 1.0
                    continue
                candidate_agents = [
                    self._analyzer_agent_by_container[profile.container_name]
                    for profile in pool
                ]
                outcome = yield from self.negotiator.negotiate(
                    placement, candidate_agents,
                )
                container_name = outcome.winner
                if container_name is None:
                    yield 1.0
                    continue
            else:
                chosen = self.policy.choose(placement, profiles)
                if chosen is None:
                    yield 1.0
                    continue
                container_name = chosen.container_name
        agent_name = self._analyzer_agent_by_container[container_name]
        job_content = self._job_content(
            job_id, dataset_id, cluster, record_count, level, state,
        )
        # Deadline = estimated service time on the chosen container plus a
        # grace that doubles per attempt; a busy queue is not a dead host.
        chosen_container = self.platform.containers.get(container_name)
        capacity = (
            chosen_container.host.cpu.capacity if chosen_container is not None
            else 10.0
        )
        backlog = (
            self._outstanding_by_container.get(container_name, 0) * cpu_units
        )
        service_estimate = (cpu_units + backlog) / capacity
        grace = self.job_timeout * (2 ** (attempt - 1))
        job_state = _JobState(
            job_id, dataset_id, cluster, record_count, level,
            container_name, agent_name,
            deadline=self.sim.now + service_estimate + grace, attempt=attempt,
        )
        job_state.excluded_containers = set(exclude)
        job_state.span = span
        self.jobs[job_id] = job_state
        self._outstanding_by_container[container_name] = (
            self._outstanding_by_container.get(container_name, 0) + 1
        )
        message = ACLMessage(
            Performative.REQUEST,
            sender=self.name,
            receiver=agent_name,
            content=dict(job_content),
            ontology=ANALYSIS_JOB.name,
            size_units=self.cost_model.notify_size,
        )
        if span is not None:
            span.detail["container"] = container_name
            message.trace_context = (span.trace_id, span.span_id)
        self.send(message)
        self.jobs_dispatched += 1
        if attempt > 1:
            self.jobs_redispatched += 1
        return job_state

    # -- results --------------------------------------------------------------

    def _job_completed(self, message):
        content = ANALYSIS_RESULT.validate(message.content)
        job = self.jobs.get(content["job_id"])
        if job is None or job.done:
            self.duplicate_results += 1
            return  # late duplicate from a re-dispatched job
        job.done = True
        if job.span is not None:
            self.telemetry.recorder.end(job.span)
        self._settle_outstanding(job.container)
        state = self.datasets.get(job.dataset_id)
        if state is None or state.finished:
            return
        state.findings.extend(content["findings"])
        state.records_analyzed += content["records_analyzed"]
        if job.level >= 3:
            yield from self._finalize_cross(state)
            return
        yield from self._cluster_done(state, job.cluster)

    def _cluster_done(self, state, cluster):
        """Advance a dataset once one of its clusters is resolved."""
        state.pending_clusters.discard(cluster)
        if state.pending_clusters or state.cross_dispatched:
            return
        if self.enable_cross:
            state.cross_dispatched = True
            if self.scatter_shards > 1:
                yield from self._enroll_scatter(state)
            else:
                yield from self._dispatch_job(
                    state.dataset_id, CROSS_CLUSTER, record_count=1, level=3,
                )
        else:
            yield from self._finalize_dataset(state)

    # -- scatter-gather correlation (sharded grid) --------------------------

    def _enroll_scatter(self, state):
        """Add a level-2-complete dataset to the open scatter round.

        The round dispatches as soon as every shard's storage host is
        represented (the bounded fan-out barrier); a window timer backs
        the barrier so one quiet shard cannot stall correlation forever.
        """
        round_ = self._scatter_round
        if round_ is None or round_.closed:
            round_ = _ScatterRound(
                next(self._scatter_round_ids), opened_at=self.sim.now,
            )
            self._scatter_round = round_
            self.sim.schedule(
                self.scatter_window, self._scatter_window_expired, (round_,),
            )
        round_.members.append(state.dataset_id)
        round_.shards.append((state.storage_host, state.dataset_id))
        round_.hosts.add(state.storage_host)
        if len(round_.hosts) >= self.scatter_shards:
            yield from self._dispatch_scatter(round_)

    def _scatter_window_expired(self, round_):
        """Barrier timeout (kernel callback): dispatch a partial round."""
        if round_.closed:
            return  # barrier won: the round already dispatched
        self.sim.spawn(
            self._dispatch_scatter(round_),
            name="%s/scatter-%d" % (self.name, round_.round_id),
        )

    def _dispatch_scatter(self, round_):
        """Close a round and dispatch ONE cross job over all its members."""
        if round_.closed:
            return
        round_.closed = True
        if self._scatter_round is round_:
            self._scatter_round = None
        primary = round_.members[0]
        self._scatter_by_dataset[primary] = round_
        self.scatter_rounds += 1
        self.scatter_fanout_total += len(round_.hosts)
        self.last_scatter_fanout = len(round_.hosts)
        yield from self._dispatch_job(
            primary, CROSS_CLUSTER, record_count=1, level=3,
        )

    def _scatter_problems(self, round_):
        """Merged, deduplicated level-1/2 problems across round members."""
        problems = []
        seen = set()
        for dataset_id in round_.members:
            member = self.datasets.get(dataset_id)
            if member is None:
                continue
            for finding in member.findings:
                problem = _finding_to_problem_dict(finding)
                key = tuple(sorted(problem.items()))
                if key not in seen:
                    seen.add(key)
                    problems.append(problem)
        return problems

    def _finalize_cross(self, state):
        """Finalize after level-3 settles (result OR abandonment).

        On the scatter path every round member finalizes together -- the
        primary carries the cross findings, the other members report their
        own level-2 results; leaving them open would strand their reports
        (and their ``records_analyzed`` accounting) forever.  Unsharded,
        this is exactly the historical single-dataset finalize.
        """
        round_ = self._scatter_by_dataset.pop(state.dataset_id, None)
        yield from self._finalize_dataset(state)
        if round_ is None:
            return
        for dataset_id in round_.members:
            member = self.datasets.get(dataset_id)
            if member is not None and not member.finished:
                yield from self._finalize_dataset(member)

    def _finalize_dataset(self, state):
        state.finished = True
        report = ManagementReport(
            dataset_id=state.dataset_id,
            findings=state.findings,
            records_analyzed=state.records_analyzed,
            generated_at=self.sim.now,
        )
        message = ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=self.interface_name,
            content={"report": report},
            ontology="management-report",
            size_units=self.cost_model.report_size,
        )
        telemetry = self.telemetry
        if telemetry is not None and state.trace is not None:
            # The report span covers wire transit + interface rendering;
            # the interface agent closes it on delivery.
            span = telemetry.recorder.start(
                "report", state.trace[0], parent=state.trace[1],
                grid="processor", host=self.host.name, agent=self.name,
                dataset=state.dataset_id, findings=len(state.findings),
            )
            if span is not None:
                message.trace_context = (span.trace_id, span.span_id)
        self.send(message)
        self.reports_issued += 1
        return
        yield  # pragma: no cover - keeps this a generator for symmetry

    def _cross_problems(self, state):
        """Problems a cross job should correlate over.

        Always the dataset's own findings; with ``cross_window`` set, also
        problems from other recent datasets (deduplicated), so incidents
        spanning classifiers -- e.g. two sites -- become visible.
        """
        problems = [
            _finding_to_problem_dict(finding) for finding in state.findings
        ]
        if self.cross_window > 0:
            horizon = self.sim.now - self.cross_window
            self._recent_problems = [
                entry for entry in self._recent_problems if entry[0] >= horizon
            ]
            seen = {tuple(sorted(problem.items())) for problem in problems}
            for _, problem in self._recent_problems:
                key = tuple(sorted(problem.items()))
                if key not in seen:
                    seen.add(key)
                    problems.append(problem)
            for problem in problems:
                self._recent_problems.append((self.sim.now, problem))
        return problems

    def _abandon_placement(self, dataset_id, cluster, level):
        """Give up on placing a job (no analyzers for too long)."""
        state = self.datasets.get(dataset_id)
        if state is None or state.finished:
            self.jobs_abandoned += 1
            return
        yield from self._abandon_job(state, cluster, level,
                                     "no placeable analyzer container")

    def _abandon_job(self, state, cluster, level, reason):
        """Abandon a cluster/cross job; the dataset still finalizes.

        The report carries an ``analysis-abandoned`` error finding instead
        of the cluster's results, so the loss is visible to the manager
        rather than silent.
        """
        self.jobs_abandoned += 1
        telemetry = self.telemetry
        if telemetry is not None and state.trace is not None:
            # An explicitly-statused terminal span: the cluster's chain
            # ends here on purpose, not by omission.
            recorder = telemetry.recorder
            recorder.end(
                recorder.start(
                    "abandoned", state.trace[0], parent=state.trace[1],
                    grid="processor", host=self.host.name, agent=self.name,
                    cluster=cluster, level=level, reason=reason,
                ),
                status="abandoned",
            )
        state.findings.append(Finding(
            kind="analysis-abandoned",
            severity="major",
            device="",
            detail={"cluster": cluster, "level": level, "reason": reason},
            level=level,
        ))
        if level >= 3:
            yield from self._finalize_cross(state)
        else:
            yield from self._cluster_done(state, cluster)

    def _settle_outstanding(self, container_name):
        count = self._outstanding_by_container.get(container_name, 0)
        if count > 0:
            self._outstanding_by_container[container_name] = count - 1

    # -- fault tolerance ----------------------------------------------------------

    def _on_heartbeat(self, message):
        """Record a liveness beacon; re-register a returned container."""
        content = HEARTBEAT.validate(message.content)
        container_name = content["container"]
        self.heartbeats_received += 1
        if container_name not in self._analyzer_agent_by_container:
            container = self.platform.containers.get(container_name)
            if container is None or not container.alive:
                return  # beacon from a corpse (in-flight when it died)
            # Either an eviction proved premature (the container was alive
            # but unreachable, e.g. its host was down) or a brand-new
            # container announced itself by heartbeat: (re-)register it.
            self._analyzer_agent_by_container[container_name] = content["agent"]
            self.directory.register_container_profile(container.profile())
            if self._evicted.pop(container_name, None) is not None:
                self.containers_recovered += 1
        self._last_heartbeat[container_name] = self.sim.now

    def _check_heartbeats(self):
        """Evict registered containers whose beacons stopped."""
        horizon = self.sim.now - self.heartbeat_timeout
        stale = [
            name for name, last in self._last_heartbeat.items()
            if last < horizon and name in self._analyzer_agent_by_container
        ]
        for container_name in stale:
            yield from self._evict_container(container_name)

    def _evict_container(self, container_name):
        """Confirmed-dead path: deregister and recover its jobs *now*.

        Unlike the Reaper (which waits out each job's own deadline), an
        eviction settles every outstanding job on the container in one
        sweep and re-dispatches immediately -- detection latency is the
        heartbeat timeout, not the job timeout.
        """
        self._analyzer_agent_by_container.pop(container_name, None)
        self._evicted[container_name] = self.sim.now
        self.evictions.append((container_name, self.sim.now))
        self.containers_evicted += 1
        for job in list(self.jobs.values()):
            if job.done or job.container != container_name:
                continue
            job.done = True
            if job.span is not None:
                self.telemetry.recorder.end(job.span, status="evicted")
                self.telemetry.recorder.end_children(
                    job.span, status="evicted")
            self._settle_outstanding(container_name)
            state = self.datasets.get(job.dataset_id)
            if state is None or state.finished:
                continue
            if job.attempt >= self.max_attempts:
                yield from self._abandon_job(state, job.cluster, job.level,
                                             "max attempts on eviction")
                continue
            exclude = set(job.excluded_containers)
            exclude.add(container_name)
            yield from self._dispatch_job(
                job.dataset_id, job.cluster, job.record_count, job.level,
                exclude=exclude, attempt=job.attempt + 1,
            )

    def _reap_expired_jobs(self):
        now = self.sim.now
        expired = [
            job for job in self.jobs.values()
            if not job.done and now >= job.deadline
        ]
        for job in expired:
            job.done = True  # retire this attempt
            if job.span is not None:
                self.telemetry.recorder.end(job.span, status="timeout")
                self.telemetry.recorder.end_children(
                    job.span, status="timeout")
            self._settle_outstanding(job.container)
            state = self.datasets.get(job.dataset_id)
            if state is None or state.finished:
                continue
            if job.attempt >= self.max_attempts:
                yield from self._abandon_job(state, job.cluster, job.level,
                                             "max attempts on job timeout")
                continue
            exclude = set(job.excluded_containers)
            exclude.add(job.container)
            yield from self._dispatch_job(
                job.dataset_id, job.cluster, job.record_count, job.level,
                exclude=exclude, attempt=job.attempt + 1,
            )

    def __repr__(self):
        return "ProcessorRootAgent(%r, dispatched=%d, reports=%d)" % (
            self.name, self.jobs_dispatched, self.reports_issued,
        )


def _finding_to_problem_dict(finding):
    """Serialize a finding so a cross job can rebuild problem facts."""
    return {
        "kind": finding.kind,
        "severity": finding.severity,
        "device": finding.device,
        "site": finding.site,
        "metric": finding.detail.get("metric", ""),
        "value": finding.detail.get("value"),
    }


class AnalyzerAgent(Agent):
    """An analysis agent inside a processor-grid container.

    Handles analysis jobs from the root and contract-net CFPs.  For a
    level-1/2 job it fetches its cluster from storage (paying the Table 1
    inference network cost), charges the inference CPU cost per record,
    runs the rule engine over the sample + baseline facts, and returns the
    resulting problems as findings.  For a level-3 job it fetches the
    dataset summary, rebuilds the problem facts supplied by the root, and
    runs the correlation rules.

    Args:
        name: agent name.
        root_name: the grid root to register with (Figure 4).
        knowledge_base: the rule :class:`~repro.rules.rulebase.KnowledgeBase`.
        cost_model: Table 1 cost model.
        register_on_start: send the container profile to the root at setup.
        heartbeat_interval: seconds between liveness beacons to the root
            (``None``, the default, disables heartbeating; pair with the
            root's ``heartbeat_timeout`` for failure detection).
        fetch_timeout: base patience per storage-fetch *attempt* (each
            attempt additionally waits out a transfer allowance sized from
            the query + expected reply); the historical behaviour (one
            flat 60s window, no retries) is the default.
        fetch_retries: extra QUERY_REF attempts after a timed-out fetch
            before the job proceeds with whatever it has (0 = old
            single-shot behaviour).
        scatter_fanout: max concurrent shard fetches while gathering a
            scatter-gather cross job's summaries (the bounded fan-out:
            shards are fetched in waves of this size).
    """

    def __init__(self, name, root_name, knowledge_base, cost_model=None,
                 register_on_start=True, heartbeat_interval=None,
                 fetch_timeout=60.0, fetch_retries=0, scatter_fanout=4):
        super().__init__(name)
        if fetch_timeout <= 0:
            raise ValueError("fetch_timeout must be positive")
        if fetch_retries < 0:
            raise ValueError("fetch_retries must be >= 0")
        if scatter_fanout < 1:
            raise ValueError("scatter_fanout must be >= 1")
        self.root_name = root_name
        self.knowledge_base = knowledge_base
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.register_on_start = register_on_start
        self.heartbeat_interval = heartbeat_interval
        self.fetch_timeout = fetch_timeout
        self.fetch_retries = int(fetch_retries)
        self.scatter_fanout = int(scatter_fanout)
        self.responder = None
        self.jobs_completed = 0
        self.records_analyzed = 0
        self.rules_fired = 0
        self.heartbeats_sent = 0
        self.fetch_attempts = 0
        self.fetch_retries_used = 0
        self.fetch_failures = 0
        #: Optional :class:`repro.core.gossip.AnalyzerGossip` component;
        #: installed by the mesh when the spec enables ``gossip=``.  None
        #: in every default build -- the single branch below is the whole
        #: cost of the feature when disabled.
        self.gossip = None

    def setup(self):
        self.responder = ContractNetResponder(self)
        if self.register_on_start:
            self.send(ACLMessage(
                Performative.INFORM,
                sender=self.name,
                receiver=self.root_name,
                content=self.container.profile().to_content(),
                ontology=CONTAINER_PROFILE.name,
                size_units=self.cost_model.notify_size,
            ))
        analyzer = self

        class Jobs(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.REQUEST,
                    ontology=ANALYSIS_JOB.name,
                ))
                if message is not None:
                    yield from analyzer._run_job(message)

        class Negotiation(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    protocol=CONTRACT_NET,
                ))
                if message is None:
                    return
                if message.performative == Performative.CFP:
                    analyzer.responder.bid(message)
                # ACCEPT/REJECT need no action: the job arrives as REQUEST.

        class Learning(CyclicBehaviour):
            """Accepts rule specs pushed by the interface grid."""

            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.INFORM,
                    ontology="learn-rule",
                ))
                if message is not None:
                    analyzer._learn_rule(message)

        class Heartbeat(TickerBehaviour):
            def on_tick(self):
                analyzer._send_heartbeat()
                return
                yield  # pragma: no cover - keeps on_tick a generator

        self.add_behaviour(Jobs("jobs"))
        self.add_behaviour(Negotiation("negotiation"))
        self.add_behaviour(Learning("learning"))
        if self.heartbeat_interval is not None:
            self.add_behaviour(Heartbeat(
                period=self.heartbeat_interval, name="heartbeat",
            ))

    def _send_heartbeat(self):
        self.heartbeats_sent += 1
        self.send(ACLMessage(
            Performative.INFORM,
            sender=self.name,
            receiver=self.root_name,
            content=HEARTBEAT.make(
                container=self.container.name,
                agent=self.name,
                sent_at=self.sim.now,
            ),
            ontology=HEARTBEAT.name,
            size_units=0.1,
        ))

    # -- job execution ------------------------------------------------------

    def _run_job(self, message):
        content = ANALYSIS_JOB.validate(message.content)
        span = None
        telemetry = self.telemetry
        if telemetry is not None and message.trace_context is not None:
            trace_id, dispatch_id = message.trace_context
            span = telemetry.recorder.start(
                "analyze", trace_id, parent=dispatch_id, grid="processor",
                host=self.host.name, agent=self.name,
                job_id=content["job_id"], cluster=content["cluster"],
                level=content["level"],
            )
        self.container.busy_agents += 1
        try:
            if content["level"] >= 3:
                findings, analyzed = yield from self._run_cross_job(content)
            else:
                findings, analyzed = yield from self._run_cluster_job(content)
        finally:
            self.container.busy_agents -= 1
        self.jobs_completed += 1
        self.records_analyzed += analyzed
        result = ANALYSIS_RESULT.make(
            job_id=content["job_id"],
            findings=findings,
            records_analyzed=analyzed,
        )
        # Reply to whoever sent the REQUEST -- normally the grid root, but
        # a site gateway dispatching a forwarded job needs the result back
        # at the gateway so it can return it across the site boundary.
        # While the gossip mesh has the root confirmed dead, the result is
        # rerouted to the elected stand-in dispatcher instead of being
        # dropped on the severed link (reconciled on heal).
        receiver = str(message.sender)
        if not (self.gossip is not None
                and self.gossip.intercept_result(dict(result), receiver)):
            self.send(ACLMessage(
                Performative.INFORM,
                sender=self.name,
                receiver=receiver,
                content=dict(result),
                ontology=ANALYSIS_RESULT.name,
                size_units=self.cost_model.notify_size + 0.1 * len(findings),
            ))
        if span is not None:
            telemetry.recorder.end(
                span, findings=len(findings), records=analyzed,
            )

    def _fetch(self, storage_query, size_units, conversation_tag,
               reply_units=0.0, storage_agent=None):
        """QUERY_REF to the storage agent; returns the INFORM content.

        Bounded retry loop: each attempt rides the reliable channel (plain
        send when none is installed) and waits ``fetch_timeout`` plus a
        transfer allowance sized from the query and the expected reply --
        a big cluster fetch is given the wire time it actually needs
        instead of tripping a spurious retry.  Every attempt reuses the
        same conversation id, so a late reply to an *earlier* attempt
        still completes the fetch; a false retry degrades to extra
        traffic, never to data loss.

        ``storage_agent`` overrides the job's storage agent; concurrent
        scatter fetches pass it explicitly (each with its own
        conversation tag) instead of sharing the per-job instance state.
        """
        conversation = "%s-%s" % (conversation_tag, self.name)
        template = MessageTemplate(conversation_id=conversation)
        patience = self.fetch_timeout + 2.0 * (
            size_units + reply_units) / self.host.nic.capacity
        if storage_agent is None:
            storage_agent = self._storage_agent_name()
        reply = None
        for attempt in range(1 + self.fetch_retries):
            if attempt:
                self.fetch_retries_used += 1
            self.fetch_attempts += 1
            self.send_reliable(ACLMessage(
                Performative.QUERY_REF,
                sender=self.name,
                receiver=storage_agent,
                content=storage_query,
                conversation_id=conversation,
                size_units=size_units,
            ))
            reply = yield from self.receive(template, timeout=patience)
            if reply is not None:
                break
        if reply is None or reply.performative != Performative.INFORM:
            self.fetch_failures += 1
            return None
        return reply.content

    def _storage_agent_name(self):
        # Storage agents are named after their host by the system facade;
        # jobs carry the storage host name.
        return self._current_storage_agent

    def _run_cluster_job(self, content):
        self._current_storage_agent = "storage@" + content["storage_host"]
        fetched = yield from self._fetch(
            {"op": "fetch-cluster", "dataset": content["dataset"],
             "cluster": content["cluster"]},
            size_units=self.cost_model.fetch_query_size
            * max(1, content["record_count"]),
            conversation_tag=content["job_id"],
            reply_units=self.cost_model.fetch_reply_size
            * max(1, content["record_count"]),
        )
        if fetched is None:
            return [], 0
        records = fetched["records"]
        baselines = fetched["baselines"]
        infer_costs = self.cost_model.infer_costs
        for record in records:
            infer_cost = infer_costs[record.request_type]
            if infer_cost.cpu:
                yield self.cpu.use(infer_cost.cpu, label=TaskKind.INFER)
        memory = WorkingMemory(clock=lambda: self.sim.now)
        for record in records:
            for fact in record.to_facts():
                memory.assert_fact(fact)
        for baseline in baselines:
            memory.assert_fact(Fact(
                "baseline",
                device=baseline["device"],
                metric=baseline["metric"],
                instance=baseline["instance"],
                mean=baseline["mean"],
                maximum=baseline["maximum"],
            ))
        groups = self._rule_groups_for(content["cluster"])
        engine = self.knowledge_base.engine_for(memory, groups=groups, max_level=2)
        self.rules_fired += engine.run()
        findings = [
            Finding.from_fact(fact, level=2)
            for fact in memory.facts("problem")
        ]
        return findings, len(records)

    def _run_cross_job(self, content):
        self._current_storage_agent = "storage@" + content["storage_host"]
        shards = content.get("shards") or ()
        if shards:
            yield from self._scatter_summaries(content, shards)
        else:
            yield from self._fetch(
                {"op": "fetch-summary", "dataset": content["dataset"]},
                size_units=self.cost_model.cross_query_size,
                conversation_tag=content["job_id"],
                reply_units=self.cost_model.cross_reply_size,
            )
        cross_cost = self.cost_model.cross_cost()
        if cross_cost.cpu:
            yield self.cpu.use(cross_cost.cpu, label=TaskKind.INFER_CROSS)
        memory = WorkingMemory(clock=lambda: self.sim.now)
        for problem in content.get("problems", ()):
            memory.assert_fact(Fact("problem", **problem))
        engine = self.knowledge_base.engine_for(
            memory, groups=("correlation",), max_level=3,
        )
        self.rules_fired += engine.run()
        findings = [
            Finding.from_fact(fact, level=3)
            for fact in memory.facts("incident")
        ]
        return findings, 0

    def _scatter_summaries(self, content, shards):
        """Gather every shard's dataset summary, bounded-fan-out.

        Shards are fetched in waves of ``scatter_fanout`` concurrent
        fetches (each a spawned process with its own conversation id, so
        replies cannot cross wires); a wave must settle before the next
        starts, bounding both the NIC burst and the storage-grid load.
        """
        fanout = self.scatter_fanout
        for start in range(0, len(shards), fanout):
            wave = shards[start:start + fanout]
            processes = []
            for offset, (storage_host, dataset_id) in enumerate(wave):
                processes.append(self.sim.spawn(
                    self._fetch(
                        {"op": "fetch-summary", "dataset": dataset_id},
                        size_units=self.cost_model.cross_query_size,
                        conversation_tag="%s-s%d" % (
                            content["job_id"], start + offset),
                        reply_units=self.cost_model.cross_reply_size,
                        storage_agent="storage@" + storage_host,
                    ),
                    name="%s/scatter-fetch" % self.name,
                ))
            for process in processes:
                yield process

    def _learn_rule(self, message):
        """Install a rule shipped as a declarative spec (data, not code)."""
        from repro.rules.catalog import RuleSpec

        try:
            rule = RuleSpec.from_dict(message.content).build()
        except (KeyError, ValueError, TypeError) as exc:
            self.reply_to(message, Performative.FAILURE,
                          content={"reason": str(exc)})
            return
        if rule.name in self.knowledge_base:
            self.reply_to(message, Performative.REFUSE,
                          content={"reason": "rule %r already known" % rule.name})
            return
        self.knowledge_base.learn(rule)
        self.reply_to(message, Performative.CONFIRM,
                      content={"rule": rule.name})

    def _rule_groups_for(self, cluster):
        """Which rule groups to run for a cluster (knowledge selection)."""
        if cluster in self.knowledge_base.groups():
            return (cluster,)
        return None  # non-group clustering: run all level<=2 rules

    def __repr__(self):
        return "AnalyzerAgent(%r, jobs=%d, records=%d)" % (
            self.name, self.jobs_completed, self.records_analyzed,
        )
