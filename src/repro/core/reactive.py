"""Reactive (trap-driven) collection.

Polling alone reacts no faster than the collection interval.  Devices also
push asynchronous traps (:mod:`repro.snmp.traps`); the
:class:`ReactiveCollectionService` turns a trap into an immediate one-shot
collection goal on the appropriate collector, so the very next records the
analysis grid sees already cover the affected device.

The trap-kind -> request-type mapping follows the metric groups: a CPU or
memory trap triggers a performance poll (type A), a storage trap a type-B
poll, a link trap a traffic poll (type C).
"""

from repro.core.records import CollectionGoal
from repro.snmp.traps import TrapSink

#: trap kind -> request type the reaction polls.
DEFAULT_TRAP_POLICY = {
    "cpuHigh": "A",
    "memLow": "A",
    "diskFull": "B",
    "procTableFull": "B",
    "linkDown": "C",
    "linkUp": "C",
    "trafficSpike": "C",
}


class ReactiveCollectionService:
    """Binds a trap sink to a pool of collectors.

    Args:
        host: management host the sink listens on.
        transport: the network transport.
        collectors: collector agents available for reactive polls.
        trap_policy: mapping trap kind -> request type ("A"/"B"/"C");
            unmapped kinds poll type A by default.
        cooldown: minimum seconds between reactions for one device (storm
            suppression -- a flapping link must not melt the collectors).
        port: sink port name.
    """

    def __init__(self, host, transport, collectors, trap_policy=None,
                 cooldown=5.0, port="reactive-traps"):
        if not collectors:
            raise ValueError("need at least one collector")
        self.sim = host.sim
        self.collectors = list(collectors)
        self.trap_policy = dict(trap_policy if trap_policy is not None
                                else DEFAULT_TRAP_POLICY)
        self.cooldown = cooldown
        self.sink = TrapSink(host, transport, port=port)
        self.sink.subscribe(self._on_trap)
        self.reactions = 0
        self.suppressed = 0
        self._last_reaction = {}  # device -> sim time
        self._next_collector = 0

    @property
    def address(self):
        """Where devices should send traps."""
        return self.sink.address

    def _on_trap(self, trap):
        now = self.sim.now
        last = self._last_reaction.get(trap.device_name)
        if last is not None and now - last < self.cooldown:
            self.suppressed += 1
            return
        self._last_reaction[trap.device_name] = now
        request_type = self.trap_policy.get(trap.kind, "A")
        collector = self._pick_collector()
        collector.add_goal(CollectionGoal(
            trap.device_name, request_type, count=1, interval=1.0,
            start_after=0.0,
        ))
        self.reactions += 1

    def _pick_collector(self):
        collector = self.collectors[self._next_collector % len(self.collectors)]
        self._next_collector += 1
        return collector

    def stats(self):
        return {
            "traps_received": len(self.sink.received),
            "reactions": self.reactions,
            "suppressed": self.suppressed,
        }

    def __repr__(self):
        return "ReactiveCollectionService(reactions=%d, suppressed=%d)" % (
            self.reactions, self.suppressed,
        )
