"""The common representation of collected management data.

Section 3.1 of the paper: "The information extracted from network devices
could have quite heterogeneous formats and therefore it is necessary to
create a common representation for these data [...] using XML and
ontologies."  The equivalent here is :class:`ManagementRecord` -- a
normalized, self-describing bundle of :class:`Sample` values produced from
raw SNMP varbinds, with an explicit wire-size model (raw records are large;
parsing extracts the relevant samples and shrinks them).
"""

import itertools

from repro.rules.facts import Fact
from repro.snmp.mib import std


#: Maps MIB object-name prefixes to normalized metric names.
_METRIC_BY_MIB_NAME = {
    "ssCpuBusy": "cpu_load",
    "memAvailReal": "mem_available",
    "laLoad1": "load_avg",
    "dskAvail": "disk_free",
    "dskTotal": "disk_total",
    "hrSystemProcesses": "proc_count",
    "ifNumber": "if_count",
    "ifInOctets": "if_in_octets",
    "ifOutOctets": "if_out_octets",
    "ifOperStatus": "if_oper_status",
    "hrSWRunName": "proc_name",
}

#: Metrics regarded as analysis-relevant; parsing drops the rest.
RELEVANT_METRICS = frozenset(
    metric for metric in _METRIC_BY_MIB_NAME.values()
    if metric not in ("proc_name", "if_count", "disk_total")
)


def metric_from_mib_name(mib_name):
    """Normalize a MIB object name ("ifInOctets.2") to (metric, instance)."""
    base, dot, suffix = mib_name.partition(".")
    metric = _METRIC_BY_MIB_NAME.get(base)
    if metric is None:
        return None, None
    instance = int(suffix) if dot and suffix.isdigit() else None
    return metric, instance


class Sample:
    """One normalized metric observation."""

    __slots__ = ("device", "site", "group", "metric", "value", "instance", "time")

    def __init__(self, device, site, group, metric, value, time, instance=None):
        self.device = device
        self.site = site
        self.group = group
        self.metric = metric
        self.value = value
        self.instance = instance
        self.time = time

    def to_fact(self):
        """The working-memory fact the rule engine consumes."""
        attrs = {
            "device": self.device,
            "site": self.site,
            "group": self.group,
            "metric": self.metric,
            "value": self.value,
            "time": self.time,
        }
        if self.instance is not None:
            attrs["instance"] = self.instance
        return Fact("sample", **attrs)

    def __repr__(self):
        suffix = "[%s]" % self.instance if self.instance is not None else ""
        return "Sample(%s.%s%s=%r)" % (self.device, self.metric, suffix, self.value)


class ManagementRecord:
    """The per-request bundle of samples in the common representation.

    One collection request (Table 1's "Request A/B/C") yields one record.
    A record starts *raw* (wire size = the poll response) and becomes
    *parsed* after the parse task extracts the relevant samples.

    Args:
        device / site: origin of the data.
        request_type: "A" / "B" / "C".
        group: metric group ("performance" / "storage" / "traffic").
        samples: list of :class:`Sample`.
        collected_at: simulation time of collection.
        size_units: current wire size (set from the cost model).
        parsed: whether the parse task has run.
    """

    _ids = itertools.count(1)

    def __init__(
        self, device, site, request_type, group, samples, collected_at,
        size_units, parsed=False,
    ):
        self.id = next(ManagementRecord._ids)
        self.device = device
        self.site = site
        self.request_type = request_type
        self.group = group
        self.samples = list(samples)
        self.collected_at = collected_at
        self.size_units = float(size_units)
        self.parsed = parsed

    @classmethod
    def from_varbinds(
        cls, device, site, request_type, group, varbinds, collected_at, size_units,
    ):
        """Normalize SNMP varbinds into a raw record."""
        samples = []
        for varbind in varbinds:
            if not varbind.ok:
                continue
            metric, instance = metric_from_mib_name(varbind.name)
            if metric is None:
                continue
            samples.append(Sample(
                device=device, site=site, group=group, metric=metric,
                value=varbind.value, time=collected_at, instance=instance,
            ))
        return cls(
            device, site, request_type, group, samples, collected_at,
            size_units, parsed=False,
        )

    def parse(self, parsed_size_units):
        """The parse task: keep relevant samples, shrink the record.

        Returns a new parsed record; the original is unchanged (records may
        be retained raw at the collector for audit).
        """
        kept = [
            sample for sample in self.samples if sample.metric in RELEVANT_METRICS
        ]
        record = ManagementRecord(
            self.device, self.site, self.request_type, self.group, kept,
            self.collected_at, parsed_size_units, parsed=True,
        )
        return record

    def shard_key(self):
        """The key the sharded classifier/storage grid partitions on.

        Records shard by *device* so one shard owns every record (and the
        whole metric history) of a device -- level-2 consolidation stays
        shard-local and rebalance moves whole devices.
        """
        return self.device

    def to_facts(self):
        return [sample.to_fact() for sample in self.samples]

    def metrics(self):
        return sorted({sample.metric for sample in self.samples})

    def __len__(self):
        return len(self.samples)

    def __repr__(self):
        return "ManagementRecord(#%d %s/%s, samples=%d, %s)" % (
            self.id, self.device, self.request_type, len(self.samples),
            "parsed" if self.parsed else "raw",
        )


class CollectionGoal:
    """A collector agent's goal (section 3.1): which objects, where, when.

    Args:
        device_name: the managed device to poll.
        request_type: "A" / "B" / "C" (decides the OID group).
        count: how many polls to perform (None = unbounded).
        interval: seconds between polls.
        start_after: delay before the first poll.
    """

    def __init__(self, device_name, request_type, count=1, interval=1.0,
                 start_after=0.0):
        from repro.core.costs import REQUEST_TYPE_GROUPS

        if request_type not in REQUEST_TYPE_GROUPS:
            raise ValueError("unknown request type %r" % request_type)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.device_name = device_name
        self.request_type = request_type
        self.group = REQUEST_TYPE_GROUPS[request_type]
        self.count = count
        self.interval = interval
        self.start_after = start_after

    def oids(self, interface_count=2, process_slots=3):
        """The OIDs one poll of this goal requests."""
        return std.group_oids(
            self.group, interface_count=interface_count,
            process_slots=process_slots,
        )

    def __repr__(self):
        return "CollectionGoal(%s type-%s x%s @%gs)" % (
            self.device_name, self.request_type,
            self.count if self.count is not None else "inf", self.interval,
        )
