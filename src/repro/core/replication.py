"""Storage replication and fetch failover.

The paper's future work: "Improving the efficacy of forms of storage,
replication, indexing and recuperation of management data by agent grids."

:class:`ReplicationService` mirrors everything the primary
:class:`~repro.core.storage.ManagementDataStore` persists onto a replica
store on another host: each replicated batch travels as a real message
(NIC cost at both ends) and is re-stored on the replica (its Storing cost
applies there too -- replication is not free).  A
:class:`~repro.core.storage.StorageAgent` on the replica host serves
analyzer fetches when the primary host dies; analyzers opt in via
:func:`attach_failover`.
"""

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.core.storage import ManagementDataStore, StorageAgent


class ReplicationService:
    """Mirrors a primary store onto a replica host.

    Args:
        system: a built :class:`~repro.core.system.GridManagementSystem`
            (provides platform/transport and the primary store).
        replica_host: host carrying the replica (created by the caller).
        lag: seconds between the primary write and the replica shipping
            (asynchronous replication; 0 = ship immediately).
    """

    def __init__(self, system, replica_host, lag=0.5):
        self.system = system
        self.sim = system.sim
        self.lag = lag
        self.replica_store = ManagementDataStore(
            replica_host, system.cost_model)
        self.replica_container = system.platform.create_container(
            "replica-container", replica_host, services=("storage",))
        self.replica_agent = StorageAgent(
            "storage@" + replica_host.name, self.replica_store)
        self.replica_container.deploy(self.replica_agent)
        self.batches_replicated = 0
        self.records_replicated = 0
        self._install_hook()

    def _install_hook(self):
        """Wrap the primary store's ``store_records`` to mirror writes."""
        primary = self.system.store
        original = primary.store_records
        service = self

        def replicated_store(records, dataset_id=None, cluster_of=None):
            records = list(records)
            stored = yield from original(
                records, dataset_id=dataset_id, cluster_of=cluster_of)
            if records:
                service._ship(records, dataset_id)
            return stored

        primary.store_records = replicated_store

    def _ship(self, records, dataset_id):
        self.sim.schedule(self.lag, self._send_batch,
                          (list(records), dataset_id))

    def _send_batch(self, records, dataset_id):
        primary_host = self.system.store.host
        if not primary_host.up:
            return  # primary died before shipping; batch is lost (async)
        size = sum(record.size_units for record in records)
        message = ACLMessage(
            Performative.REQUEST,
            sender=self.system.storage_agent.name,
            receiver=self.replica_agent.name,
            content={"op": "store-batch", "records": records,
                     "dataset": dataset_id},
            ontology="replication",
            size_units=size,
        )
        # Replica batches ride the reliable channel when installed: a lost
        # mirror write would silently diverge the replica.
        self.system.platform.send_reliable(message)
        self.batches_replicated += 1
        self.records_replicated += len(records)

    def failover_storage_host(self):
        """The replica's host name (what analyzers fall back to)."""
        return self.replica_store.host.name

    def __repr__(self):
        return "ReplicationService(batches=%d, records=%d)" % (
            self.batches_replicated, self.records_replicated)


def attach_failover(analyzer, replica_host_name, fetch_timeout=20.0):
    """Teach an analyzer to retry fetches against a replica.

    Replaces the analyzer's ``_fetch`` with a three-attempt ladder:
    primary, primary once more (a transient blip -- a rebooting host or a
    lossy window -- usually clears within one patience window), then the
    replica's storage agent.  The analyzer gains ``fetch_failovers`` and
    ``fetch_primary_retries`` counters.
    """
    analyzer.fetch_failovers = 0
    analyzer.fetch_primary_retries = 0

    def fetch_with_failover(storage_query, size_units, conversation_tag,
                            reply_units=0.0):
        result = yield from _query(
            analyzer, analyzer._current_storage_agent, storage_query,
            size_units, conversation_tag, fetch_timeout, reply_units)
        if result is not None:
            return result
        # Retry the primary once before abandoning it: same conversation
        # id, so a late reply to the first attempt still counts.
        analyzer.fetch_primary_retries += 1
        result = yield from _query(
            analyzer, analyzer._current_storage_agent, storage_query,
            size_units, conversation_tag, fetch_timeout, reply_units)
        if result is not None:
            return result
        analyzer.fetch_failovers += 1
        result = yield from _query(
            analyzer, "storage@" + replica_host_name, storage_query,
            size_units, conversation_tag + "-failover", fetch_timeout,
            reply_units)
        return result

    analyzer._fetch = fetch_with_failover
    return analyzer


def _query(analyzer, storage_agent_name, storage_query, size_units,
           conversation_tag, timeout, reply_units=0.0):
    """One bounded QUERY_REF round-trip (process generator)."""
    conversation = "%s-%s" % (conversation_tag, analyzer.name)
    patience = timeout + 2.0 * (
        size_units + reply_units) / analyzer.host.nic.capacity
    analyzer.fetch_attempts += 1
    analyzer.send_reliable(ACLMessage(
        Performative.QUERY_REF,
        sender=analyzer.name,
        receiver=storage_agent_name,
        content=storage_query,
        conversation_id=conversation,
        size_units=size_units,
    ))
    reply = yield from analyzer.receive(
        MessageTemplate(conversation_id=conversation), timeout=patience)
    if reply is None or reply.performative != Performative.INFORM:
        return None
    return reply.content
