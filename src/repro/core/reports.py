"""Management reports, findings and alerts.

The processor grid's output: findings (problems and incidents found by
inference) are aggregated into :class:`ManagementReport` objects, and
critical findings additionally raise :class:`Alert` notifications, both of
which travel to the interface grid for presentation.
"""

import itertools

#: Severity ordering used to decide what becomes an alert.
SEVERITY_ORDER = ("info", "warning", "minor", "major", "critical")


def severity_rank(severity):
    """Numeric rank of a severity (unknown severities rank lowest)."""
    try:
        return SEVERITY_ORDER.index(severity)
    except ValueError:
        return -1


class Finding:
    """One analysis conclusion (a ``problem`` or ``incident`` fact)."""

    def __init__(self, kind, severity, device, site="", detail=None, level=1):
        self.kind = kind
        self.severity = severity
        self.device = device
        self.site = site
        self.detail = dict(detail or {})
        self.level = level

    @classmethod
    def from_fact(cls, fact, level=1):
        """Build a finding from a ``problem``/``incident`` fact."""
        if fact.type == "incident":
            device = ",".join(fact.get("devices", ()))
        else:
            device = fact.get("device", "")
        detail = {
            name: value for name, value in fact.attrs.items()
            if name not in ("kind", "severity", "device", "site")
        }
        return cls(
            kind=fact.get("kind", fact.type),
            severity=fact.get("severity", "warning"),
            device=device,
            site=fact.get("site", ""),
            detail=detail,
            level=level,
        )

    @property
    def is_critical(self):
        return severity_rank(self.severity) >= severity_rank("major")

    def key(self):
        """Dedup key (kind, device, site)."""
        return (self.kind, self.device, self.site)

    def __repr__(self):
        return "Finding(%s/%s @ %s, L%d)" % (
            self.kind, self.severity, self.device or self.site, self.level,
        )


class ManagementReport:
    """A consolidated report over one analyzed dataset."""

    _ids = itertools.count(1)

    def __init__(self, dataset_id, findings, records_analyzed, generated_at,
                 kind="analysis"):
        self.report_id = "report-%d" % next(ManagementReport._ids)
        self.dataset_id = dataset_id
        self.findings = list(findings)
        self.records_analyzed = records_analyzed
        self.generated_at = generated_at
        self.kind = kind
        self.size_units = 2.0 + 0.2 * len(self.findings)

    def by_severity(self):
        buckets = {}
        for finding in self.findings:
            buckets.setdefault(finding.severity, []).append(finding)
        return buckets

    def critical_findings(self):
        return [finding for finding in self.findings if finding.is_critical]

    def deduplicated(self):
        """Findings with duplicate (kind, device, site) collapsed."""
        seen = {}
        for finding in self.findings:
            key = finding.key()
            if key not in seen or severity_rank(finding.severity) > severity_rank(
                seen[key].severity
            ):
                seen[key] = finding
        return list(seen.values())

    def __len__(self):
        return len(self.findings)

    def __repr__(self):
        return "ManagementReport(%s: %d findings over %d records)" % (
            self.report_id, len(self.findings), self.records_analyzed,
        )


class Alert:
    """An out-of-band notification for a critical finding."""

    _ids = itertools.count(1)

    def __init__(self, finding, raised_at, channel="console"):
        self.alert_id = "alert-%d" % next(Alert._ids)
        self.finding = finding
        self.raised_at = raised_at
        self.channel = channel
        self.size_units = 0.5

    def __repr__(self):
        return "Alert(%s: %s via %s)" % (
            self.alert_id, self.finding.kind, self.channel,
        )
