"""Consistent-hash sharding for the classifier/storage grid.

The paper's grid promises scale-out management; the sharded deployment
partitions the classifier/storage lane by *device key* so each shard owns
a stable subset of the managed devices.  The partition function is a
classic consistent-hash ring (Karger et al.): every shard contributes
``vnodes`` virtual points on a 64-bit ring, a key is owned by the first
point clockwise from its hash, and adding or removing one shard only
moves the keys that fall between the new/old points and their
predecessors -- about ``1/n`` of the key space instead of nearly all of
it (the failure mode of ``hash(key) % n``).

Design notes:

* Hashing is :func:`stable_hash` (md5-derived), NOT the builtin
  ``hash()``: string hashing is randomized per process
  (``PYTHONHASHSEED``), and shard ownership must be deterministic across
  runs for the reproduction's byte-identity discipline.
* ``lookup`` memoizes key -> node in a flat dict (O(1) for the steady
  state where the same device keys recur every poll cycle); the memo is
  invalidated on ring membership changes.
* :meth:`HashRing.owners` / :func:`moved_keys` support the rebalance
  protocol: before changing membership, snapshot ownership, apply the
  change, and transfer exactly the keys whose owner changed.
"""

import bisect
import hashlib


def stable_hash(key):
    """Deterministic 64-bit hash of a key (process/run independent)."""
    if not isinstance(key, bytes):
        key = str(key).encode("utf-8")
    return int.from_bytes(hashlib.md5(key).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring with virtual nodes and an O(1) lookup memo.

    Args:
        nodes: initial node names (shard identifiers, e.g. storage host
            names).
        vnodes: virtual points per node; more points = better balance at
            the cost of a larger (still tiny) sorted point table.
    """

    def __init__(self, nodes=(), vnodes=64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes = []          # sorted node names
        self._points = []         # sorted vnode hashes
        self._owners = []         # owner node per point (parallel to _points)
        self._lookup_memo = {}
        for node in nodes:
            self.add_node(node)

    # -- membership -------------------------------------------------------

    def nodes(self):
        return list(self._nodes)

    def __len__(self):
        return len(self._nodes)

    def __contains__(self, node):
        return node in self._nodes

    def _node_points(self, node):
        return [stable_hash("%s#%d" % (node, index))
                for index in range(self.vnodes)]

    def add_node(self, node):
        """Add a node; O(vnodes log points).  Invalidates the memo."""
        if node in self._nodes:
            raise ValueError("node %r already on the ring" % node)
        for point in self._node_points(node):
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)
        bisect.insort(self._nodes, node)
        self._lookup_memo = {}

    def remove_node(self, node):
        """Remove a node; its key range falls to the clockwise successors."""
        if node not in self._nodes:
            raise ValueError("node %r not on the ring" % node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]
        self._nodes.remove(node)
        self._lookup_memo = {}

    # -- lookup -----------------------------------------------------------

    def lookup(self, key):
        """The node owning ``key`` (memoized; O(log points) on a miss)."""
        node = self._lookup_memo.get(key)
        if node is None:
            if not self._points:
                raise LookupError("hash ring is empty")
            index = bisect.bisect_right(self._points, stable_hash(key))
            if index == len(self._points):
                index = 0  # wrap around the ring
            node = self._owners[index]
            self._lookup_memo[key] = node
        return node

    def owners(self, keys):
        """Ownership snapshot: ``{key: node}`` for every key."""
        return {key: self.lookup(key) for key in keys}

    def __repr__(self):
        return "HashRing(nodes=%d, vnodes=%d, points=%d)" % (
            len(self._nodes), self.vnodes, len(self._points),
        )


def moved_keys(before, after):
    """Keys whose owner changed between two ownership snapshots.

    Args:
        before / after: ``{key: node}`` maps (see :meth:`HashRing.owners`)
            over the same key set.

    Returns:
        ``{key: (old_node, new_node)}`` for every moved key.
    """
    return {
        key: (owner, after[key])
        for key, owner in before.items()
        if after.get(key) != owner
    }
