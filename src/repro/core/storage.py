"""Management-data storage: indexed history, datasets and the storage agent.

The classifier grid's output lands here: parsed records are persisted
(paying the Table 1 "Storing" cost on the storage host), indexed by
(device, metric) into a history that level-2 analyses consult as
*baselines*, and grouped into *datasets* of *clusters* ready for
distribution to analyzer containers.

:class:`StorageAgent` exposes the store over ACL for analyzers on other
hosts; fetch messages are sized so an analyzer's network ledger matches
Table 1's inference network cost (see :class:`~repro.core.costs.CostModel`).
"""

import itertools

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.core.costs import DEFAULT_COST_MODEL, TaskKind


class ManagementDataStore:
    """Record persistence + history index + dataset registry on one host."""

    def __init__(self, host, cost_model=None):
        self.host = host
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self._history = {}   # (device, metric, instance) -> [(time, value)]
        self._datasets = {}  # dataset_id -> {cluster_key: [records]}
        self.records_stored = 0
        self.fetches_served = 0

    # -- persistence (process generators charging Table 1 costs) ----------

    def store_records(self, records, dataset_id=None, cluster_of=None):
        """Persist records (process generator charging STORE per record).

        Args:
            records: iterable of parsed :class:`ManagementRecord`.
            dataset_id: when given, records are also grouped into that
                dataset under ``cluster_of(record)`` keys.
            cluster_of: callable record -> cluster key (defaults to the
                record's metric group).
        """
        records = list(records)
        if not records:
            return 0
        store_cost = self.cost_model.store_cost()
        if cluster_of is None:
            cluster_of = lambda record: record.group
        for record in records:
            if store_cost.cpu:
                yield self.host.cpu.use(store_cost.cpu, label="store")
            if store_cost.disk:
                yield self.host.disk.use(store_cost.disk, label="store")
            self._index(record)
            if dataset_id is not None:
                clusters = self._datasets.setdefault(dataset_id, {})
                clusters.setdefault(cluster_of(record), []).append(record)
            self.records_stored += 1
        return len(records)

    def _index(self, record):
        for sample in record.samples:
            if not isinstance(sample.value, (int, float)):
                continue
            key = (sample.device, sample.metric, sample.instance)
            self._history.setdefault(key, []).append((sample.time, sample.value))

    # -- dataset access -----------------------------------------------------

    def dataset_ids(self):
        return sorted(self._datasets)

    def clusters_of(self, dataset_id):
        return sorted(self._datasets.get(dataset_id, ()))

    def fetch_cluster(self, dataset_id, cluster):
        """Records of one cluster (no cost here; agents charge transfers)."""
        self.fetches_served += 1
        return list(self._datasets.get(dataset_id, {}).get(cluster, ()))

    def dataset_size(self, dataset_id):
        clusters = self._datasets.get(dataset_id, {})
        return sum(len(records) for records in clusters.values())

    def drop_dataset(self, dataset_id):
        self._datasets.pop(dataset_id, None)

    # -- history / baselines ---------------------------------------------------

    def history(self, device, metric, instance=None):
        return list(self._history.get((device, metric, instance), ()))

    def baseline(self, device, metric, instance=None, exclude_after=None):
        """Mean/max baseline for a series, or None when no history.

        ``exclude_after`` drops observations newer than the given time so a
        level-2 analysis can compare "now" against "before".
        """
        points = self._history.get((device, metric, instance))
        if not points:
            return None
        values = [
            value for time, value in points
            if exclude_after is None or time <= exclude_after
        ]
        if not values:
            return None
        return {
            "device": device,
            "metric": metric,
            "instance": instance,
            "mean": sum(values) / len(values),
            "maximum": max(values),
            "count": len(values),
        }

    def baselines_for_records(self, records, exclude_after=None):
        """Baselines for every (device, metric, instance) in ``records``."""
        seen = set()
        baselines = []
        for record in records:
            for sample in record.samples:
                key = (sample.device, sample.metric, sample.instance)
                if key in seen:
                    continue
                seen.add(key)
                baseline = self.baseline(*key, exclude_after=exclude_after)
                if baseline is not None:
                    baselines.append(baseline)
        return baselines

    def summary(self):
        return {
            "records_stored": self.records_stored,
            "series": len(self._history),
            "datasets": len(self._datasets),
            "fetches_served": self.fetches_served,
        }

    # -- shard rebalance (consistent-hash grid) -----------------------------

    def devices_held(self):
        """Device names with any data (history or dataset records) here."""
        devices = {key[0] for key in self._history}
        for clusters in self._datasets.values():
            for records in clusters.values():
                devices.update(record.device for record in records)
        return devices

    def extract_device_data(self, devices):
        """Copy out everything owned by ``devices`` for a shard transfer.

        Returns ``(history, datasets)`` where history maps series key ->
        point list and datasets maps dataset_id -> {cluster: [records]}.
        Nothing is removed here: the no-silent-loss rebalance protocol is
        copy, wait for the destination's CONFIRM, then
        :meth:`drop_device_data` -- an unconfirmed transfer leaves the
        source copy authoritative.
        """
        devices = set(devices)
        history = {
            key: list(points) for key, points in self._history.items()
            if key[0] in devices
        }
        datasets = {}
        for dataset_id, clusters in self._datasets.items():
            for cluster, records in clusters.items():
                moved = [r for r in records if r.device in devices]
                if moved:
                    datasets.setdefault(dataset_id, {})[cluster] = moved
        return history, datasets

    def absorb_migration(self, history, datasets):
        """Merge a shard transfer in; returns items absorbed (points+records)."""
        absorbed = 0
        for key, points in history.items():
            series = self._history.setdefault(key, [])
            series.extend(points)
            series.sort()  # interleave with any locally collected points
            absorbed += len(points)
        for dataset_id, clusters in datasets.items():
            local = self._datasets.setdefault(dataset_id, {})
            for cluster, records in clusters.items():
                local.setdefault(cluster, []).extend(records)
                absorbed += len(records)
                self.records_stored += len(records)
        return absorbed

    def drop_device_data(self, devices):
        """Remove data owned by ``devices`` (post-CONFIRM side of a move)."""
        devices = set(devices)
        dropped = 0
        for key in [key for key in self._history if key[0] in devices]:
            dropped += len(self._history.pop(key))
        for dataset_id in list(self._datasets):
            clusters = self._datasets[dataset_id]
            for cluster in list(clusters):
                records = clusters[cluster]
                kept = [r for r in records if r.device not in devices]
                removed = len(records) - len(kept)
                if removed:
                    dropped += removed
                    self.records_stored -= removed
                    if kept:
                        clusters[cluster] = kept
                    else:
                        del clusters[cluster]
            if not clusters:
                del self._datasets[dataset_id]
        return dropped

    def __repr__(self):
        return "ManagementDataStore(@%s, records=%d)" % (
            self.host.name, self.records_stored,
        )


class StorageAgent(Agent):
    """Serves a :class:`ManagementDataStore` over ACL.

    Understood QUERY_REF operations (content dicts):

    * ``{"op": "fetch-cluster", "dataset": ..., "cluster": ...}`` --
      replies INFORM with ``{"records": [...], "baselines": [...]}``,
      reply sized ``fetch_reply_size`` per record.
    * ``{"op": "fetch-summary", "dataset": ...}`` -- replies INFORM with
      the per-device problem-relevant summary for cross-inference, sized
      ``cross_reply_size``.

    REQUEST operations:

    * ``{"op": "store-batch", "records": [...], "dataset": ...}`` --
      persists records, replies CONFIRM.
    * ``{"op": "migrate-in", "history": ..., "datasets": ...}`` -- absorbs
      a shard-rebalance transfer (see :meth:`migrate_devices`), replies
      CONFIRM with the absorbed item count.
    """

    def __init__(self, name, store):
        super().__init__(name)
        self.store = store
        self.queries_answered = 0
        self.migrations_out = 0
        self.items_migrated_out = 0
        self.items_migrated_in = 0
        self._migration_seq = itertools.count(1)

    @property
    def cost_model(self):
        return self.store.cost_model

    def setup(self):
        agent = self

        class Serve(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.QUERY_REF))
                if message is not None:
                    yield from agent._answer_query(message)

        class StoreBatches(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.REQUEST))
                if message is not None:
                    yield from agent._store_batch(message)

        self.add_behaviour(Serve("serve-queries"))
        self.add_behaviour(StoreBatches("store-batches"))

    # -- handlers -----------------------------------------------------------

    def _answer_query(self, message):
        content = message.content
        operation = content.get("op")
        if operation == "fetch-cluster":
            records = self.store.fetch_cluster(content["dataset"], content["cluster"])
            # Baselines describe history *before* the batch under analysis;
            # including the batch itself would dilute every trend/surge
            # comparison toward 1.0.
            cutoff = None
            if records:
                cutoff = min(record.collected_at for record in records) - 1e-9
            baselines = self.store.baselines_for_records(
                records, exclude_after=cutoff)
            small_read = 0.5 * max(1, len(records))
            yield self.host.disk.use(small_read, label="fetch")
            self.queries_answered += 1
            # Fetch replies ride the reliable channel (when installed): a
            # lost reply is indistinguishable from a slow one to the
            # analyzer, and the retry it triggers re-reads the store.
            self.reply_to(
                message, Performative.INFORM,
                content={"records": records, "baselines": baselines},
                size_units=self.cost_model.fetch_reply_size * max(1, len(records)),
                reliable=True,
            )
        elif operation == "fetch-summary":
            dataset_id = content["dataset"]
            summary = {
                "dataset": dataset_id,
                "record_count": self.store.dataset_size(dataset_id),
                "clusters": self.store.clusters_of(dataset_id),
                "store": self.store.summary(),
            }
            yield self.host.disk.use(1.0, label="fetch")
            self.queries_answered += 1
            self.reply_to(
                message, Performative.INFORM, content=summary,
                size_units=self.cost_model.cross_reply_size,
                reliable=True,
            )
        else:
            self.reply_to(
                message, Performative.NOT_UNDERSTOOD,
                content={"reason": "unknown op %r" % operation},
            )

    def _store_batch(self, message):
        content = message.content
        operation = content.get("op")
        if operation == "migrate-in":
            absorbed = self.store.absorb_migration(
                content["history"], content["datasets"],
            )
            self.items_migrated_in += absorbed
            if absorbed:
                yield self.host.disk.use(
                    0.5 * absorbed, label="rebalance",
                )
            # The CONFIRM authorizes the source to drop its copy; it rides
            # the reliable channel (when installed) because losing it would
            # strand the data on the old owner, not lose it.
            self.reply_to(
                message, Performative.CONFIRM,
                content={"absorbed": absorbed}, reliable=True,
            )
            return
        if operation != "store-batch":
            self.reply_to(
                message, Performative.NOT_UNDERSTOOD,
                content={"reason": "unknown op"},
            )
            return
        records = content["records"]
        stored = yield from self.store.store_records(
            records, dataset_id=content.get("dataset"),
            cluster_of=content.get("cluster_of"),
        )
        self.reply_to(
            message, Performative.CONFIRM, content={"stored": stored},
        )

    # -- shard rebalance ----------------------------------------------------

    def migrate_devices(self, devices, target_agent_name, timeout=60.0):
        """Transfer this store's data for ``devices`` to another shard.

        Process generator implementing the copy -> CONFIRM -> drop
        protocol: the local copy is only removed after the destination
        confirms absorption, so a lost transfer (or a dead destination)
        degrades to data staying on the old owner -- never to silent
        loss.  Returns the number of items moved (0 when nothing was
        owned or the destination never confirmed).
        """
        history, datasets = self.store.extract_device_data(devices)
        items = sum(len(points) for points in history.values()) + sum(
            len(records)
            for clusters in datasets.values()
            for records in clusters.values()
        )
        if items == 0:
            return 0
        conversation = "migrate-%s-%d" % (self.name, next(self._migration_seq))
        yield self.host.disk.use(0.5 * items, label="rebalance")
        self.send_reliable(ACLMessage(
            Performative.REQUEST,
            sender=self.name,
            receiver=target_agent_name,
            content={"op": "migrate-in", "history": history,
                     "datasets": datasets},
            conversation_id=conversation,
            size_units=0.5 * items,
        ))
        reply = yield from self.receive(
            MessageTemplate(performative=Performative.CONFIRM,
                            conversation_id=conversation),
            timeout=timeout,
        )
        if reply is None:
            return 0  # unconfirmed: keep our copy (no silent loss)
        self.store.drop_device_data(devices)
        self.migrations_out += 1
        self.items_migrated_out += items
        return items


def new_dataset_id(prefix="ds"):
    """A process-wide unique dataset identifier."""
    return "%s-%d" % (prefix, next(_dataset_counter))


_dataset_counter = itertools.count(1)
