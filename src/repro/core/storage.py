"""Management-data storage: indexed history, datasets and the storage agent.

The classifier grid's output lands here: parsed records are persisted
(paying the Table 1 "Storing" cost on the storage host), indexed by
(device, metric) into a history that level-2 analyses consult as
*baselines*, and grouped into *datasets* of *clusters* ready for
distribution to analyzer containers.

:class:`StorageAgent` exposes the store over ACL for analyzers on other
hosts; fetch messages are sized so an analyzer's network ledger matches
Table 1's inference network cost (see :class:`~repro.core.costs.CostModel`).
"""

import itertools

from repro.agents.acl import MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.core.costs import DEFAULT_COST_MODEL, TaskKind


class ManagementDataStore:
    """Record persistence + history index + dataset registry on one host."""

    def __init__(self, host, cost_model=None):
        self.host = host
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self._history = {}   # (device, metric, instance) -> [(time, value)]
        self._datasets = {}  # dataset_id -> {cluster_key: [records]}
        self.records_stored = 0
        self.fetches_served = 0

    # -- persistence (process generators charging Table 1 costs) ----------

    def store_records(self, records, dataset_id=None, cluster_of=None):
        """Persist records (process generator charging STORE per record).

        Args:
            records: iterable of parsed :class:`ManagementRecord`.
            dataset_id: when given, records are also grouped into that
                dataset under ``cluster_of(record)`` keys.
            cluster_of: callable record -> cluster key (defaults to the
                record's metric group).
        """
        records = list(records)
        if not records:
            return 0
        store_cost = self.cost_model.store_cost()
        if cluster_of is None:
            cluster_of = lambda record: record.group
        for record in records:
            if store_cost.cpu:
                yield self.host.cpu.use(store_cost.cpu, label="store")
            if store_cost.disk:
                yield self.host.disk.use(store_cost.disk, label="store")
            self._index(record)
            if dataset_id is not None:
                clusters = self._datasets.setdefault(dataset_id, {})
                clusters.setdefault(cluster_of(record), []).append(record)
            self.records_stored += 1
        return len(records)

    def _index(self, record):
        for sample in record.samples:
            if not isinstance(sample.value, (int, float)):
                continue
            key = (sample.device, sample.metric, sample.instance)
            self._history.setdefault(key, []).append((sample.time, sample.value))

    # -- dataset access -----------------------------------------------------

    def dataset_ids(self):
        return sorted(self._datasets)

    def clusters_of(self, dataset_id):
        return sorted(self._datasets.get(dataset_id, ()))

    def fetch_cluster(self, dataset_id, cluster):
        """Records of one cluster (no cost here; agents charge transfers)."""
        self.fetches_served += 1
        return list(self._datasets.get(dataset_id, {}).get(cluster, ()))

    def dataset_size(self, dataset_id):
        clusters = self._datasets.get(dataset_id, {})
        return sum(len(records) for records in clusters.values())

    def drop_dataset(self, dataset_id):
        self._datasets.pop(dataset_id, None)

    # -- history / baselines ---------------------------------------------------

    def history(self, device, metric, instance=None):
        return list(self._history.get((device, metric, instance), ()))

    def baseline(self, device, metric, instance=None, exclude_after=None):
        """Mean/max baseline for a series, or None when no history.

        ``exclude_after`` drops observations newer than the given time so a
        level-2 analysis can compare "now" against "before".
        """
        points = self._history.get((device, metric, instance))
        if not points:
            return None
        values = [
            value for time, value in points
            if exclude_after is None or time <= exclude_after
        ]
        if not values:
            return None
        return {
            "device": device,
            "metric": metric,
            "instance": instance,
            "mean": sum(values) / len(values),
            "maximum": max(values),
            "count": len(values),
        }

    def baselines_for_records(self, records, exclude_after=None):
        """Baselines for every (device, metric, instance) in ``records``."""
        seen = set()
        baselines = []
        for record in records:
            for sample in record.samples:
                key = (sample.device, sample.metric, sample.instance)
                if key in seen:
                    continue
                seen.add(key)
                baseline = self.baseline(*key, exclude_after=exclude_after)
                if baseline is not None:
                    baselines.append(baseline)
        return baselines

    def summary(self):
        return {
            "records_stored": self.records_stored,
            "series": len(self._history),
            "datasets": len(self._datasets),
            "fetches_served": self.fetches_served,
        }

    def __repr__(self):
        return "ManagementDataStore(@%s, records=%d)" % (
            self.host.name, self.records_stored,
        )


class StorageAgent(Agent):
    """Serves a :class:`ManagementDataStore` over ACL.

    Understood QUERY_REF operations (content dicts):

    * ``{"op": "fetch-cluster", "dataset": ..., "cluster": ...}`` --
      replies INFORM with ``{"records": [...], "baselines": [...]}``,
      reply sized ``fetch_reply_size`` per record.
    * ``{"op": "fetch-summary", "dataset": ...}`` -- replies INFORM with
      the per-device problem-relevant summary for cross-inference, sized
      ``cross_reply_size``.

    REQUEST operation:

    * ``{"op": "store-batch", "records": [...], "dataset": ...}`` --
      persists records, replies CONFIRM.
    """

    def __init__(self, name, store):
        super().__init__(name)
        self.store = store
        self.queries_answered = 0

    @property
    def cost_model(self):
        return self.store.cost_model

    def setup(self):
        agent = self

        class Serve(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.QUERY_REF))
                if message is not None:
                    yield from agent._answer_query(message)

        class StoreBatches(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    performative=Performative.REQUEST))
                if message is not None:
                    yield from agent._store_batch(message)

        self.add_behaviour(Serve("serve-queries"))
        self.add_behaviour(StoreBatches("store-batches"))

    # -- handlers -----------------------------------------------------------

    def _answer_query(self, message):
        content = message.content
        operation = content.get("op")
        if operation == "fetch-cluster":
            records = self.store.fetch_cluster(content["dataset"], content["cluster"])
            # Baselines describe history *before* the batch under analysis;
            # including the batch itself would dilute every trend/surge
            # comparison toward 1.0.
            cutoff = None
            if records:
                cutoff = min(record.collected_at for record in records) - 1e-9
            baselines = self.store.baselines_for_records(
                records, exclude_after=cutoff)
            small_read = 0.5 * max(1, len(records))
            yield self.host.disk.use(small_read, label="fetch")
            self.queries_answered += 1
            # Fetch replies ride the reliable channel (when installed): a
            # lost reply is indistinguishable from a slow one to the
            # analyzer, and the retry it triggers re-reads the store.
            self.reply_to(
                message, Performative.INFORM,
                content={"records": records, "baselines": baselines},
                size_units=self.cost_model.fetch_reply_size * max(1, len(records)),
                reliable=True,
            )
        elif operation == "fetch-summary":
            dataset_id = content["dataset"]
            summary = {
                "dataset": dataset_id,
                "record_count": self.store.dataset_size(dataset_id),
                "clusters": self.store.clusters_of(dataset_id),
                "store": self.store.summary(),
            }
            yield self.host.disk.use(1.0, label="fetch")
            self.queries_answered += 1
            self.reply_to(
                message, Performative.INFORM, content=summary,
                size_units=self.cost_model.cross_reply_size,
                reliable=True,
            )
        else:
            self.reply_to(
                message, Performative.NOT_UNDERSTOOD,
                content={"reason": "unknown op %r" % operation},
            )

    def _store_batch(self, message):
        content = message.content
        if content.get("op") != "store-batch":
            self.reply_to(
                message, Performative.NOT_UNDERSTOOD,
                content={"reason": "unknown op"},
            )
            return
        records = content["records"]
        stored = yield from self.store.store_records(
            records, dataset_id=content.get("dataset"),
            cluster_of=content.get("cluster_of"),
        )
        self.reply_to(
            message, Performative.CONFIRM, content={"stored": stored},
        )


def new_dataset_id(prefix="ds"):
    """A process-wide unique dataset identifier."""
    return "%s-%d" % (prefix, next(_dataset_counter))


_dataset_counter = itertools.count(1)
