"""The facade: build and run a full agent-grid management deployment.

:class:`GridTopologySpec` describes a deployment (devices, collector /
analysis / storage / interface hosts, policy, clustering);
:class:`GridManagementSystem` instantiates everything -- simulator,
network, SNMP devices, agent platform, the four grids -- wires Figure 2's
data flow, and exposes run/report helpers used by examples, benches and
the Figure 6 driver.
"""

from repro.agents.platform import AgentPlatform
from repro.core.classifier import ClassifierAgent
from repro.core.collector import CollectorAgent
from repro.core.costs import DEFAULT_COST_MODEL
from repro.core.interface import InterfaceAgent
from repro.core.loadbalance import make_policy
from repro.core.processor import AnalyzerAgent, ProcessorRootAgent
from repro.core.records import CollectionGoal
from repro.core.sharding import moved_keys as _moved_keys
from repro.core.storage import ManagementDataStore, StorageAgent
from repro.network.topology import Network
from repro.network.transport import Transport
from repro.rules.stdlib import standard_knowledge_base
from repro.simkernel.simulator import Simulator
from repro.snmp.device import ManagedDevice, PROFILES
from repro.snmp.engine import SnmpEngine


class DeviceSpec:
    """One managed device in the deployment."""

    def __init__(self, name, profile="server", site="site1"):
        self.name = name
        self.profile = profile
        self.site = site

    def __repr__(self):
        return "DeviceSpec(%r, %s @ %s)" % (self.name, self.profile, self.site)


class HostSpec:
    """One management host in the deployment."""

    def __init__(self, name, site="site1", cpu_capacity=10.0,
                 disk_capacity=10.0, net_capacity=10.0, knowledge=()):
        self.name = name
        self.site = site
        self.cpu_capacity = cpu_capacity
        self.disk_capacity = disk_capacity
        self.net_capacity = net_capacity
        self.knowledge = tuple(knowledge)

    def __repr__(self):
        return "HostSpec(%r @ %s)" % (self.name, self.site)


class GridTopologySpec:
    """Everything needed to build a grid deployment.

    Args:
        devices: list of :class:`DeviceSpec`.
        collector_hosts / analysis_hosts: lists of :class:`HostSpec`.
        storage_host / interface_host: single :class:`HostSpec` each.
        policy: placement-policy name (see
            :func:`repro.core.loadbalance.make_policy`).
        cluster_strategy: classifier clustering
            ("by-group" / "by-device" / "by-site" or a callable).
        dataset_threshold: records per dataset before the classifier
            notifies the processor grid.
        cost_model: Table 1 :class:`~repro.core.costs.CostModel`.
        seed: master random seed.
        knowledge_base_factory: zero-arg callable producing each analyzer's
            knowledge base (defaults to the stock rule base).
        job_timeout: processor-grid job re-dispatch timeout.
        fetch_timeout: analyzer per-*attempt* base patience for storage
            fetches.  Defaults to ``job_timeout / (2 * (fetch_retries +
            1))`` so the whole retry ladder fits inside half the job
            window; validated so that ``fetch_timeout * (fetch_retries +
            1) < job_timeout`` -- a fetch ladder that outlives the job
            would only ever feed the Reaper.
        fetch_retries: extra fetch attempts per query after a timeout
            (default 2).
        enable_cross: run level-3 cross analysis per dataset.
        device_tick: device metric-dynamics period.
        reliability: ``False`` (default) keeps the plain transport;
            ``True`` installs a :class:`~repro.network.reliable.ReliableChannel`
            (ack + retransmit + dedup) under the platform's critical sends;
            a dict supplies channel keyword arguments (ack_timeout, backoff,
            max_attempts, ...).
        heartbeat_interval: analyzer liveness-beacon period (``None``
            disables heartbeating).
        heartbeat_timeout: root-side silence threshold before a container
            is evicted; defaults to 4x the interval when heartbeating is on.
        telemetry: ``False`` (default) runs with zero tracing state;
            ``True`` installs a
            :class:`~repro.simkernel.telemetry.Telemetry` flight recorder
            (causal spans through the whole pipeline + a session metric
            registry); a dict supplies its keyword arguments
            (``capacity``, ``profile``).  Telemetry is passive -- the
            simulation's behaviour and outputs are identical either way.
        gossip: ``False`` (default) builds no mesh -- zero behaviours,
            events or messages, preserving byte-identical paper runs.
            ``True`` installs a :class:`~repro.core.gossip.GossipMesh`:
            analyzer containers exchange SWIM-style suspicion digests so
            failure detection survives the loss of the root host
            (split-brain), elect a stand-in dispatcher for results that
            would be lost against the dead root, and reconcile on heal.
            A dict supplies mesh keyword arguments (``interval``,
            ``suspect_after``, ``confirm_after``).
        slos: iterable of :class:`~repro.core.health.SLOSpec` latency
            objectives.  Declaring any builds a
            :class:`~repro.core.health.HealthMonitor` (and implies
            ``telemetry=True``): per-stage streaming histograms,
            multi-window burn-rate alerting (``slo-burn`` findings
            through the ordinary report/alert path) and green /
            degraded / red scorecards.  Unlike telemetry, the monitor
            is *active* (its checker ticks and its findings travel the
            network), so leave it unset for byte-identical paper runs.
        shards: number of classifier/storage shards.  1 (default) is the
            paper reproduction, byte-identical to the unsharded code
            path.  Above 1, the grid partitions by consistent hash of
            the device key (see :mod:`repro.core.sharding`): shard 0
            keeps ``storage_host`` and the historical component names,
            every further shard gets a derived host
            (``<storage_host>-s<i>``) with its own storage/classifier
            lane, collectors route each record to its owner shard,
            level-2 analysis is shard-local and level-3 correlation
            scatter-gathers across shards.
        shard_vnodes: virtual nodes per shard on the hash ring.
        scatter_window: barrier timeout for gathering one finished
            dataset per shard before the cross job dispatches anyway.
        scatter_fanout: max concurrent per-shard summary fetches inside
            one scatter-gather cross job.
        lazy_devices: ``None`` (default) resolves to ``shards > 1``:
            sharded big-topology runs replay device dynamics on demand
            (zero kernel events for idle devices) while the unsharded
            reproduction keeps the eager per-device processes.  Pass
            True/False to force either mode.
    """

    def __init__(
        self,
        devices,
        collector_hosts,
        analysis_hosts,
        storage_host,
        interface_host,
        policy="knowledge",
        cluster_strategy="by-group",
        dataset_threshold=6,
        cost_model=None,
        seed=0,
        knowledge_base_factory=None,
        job_timeout=60.0,
        fetch_timeout=None,
        fetch_retries=2,
        enable_cross=True,
        device_tick=1.0,
        collector_parse_locally=True,
        shipping_protocol=None,
        wan=None,
        reliability=False,
        heartbeat_interval=None,
        heartbeat_timeout=None,
        telemetry=False,
        gossip=False,
        slos=(),
        shards=1,
        shard_vnodes=64,
        scatter_window=10.0,
        scatter_fanout=4,
        lazy_devices=None,
    ):
        if not devices:
            raise ValueError("at least one device is required")
        if not collector_hosts:
            raise ValueError("at least one collector host is required")
        if not analysis_hosts:
            raise ValueError("at least one analysis host is required")
        self.devices = list(devices)
        self.collector_hosts = list(collector_hosts)
        self.analysis_hosts = list(analysis_hosts)
        self.storage_host = storage_host
        self.interface_host = interface_host
        self.policy = policy
        self.cluster_strategy = cluster_strategy
        self.dataset_threshold = dataset_threshold
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.seed = seed
        self.knowledge_base_factory = (
            knowledge_base_factory if knowledge_base_factory is not None
            else standard_knowledge_base
        )
        self.job_timeout = job_timeout
        if fetch_retries < 0:
            raise ValueError("fetch_retries must be >= 0")
        self.fetch_retries = int(fetch_retries)
        if fetch_timeout is None:
            fetch_timeout = job_timeout / (2.0 * (self.fetch_retries + 1))
        if fetch_timeout <= 0:
            raise ValueError("fetch_timeout must be positive")
        if fetch_timeout * (self.fetch_retries + 1) >= job_timeout:
            raise ValueError(
                "fetch_timeout (%g) x %d attempts must stay below "
                "job_timeout (%g); a fetch ladder that outlives the job "
                "only feeds re-dispatch" % (
                    fetch_timeout, self.fetch_retries + 1, job_timeout))
        self.fetch_timeout = fetch_timeout
        self.enable_cross = enable_cross
        self.device_tick = device_tick
        self.collector_parse_locally = collector_parse_locally
        # Collector->classifier batch protocol ("http"/"smtp" or a
        # ProtocolSpec); the paper ships "through any existing protocol
        # such as SMTP or HTTP".
        if shipping_protocol is None:
            from repro.network.protocols import HTTP
            shipping_protocol = HTTP
        elif isinstance(shipping_protocol, str):
            from repro.network.protocols import protocol_overhead
            shipping_protocol = protocol_overhead(shipping_protocol)
        self.shipping_protocol = shipping_protocol
        self.wan = wan  # LinkSpec for cross-site traffic (None = default)
        self.reliability = reliability
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval is not None:
            heartbeat_timeout = 4.0 * heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.telemetry = telemetry
        self.gossip = gossip
        # SLOs need the span feed; declaring any implies telemetry.
        self.slos = tuple(slos)
        if self.slos and not self.telemetry:
            self.telemetry = True
        if int(shards) != shards or shards < 1:
            raise ValueError("shards must be a positive integer")
        if shard_vnodes < 1:
            raise ValueError("shard_vnodes must be >= 1")
        if scatter_window <= 0:
            raise ValueError("scatter_window must be positive")
        if scatter_fanout < 1:
            raise ValueError("scatter_fanout must be >= 1")
        self.shards = int(shards)
        self.shard_vnodes = int(shard_vnodes)
        self.scatter_window = scatter_window
        self.scatter_fanout = int(scatter_fanout)
        self.lazy_devices = (
            self.shards > 1 if lazy_devices is None else bool(lazy_devices)
        )

    @classmethod
    def paper_figure6c(cls, seed=0, **overrides):
        """The paper's Figure 6(c) deployment: 3 collectors, 1 storage host,
        2 inference hosts, 3 managed devices."""
        parameters = dict(
            devices=[
                DeviceSpec("dev1", "server", "site1"),
                DeviceSpec("dev2", "router", "site1"),
                DeviceSpec("dev3", "server", "site1"),
            ],
            collector_hosts=[
                HostSpec("collector1", "site1"),
                HostSpec("collector2", "site1"),
                HostSpec("collector3", "site1"),
            ],
            analysis_hosts=[
                HostSpec("inference1", "site1"),
                HostSpec("inference2", "site1"),
            ],
            storage_host=HostSpec("storage1", "site1"),
            interface_host=HostSpec("interface1", "site1"),
            seed=seed,
        )
        parameters.update(overrides)
        return cls(**parameters)

    def __repr__(self):
        return "GridTopologySpec(devices=%d, collectors=%d, analyzers=%d)" % (
            len(self.devices), len(self.collector_hosts), len(self.analysis_hosts),
        )


class GridManagementSystem:
    """A fully wired agent-grid management deployment."""

    def __init__(self, spec):
        self.spec = spec
        self.cost_model = spec.cost_model
        self.sim = Simulator(seed=spec.seed)
        self.network = Network(self.sim, wan=spec.wan)
        self.transport = Transport(self.network)
        self.telemetry = None
        if spec.telemetry:
            from repro.simkernel.telemetry import Telemetry

            telemetry_kwargs = (
                dict(spec.telemetry) if isinstance(spec.telemetry, dict)
                else {}
            )
            self.telemetry = Telemetry(self.sim, **telemetry_kwargs)
        self.reliable_channel = None
        if spec.reliability:
            from repro.network.reliable import ReliableChannel

            channel_kwargs = (
                dict(spec.reliability) if isinstance(spec.reliability, dict)
                else {}
            )
            if self.telemetry is not None:
                channel_kwargs.setdefault("metrics", self.telemetry.registry)
                channel_kwargs.setdefault("metric_labels", {"grid": "network"})
            self.reliable_channel = ReliableChannel(
                self.transport, **channel_kwargs)
        self.platform = AgentPlatform(
            self.sim, self.network, self.transport,
            reliable_channel=self.reliable_channel,
            telemetry=self.telemetry,
        )
        self.devices = {}
        self.device_engines = {}
        self.collectors = []
        self.analyzers = []
        self.rebalances = 0
        self.records_rebalanced = 0
        self._build_devices()
        self._build_storage_and_classifier()
        self._build_interface()
        self._build_processor_grid()
        self._build_collector_grid()
        # The gossip mesh is strictly opt-in: when the spec leaves it off,
        # no behaviours, events or messages exist (byte-identity contract,
        # pinned by the figure-6 double-run test).
        self.gossip = None
        if spec.gossip:
            from repro.core.gossip import GossipMesh

            gossip_kwargs = (
                dict(spec.gossip) if isinstance(spec.gossip, dict) else {}
            )
            self.gossip = GossipMesh(
                self.root, self.analyzers, **gossip_kwargs)
        if self.telemetry is not None:
            self._wire_telemetry()
        # The health layer only exists when SLOs are declared: its checker
        # process schedules real events (and its findings travel the real
        # network), so an always-on monitor would break the telemetry
        # passivity contract pinned by tests/test_telemetry.py.
        self.health = None
        if spec.slos:
            from repro.core.health import HealthMonitor

            self.health = HealthMonitor(self, spec.slos).attach()

    # -- construction ----------------------------------------------------

    def _build_devices(self):
        for device_spec in self.spec.devices:
            host = self.network.add_host(
                device_spec.name, device_spec.site, role="device",
            )
            device = ManagedDevice(
                self.sim, host, profile=device_spec.profile,
                tick=self.spec.device_tick,
                lazy=self.spec.lazy_devices,
            )
            self.devices[device_spec.name] = device
            self.device_engines[device_spec.name] = SnmpEngine(
                device, self.transport,
            )

    def _add_management_host(self, host_spec, role):
        """Create the host, or reuse it when another grid role co-locates.

        Co-location is how the baseline architectures are expressed: the
        centralized model puts every role on one "manager" host, the
        multi-agent model co-locates storage/analysis/interface there while
        keeping separate collector hosts.
        """
        if host_spec.name in self.network.hosts:
            host = self.network.host(host_spec.name)
            if host.role != role:
                host.role = "manager"  # multiple roles = a manager station
            return host
        return self.network.add_host(
            host_spec.name, host_spec.site, role=role,
            cpu_capacity=host_spec.cpu_capacity,
            disk_capacity=host_spec.disk_capacity,
            net_capacity=host_spec.net_capacity,
        )

    def _shard_host_spec(self, index):
        """Shard 0 is the spec's storage host; others derive from it."""
        base = self.spec.storage_host
        if index == 0:
            return base
        return HostSpec(
            "%s-s%d" % (base.name, index), site=base.site,
            cpu_capacity=base.cpu_capacity, disk_capacity=base.disk_capacity,
            net_capacity=base.net_capacity, knowledge=base.knowledge,
        )

    def _build_shard(self, index, host_spec):
        """Build one classifier/storage lane (container + store + agents)."""
        host = self._add_management_host(host_spec, "storage")
        container_name = (
            "storage-container" if index == 0 else "storage-container-s%d" % index
        )
        container = self.platform.create_container(
            container_name, host, services=("storage", "classification"),
        )
        store = ManagementDataStore(host, self.cost_model)
        storage_agent = StorageAgent("storage@" + host.name, store)
        container.deploy(storage_agent)
        classifier = ClassifierAgent(
            "classifier" if index == 0 else "classifier-s%d" % index,
            store=store,
            processor_name="pg-root",
            cost_model=self.cost_model,
            cluster_strategy=self.spec.cluster_strategy,
            dataset_threshold=self.spec.dataset_threshold,
            external_flush=self.spec.shards > 1,
        )
        container.deploy(classifier)
        self.shard_hosts.append(host)
        self.storage_containers.append(container)
        self.stores.append(store)
        self.storage_agents.append(storage_agent)
        self.classifiers.append(classifier)
        self._store_by_host[host.name] = store
        self._storage_agent_by_host[host.name] = storage_agent
        self._classifier_by_host[host.name] = classifier.name
        return host, container, store, storage_agent, classifier

    def _build_storage_and_classifier(self):
        self.shard_hosts = []
        self.storage_containers = []
        self.stores = []
        self.storage_agents = []
        self.classifiers = []
        self._store_by_host = {}
        self._storage_agent_by_host = {}
        self._classifier_by_host = {}
        for index in range(self.spec.shards):
            self._build_shard(index, self._shard_host_spec(index))
        # Shard-0 aliases keep the historical single-lane API (and every
        # test/example written against it) working unchanged.
        self.storage_container = self.storage_containers[0]
        self.store = self.stores[0]
        self.storage_agent = self.storage_agents[0]
        self.classifier = self.classifiers[0]
        self.ring = None
        self._flush_mux = None
        if self.spec.shards > 1:
            from repro.agents.behaviours import MultiplexedTickerBehaviour
            from repro.core.sharding import HashRing

            self.ring = HashRing(
                (host.name for host in self.shard_hosts),
                vnodes=self.spec.shard_vnodes,
            )
            # One coalesced watchdog flushes every shard classifier's
            # stale dataset: N shards cost one timer event per period
            # instead of N mailbox-timeout wakeups.
            self._flush_mux = MultiplexedTickerBehaviour(
                period=self.classifier.flush_timeout, name="shard-flush",
            )
            for classifier in self.classifiers:
                self._flush_mux.add_callback(classifier._flush_if_stale)
            self.classifier.add_behaviour(self._flush_mux)

    def _build_interface(self):
        host = self._add_management_host(self.spec.interface_host, "interface")
        self.interface_container = self.platform.create_container(
            "interface-container", host, services=("interface",),
        )
        self.interface = InterfaceAgent("interface")
        self.interface_container.deploy(self.interface)

    def _build_processor_grid(self):
        # The root is co-located with storage (it is a broker, not a worker).
        self.root = ProcessorRootAgent(
            "pg-root",
            storage_agent_name=self.storage_agent.name,
            interface_name=self.interface.name,
            policy=make_policy(self.spec.policy),
            cost_model=self.cost_model,
            job_timeout=self.spec.job_timeout,
            enable_cross=self.spec.enable_cross,
            heartbeat_timeout=self.spec.heartbeat_timeout,
            scatter_shards=self.spec.shards,
            scatter_window=self.spec.scatter_window,
        )
        self.storage_container.deploy(self.root)
        self.analysis_containers = []
        for index, host_spec in enumerate(self.spec.analysis_hosts):
            host = self._add_management_host(host_spec, "analysis")
            container = self.platform.create_container(
                "analysis-%d" % (index + 1), host,
                services=("analysis",), knowledge=host_spec.knowledge,
            )
            self.analysis_containers.append(container)
            analyzer = AnalyzerAgent(
                "analyzer-%d" % (index + 1),
                root_name=self.root.name,
                knowledge_base=self.spec.knowledge_base_factory(),
                cost_model=self.cost_model,
                heartbeat_interval=self.spec.heartbeat_interval,
                fetch_timeout=self.spec.fetch_timeout,
                fetch_retries=self.spec.fetch_retries,
                scatter_fanout=self.spec.scatter_fanout,
            )
            container.deploy(analyzer)
            self.analyzers.append(analyzer)

    def _classifier_router(self):
        """Record -> shard classifier routing closure (None unsharded).

        Reads the *live* ring on every lookup, so shard join/leave
        reroutes new records without touching the collectors.
        """
        if self.ring is None:
            return None
        ring = self.ring
        classifier_by_host = self._classifier_by_host

        def route(record):
            return classifier_by_host[ring.lookup(record.shard_key())]

        return route

    def _build_collector_grid(self):
        device_specs = {
            name: (device.profile.interface_count, device.profile.process_slots)
            for name, device in self.devices.items()
        }
        classifier_router = self._classifier_router()
        self.collector_containers = []
        for index, host_spec in enumerate(self.spec.collector_hosts):
            host = self._add_management_host(host_spec, "collector")
            container = self.platform.create_container(
                "collector-%d" % (index + 1), host, services=("collection",),
            )
            self.collector_containers.append(container)
            collector = CollectorAgent(
                "collector-%d" % (index + 1),
                goals=[],
                classifier_name=self.classifier.name,
                cost_model=self.cost_model,
                parse_locally=self.spec.collector_parse_locally,
                device_specs=device_specs,
                protocol=self.spec.shipping_protocol,
                classifier_router=classifier_router,
            )
            container.deploy(collector)
            self.collectors.append(collector)

    # -- telemetry ---------------------------------------------------------

    def _wire_telemetry(self):
        """Hook the flight recorder into the deployment.

        Two jobs: terminate in-flight spans when the reliable channel
        gives up on an envelope (so no batch ever vanishes from the trace
        tree without an explicit ``dead-letter`` status), and register
        every component's counters as labelled metric sources for unified
        snapshots.
        """
        from repro.simkernel.telemetry import wire_channel_tracing

        if self.reliable_channel is not None:
            wire_channel_tracing(self.telemetry.recorder,
                                 self.reliable_channel)
        telemetry = self.telemetry
        for collector in self.collectors:
            telemetry.register_source(
                lambda c=collector: {
                    "polls_completed": c.polls_completed,
                    "polls_failed": c.polls_failed,
                    "poll_retries_used": c.poll_retries_used,
                    "records_shipped": c.records_shipped,
                    "messages_sent": c.messages_sent,
                    "messages_received": c.messages_received,
                },
                grid="collector", host=collector.host.name,
                agent=collector.name,
            )
        for classifier in self.classifiers:
            telemetry.register_source(
                lambda c=classifier: {
                    "records_classified": c.records_classified,
                    "datasets_published": c.datasets_published,
                    "messages_sent": c.messages_sent,
                    "messages_received": c.messages_received,
                },
                grid="classifier", host=classifier.host.name,
                agent=classifier.name,
            )
        root = self.root
        telemetry.register_source(
            lambda: {
                "jobs_dispatched": root.jobs_dispatched,
                "jobs_redispatched": root.jobs_redispatched,
                "jobs_abandoned": root.jobs_abandoned,
                "reports_issued": root.reports_issued,
                "heartbeats_received": root.heartbeats_received,
                "containers_evicted": root.containers_evicted,
                "containers_recovered": root.containers_recovered,
                "duplicate_results": root.duplicate_results,
            },
            grid="processor", host=root.host.name, agent=root.name,
        )
        if self.gossip is not None:
            telemetry.register_source(
                self.gossip.stats, grid="processor", agent="gossip-mesh",
            )
        for analyzer in self.analyzers:
            telemetry.register_source(
                lambda a=analyzer: {
                    "jobs_completed": a.jobs_completed,
                    "records_analyzed": a.records_analyzed,
                    "rules_fired": a.rules_fired,
                    "heartbeats_sent": a.heartbeats_sent,
                    "fetch_attempts": a.fetch_attempts,
                    "fetch_retries_used": a.fetch_retries_used,
                    "fetch_failures": a.fetch_failures,
                },
                grid="processor", host=analyzer.host.name,
                agent=analyzer.name,
            )
        interface = self.interface
        telemetry.register_source(
            lambda: {
                "reports": len(interface.reports),
                "alerts": len(interface.alerts),
            },
            grid="interface", host=interface.host.name,
            agent=interface.name,
        )
        if self.ring is not None:
            registry = telemetry.registry
            system = self

            def _shard_metrics():
                # Supplier with a side effect: refresh the per-shard
                # labelled gauges at snapshot time, then report the
                # scalar shard health counters as its own source dict.
                for index, store in enumerate(system.stores):
                    registry.gauge(
                        "shard.records", {"shard": str(index)},
                    ).set(store.records_stored)
                registry.gauge("shard.scatter_fanout").set(
                    system.root.last_scatter_fanout)
                return {
                    "shards": len(system.ring),
                    "scatter_rounds": system.root.scatter_rounds,
                    "scatter_fanout_total": system.root.scatter_fanout_total,
                    "rebalances": system.rebalances,
                    "records_rebalanced": system.records_rebalanced,
                }

            telemetry.register_source(_shard_metrics, grid="storage")
        telemetry.register_source(self.platform.stats, grid="platform")
        telemetry.register_source(self.transport.stats, grid="network")
        if self.reliable_channel is not None:
            telemetry.register_source(
                self.reliable_channel.stats, grid="network",
                agent="reliable-channel",
            )

    # -- shard membership (sharded deployments only) -----------------------

    def add_storage_shard(self, host_spec=None):
        """Join a new shard: build its lane, extend the ring, rebalance.

        Minimal-remap rebalance: ownership is snapshotted over every
        device before and after the ring change and only the devices
        whose owner changed migrate (about ``1/n`` of them).  New records
        route to the new shard immediately (the collectors' router reads
        the live ring); existing records transfer in the background via
        the copy -> CONFIRM -> drop protocol, so an interrupted transfer
        leaves the source copy authoritative -- never a silent loss.

        Returns the new shard's classifier/storage lane as a
        ``(host, storage_agent, classifier)`` tuple.
        """
        if self.ring is None:
            raise RuntimeError(
                "sharding is off (spec.shards == 1); build with shards >= 2 "
                "before growing the ring")
        index = len(self.shard_hosts)
        if host_spec is None:
            host_spec = self._shard_host_spec(index)
        device_names = sorted(self.devices)
        before = self.ring.owners(device_names)
        host, _, _, storage_agent, classifier = self._build_shard(
            index, host_spec)
        self.ring.add_node(host.name)
        self._flush_mux.add_callback(classifier._flush_if_stale)
        # The level-3 barrier now waits for the new shard's datasets too.
        self.root.scatter_shards += 1
        after = self.ring.owners(device_names)
        self._start_rebalance(_moved_keys(before, after))
        return host, storage_agent, classifier

    def remove_storage_shard(self, host_name):
        """Gracefully leave the ring: reroute new records, migrate out.

        The lane's container and agents stay alive to drain -- in-flight
        batches still classify and its datasets still serve fetches --
        but the router stops sending it new records and the rebalance
        migrates its owned devices to their new ring owners.
        """
        if self.ring is None:
            raise RuntimeError("sharding is off (spec.shards == 1)")
        if host_name not in self.ring:
            raise ValueError("host %r is not a shard" % host_name)
        if len(self.ring) <= 1:
            raise ValueError("cannot remove the last shard")
        device_names = sorted(self.devices)
        before = self.ring.owners(device_names)
        self.ring.remove_node(host_name)
        self.root.scatter_shards = max(1, self.root.scatter_shards - 1)
        after = self.ring.owners(device_names)
        self._start_rebalance(_moved_keys(before, after))

    def _start_rebalance(self, moved):
        if moved:
            self.sim.spawn(self._rebalance(moved), name="shard-rebalance")

    def _rebalance(self, moved):
        """Transfer moved devices' records shard-to-shard (process).

        Transfers group by (source, destination) pair so each pair moves
        in one reliable REQUEST; every batch follows the storage agents'
        copy -> CONFIRM -> drop protocol (see
        :meth:`repro.core.storage.StorageAgent.migrate_devices`).
        """
        transfers = {}
        for device, (old_owner, new_owner) in sorted(moved.items()):
            transfers.setdefault((old_owner, new_owner), []).append(device)
        total = 0
        for (old_owner, new_owner), device_names in sorted(transfers.items()):
            source = self._storage_agent_by_host.get(old_owner)
            target = self._storage_agent_by_host.get(new_owner)
            if source is None or target is None:
                continue
            total += yield from source.migrate_devices(
                device_names, target.name)
        self.rebalances += 1
        self.records_rebalanced += total
        if self.telemetry is not None:
            self.telemetry.registry.counter("shard.rebalanced").inc(
                max(0, total))

    # -- goal assignment -------------------------------------------------------

    def assign_goals(self, goals):
        """Distribute goals round-robin across collector agents."""
        for index, goal in enumerate(goals):
            self.collectors[index % len(self.collectors)].add_goal(goal)

    def make_paper_goals(self, polls_per_type=10, interval=1.0, stagger=0.1):
        """The paper's workload: N requests of each type, spread over devices.

        Request *i* of type *t* polls device ``i mod len(devices)``;
        consecutive polls from one goal are spaced by ``interval`` and
        goals start staggered so arrivals interleave.
        """
        device_names = sorted(self.devices)
        goals = []
        for type_index, request_type in enumerate(("A", "B", "C")):
            for poll_index in range(polls_per_type):
                device = device_names[poll_index % len(device_names)]
                goals.append(CollectionGoal(
                    device, request_type, count=1, interval=interval,
                    start_after=stagger * (poll_index * 3 + type_index),
                ))
        return goals

    # -- running ------------------------------------------------------------------

    def run(self, until=200.0):
        """Advance the simulation (device dynamics run forever; bound it)."""
        return self.sim.run(until=until)

    def run_until_reports(self, count, timeout=600.0, settle=1.0):
        """Run until the interface holds ``count`` reports (or timeout).

        Returns True when the reports arrived.  ``settle`` extra seconds are
        simulated afterwards so in-flight accounting completes.
        """
        event = self.interface.reports_event(count)
        deadline = self.sim.now + timeout
        while not event.triggered and self.sim.now < deadline:
            step_until = min(deadline, self.sim.now + 5.0)
            self.sim.run(until=step_until)
        if event.triggered and settle > 0:
            self.sim.run(until=self.sim.now + settle)
        return event.triggered

    def run_until_records(self, total, timeout=600.0, settle=1.0):
        """Run until ``total`` records have been analyzed and reported.

        Robust against the classifier splitting the workload into any
        number of datasets (threshold closes *and* quiet-time flushes).
        Returns True when every record made it through analysis.
        """

        def analyzed():
            return sum(r.records_analyzed for r in self.interface.reports)

        deadline = self.sim.now + timeout
        while analyzed() < total and self.sim.now < deadline:
            self.sim.run(until=min(deadline, self.sim.now + 5.0))
        if analyzed() >= total and settle > 0:
            self.sim.run(until=self.sim.now + settle)
        return analyzed() >= total

    def stop_devices(self):
        for device in self.devices.values():
            device.stop()

    # -- reporting ------------------------------------------------------------------

    def management_hosts(self):
        """Hosts whose utilization Figure 6 reports (devices excluded)."""
        return [
            host for host in self.network.hosts.values()
            if host.role != "device"
        ]

    def utilization_report(self, label="grid"):
        from repro.evaluation.accounting import UtilizationReport

        return UtilizationReport.from_hosts(
            label, self.management_hosts(), horizon=self.sim.now,
        )

    def __repr__(self):
        return "GridManagementSystem(%r)" % (self.spec,)
