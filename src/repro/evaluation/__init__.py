"""Evaluation support: utilization accounting, tables, experiment runners."""

from repro.evaluation.accounting import HostUtilization, UtilizationReport
from repro.evaluation.tables import format_table

__all__ = ["HostUtilization", "UtilizationReport", "format_table"]
