"""Per-host resource-utilization accounting (the Figure 6 measurement).

A :class:`UtilizationReport` snapshots the CPU / network / disc ledgers of
a set of hosts.  The paper's Figure 6 plots, per host and per resource, the
relative work accumulated during the scenario; the equivalent here is
*units* (busy units accounted by the resource ledgers), plus busy-time and
utilization fractions against the run horizon.
"""

from repro.evaluation.tables import format_number, format_table
from repro.simkernel.resources import ResourceKind


class HostUtilization:
    """One host's accumulated resource usage."""

    def __init__(self, host_name, role, units, busy_time, horizon):
        self.host_name = host_name
        self.role = role
        self.units = dict(units)          # kind -> units
        self.busy_time = dict(busy_time)  # kind -> seconds busy
        self.horizon = horizon

    @classmethod
    def from_host(cls, host, horizon):
        units = {}
        busy_time = {}
        for resource in host.resources():
            units[resource.kind] = resource.total_units
            busy_time[resource.kind] = resource.busy_time
        return cls(host.name, host.role, units, busy_time, horizon)

    def utilization(self, kind):
        if self.horizon <= 0:
            return 0.0
        return self.busy_time.get(kind, 0.0) / self.horizon

    @property
    def cpu_units(self):
        return self.units.get(ResourceKind.CPU, 0.0)

    @property
    def net_units(self):
        return self.units.get(ResourceKind.NET, 0.0)

    @property
    def disk_units(self):
        return self.units.get(ResourceKind.DISK, 0.0)

    @property
    def total_units(self):
        return sum(self.units.values())

    def __repr__(self):
        return "HostUtilization(%s: cpu=%g, net=%g, disk=%g)" % (
            self.host_name, self.cpu_units, self.net_units, self.disk_units,
        )


class UtilizationReport:
    """Per-host utilization rows for one architecture run."""

    def __init__(self, label, rows, horizon, makespan=None):
        self.label = label
        self.rows = sorted(rows, key=lambda row: row.host_name)
        self.horizon = horizon
        self.makespan = makespan

    @classmethod
    def from_hosts(cls, label, hosts, horizon, makespan=None):
        rows = [HostUtilization.from_host(host, horizon) for host in hosts]
        return cls(label, rows, horizon, makespan)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def host(self, host_name):
        for row in self.rows:
            if row.host_name == host_name:
                return row
        raise KeyError("no host %r in report %s" % (host_name, self.label))

    def host_names(self):
        return [row.host_name for row in self.rows]

    # -- aggregates ------------------------------------------------------

    def total_units(self, kind=None):
        if kind is None:
            return sum(row.total_units for row in self.rows)
        return sum(row.units.get(kind, 0.0) for row in self.rows)

    def max_host(self, kind):
        """(host_name, units) of the heaviest host for a resource kind."""
        if not self.rows:
            return (None, 0.0)
        best = max(self.rows, key=lambda row: (row.units.get(kind, 0.0),
                                               row.host_name))
        return (best.host_name, best.units.get(kind, 0.0))

    def bottleneck(self):
        """The host with the largest total accumulated units."""
        if not self.rows:
            return None
        return max(self.rows, key=lambda row: (row.total_units, row.host_name))

    def max_utilization(self, kind):
        if not self.rows:
            return 0.0
        return max(row.utilization(kind) for row in self.rows)

    def balance_index(self, kind=ResourceKind.CPU):
        """Jain's fairness index over per-host units (1.0 = perfectly even)."""
        values = [row.units.get(kind, 0.0) for row in self.rows]
        total = sum(values)
        if total <= 0:
            return 1.0
        squares = sum(value * value for value in values)
        return (total * total) / (len(values) * squares)

    # -- presentation -------------------------------------------------------

    def as_rows(self):
        """Printable rows: host, role, cpu/net/disk units, cpu utilization."""
        rows = []
        for row in self.rows:
            rows.append((
                row.host_name,
                row.role,
                format_number(row.cpu_units),
                format_number(row.net_units),
                format_number(row.disk_units),
                "%.1f%%" % (100.0 * row.utilization(ResourceKind.CPU)),
            ))
        return rows

    def render(self):
        title = "[%s]  horizon=%.1fs" % (self.label, self.horizon)
        if self.makespan is not None:
            title += "  makespan=%.1fs" % self.makespan
        return format_table(
            ("host", "role", "CPU", "Network", "Disc", "CPU util"),
            self.as_rows(),
            title=title,
        )

    def __repr__(self):
        return "UtilizationReport(%r, hosts=%d)" % (self.label, len(self.rows))


def compare_reports(reports, kind=ResourceKind.CPU):
    """Cross-architecture comparison rows (the Figure 6 'who wins' view).

    Returns a list of dicts, one per report: label, max per-host units, the
    bottleneck host, total units and the balance index -- sorted by
    max-host units ascending (winner first).
    """
    comparison = []
    for report in reports:
        host_name, units = report.max_host(kind)
        comparison.append({
            "label": report.label,
            "max_host": host_name,
            "max_host_units": units,
            "total_units": report.total_units(kind),
            "balance_index": report.balance_index(kind),
            "makespan": report.makespan,
        })
    comparison.sort(key=lambda entry: entry["max_host_units"])
    return comparison
