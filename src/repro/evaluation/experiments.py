"""Experiment runners shared by the benchmark suite and the examples.

Each function runs a complete experiment (often several architecture runs)
and returns plain data structures; the benches format them with
:mod:`repro.evaluation.tables`.  Keeping the logic here means tests can
assert on experiment outcomes without going through pytest-benchmark.
"""

from repro.baselines.centralized import centralized_spec
from repro.baselines.driver import run_architecture
from repro.baselines.multiagent import multiagent_spec
from repro.core.system import GridTopologySpec, HostSpec
from repro.evaluation.accounting import compare_reports
from repro.simkernel.resources import ResourceKind


def _grid_spec_for(scenario, seed=0, cost_model=None, collector_count=3,
                   analyzer_count=2, dataset_threshold=None, policy="knowledge",
                   analyzer_capacities=None, **overrides):
    """A grid spec sized for a scenario."""
    if dataset_threshold is None:
        dataset_threshold = scenario.total_requests
    analysis_hosts = []
    for index in range(analyzer_count):
        capacity = 10.0
        if analyzer_capacities:
            capacity = analyzer_capacities[index % len(analyzer_capacities)]
        analysis_hosts.append(HostSpec(
            "inference%d" % (index + 1), "site1", cpu_capacity=capacity,
        ))
    return GridTopologySpec(
        devices=list(scenario.devices),
        collector_hosts=[
            HostSpec("collector%d" % (index + 1), "site1")
            for index in range(collector_count)
        ],
        analysis_hosts=analysis_hosts,
        storage_host=HostSpec("storage1", "site1"),
        interface_host=HostSpec("interface1", "site1"),
        seed=seed,
        cost_model=cost_model,
        dataset_threshold=dataset_threshold,
        policy=policy,
        **overrides,
    )


def run_scenario_on_grid(scenario, seed=0, timeout=2000.0, label="grid",
                         **spec_kwargs):
    """Run one scenario on the grid architecture."""
    spec = _grid_spec_for(scenario, seed=seed, **spec_kwargs)
    return run_architecture(
        spec, label=label,
        polls_per_type=scenario.mix["A"],
        interval=scenario.interval, stagger=scenario.stagger,
        timeout=timeout,
    )


def run_all_architectures(scenario, seed=0, timeout=2000.0, cost_model=None):
    """Run one scenario on centralized / multi-agent / grid."""
    threshold = scenario.total_requests
    results = {}
    results["centralized"] = run_architecture(
        centralized_spec(devices=list(scenario.devices), seed=seed,
                         cost_model=cost_model, dataset_threshold=threshold),
        label="centralized", polls_per_type=scenario.mix["A"],
        interval=scenario.interval, stagger=scenario.stagger, timeout=timeout,
    )
    results["multiagent"] = run_architecture(
        multiagent_spec(devices=list(scenario.devices), seed=seed,
                        cost_model=cost_model, dataset_threshold=threshold),
        label="multiagent", polls_per_type=scenario.mix["A"],
        interval=scenario.interval, stagger=scenario.stagger, timeout=timeout,
    )
    results["grid"] = run_scenario_on_grid(
        scenario, seed=seed, timeout=timeout, cost_model=cost_model,
    )
    return results


def crossover_experiment(scenarios, seed=0, timeout=4000.0):
    """X1: find where the grid starts beating the simpler architectures.

    Returns a list of dicts, one per scenario point, with per-architecture
    makespans and the winner.  The paper predicts a crossover: for small
    workloads the grid's coordination overhead loses; past the crossover
    it wins on both makespan and bottleneck relief.
    """
    rows = []
    for scenario in scenarios:
        results = run_all_architectures(scenario, seed=seed, timeout=timeout)
        makespans = {
            label: result.makespan for label, result in results.items()
        }
        winner = min(makespans, key=lambda label: makespans[label])
        rows.append({
            "requests_per_type": scenario.mix["A"],
            "total_requests": scenario.total_requests,
            "makespans": makespans,
            "winner": winner,
            "max_cpu_units": {
                label: result.report.max_host(ResourceKind.CPU)[1]
                for label, result in results.items()
            },
        })
    return rows


def loadbalance_ablation(scenario, policies, seed=0, timeout=2000.0,
                         analyzer_count=3,
                         analyzer_capacities=(20.0, 10.0, 5.0),
                         dataset_threshold=3):
    """X2: compare placement policies on a heterogeneous analyzer pool.

    Small datasets (many jobs) + asymmetric CPU capacities make placement
    matter; returns per-policy makespan and CPU balance index.
    """
    rows = []
    for policy in policies:
        result = run_scenario_on_grid(
            scenario, seed=seed, timeout=timeout, policy=policy,
            analyzer_count=analyzer_count,
            analyzer_capacities=analyzer_capacities,
            dataset_threshold=dataset_threshold,
        )
        analysis_rows = [
            row for row in result.report if row.role == "analysis"
        ]
        cpu_units = {row.host_name: row.cpu_units for row in analysis_rows}
        rows.append({
            "policy": policy,
            "makespan": result.makespan,
            "completed": result.completed,
            "analyzer_cpu_units": cpu_units,
            "balance_index": result.report.balance_index(ResourceKind.CPU),
        })
    return rows


def scalability_experiment(points, seed=0, timeout=8000.0):
    """X3: devices/requests up, grid size up -- does max utilization hold?

    ``points`` is a list of dicts with keys ``device_count``,
    ``requests_per_type``, ``collector_count``, ``analyzer_count``.
    """
    from repro.workloads.scenarios import scaling_scenario

    rows = []
    for point in points:
        scenario = scaling_scenario(
            point["device_count"], point["requests_per_type"],
        )
        result = run_scenario_on_grid(
            scenario, seed=seed, timeout=timeout,
            collector_count=point.get("collector_count", 3),
            analyzer_count=point.get("analyzer_count", 2),
            dataset_threshold=point.get("dataset_threshold",
                                        scenario.total_requests),
        )
        host_name, units = result.report.max_host(ResourceKind.CPU)
        rows.append({
            "device_count": point["device_count"],
            "requests_per_type": point["requests_per_type"],
            "collector_count": point.get("collector_count", 3),
            "analyzer_count": point.get("analyzer_count", 2),
            "makespan": result.makespan,
            "completed": result.completed,
            "max_cpu_host": host_name,
            "max_cpu_units": units,
            "total_cpu_units": result.report.total_units(ResourceKind.CPU),
        })
    return rows


def sensitivity_experiment(scenario, factors, seed=0, timeout=2000.0):
    """X5: scale the *estimated* Table 1 cells; does the F6 ordering hold?

    Returns per-factor comparison entries (winner first) from
    :func:`~repro.evaluation.accounting.compare_reports`.
    """
    from repro.core.costs import CostModel

    rows = []
    for factor in factors:
        cost_model = CostModel().with_estimates_scaled(factor)
        results = run_all_architectures(
            scenario, seed=seed, timeout=timeout, cost_model=cost_model,
        )
        comparison = compare_reports(
            [result.report for result in results.values()], ResourceKind.CPU,
        )
        rows.append({
            "factor": factor,
            "ordering": [entry["label"] for entry in comparison],
            "max_units": {
                entry["label"]: entry["max_host_units"] for entry in comparison
            },
        })
    return rows
