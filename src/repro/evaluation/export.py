"""JSON export of evaluation artifacts.

Reports, findings and comparison tables serialize to plain JSON so results
can leave the simulator (CI artifacts, notebooks, the CLI's ``--json``
flag).  Import is provided for utilization reports so sweeps can be
aggregated offline.
"""

import json

from repro.evaluation.accounting import HostUtilization, UtilizationReport


def utilization_report_to_dict(report):
    """A JSON-ready dict for a :class:`UtilizationReport`."""
    return {
        "label": report.label,
        "horizon": report.horizon,
        "makespan": report.makespan,
        "hosts": [
            {
                "name": row.host_name,
                "role": row.role,
                "units": dict(row.units),
                "busy_time": dict(row.busy_time),
            }
            for row in report
        ],
    }


def utilization_report_from_dict(payload):
    """Rebuild a :class:`UtilizationReport` from its dict form."""
    rows = [
        HostUtilization(
            host["name"], host["role"], host["units"], host["busy_time"],
            payload["horizon"],
        )
        for host in payload["hosts"]
    ]
    return UtilizationReport(
        payload["label"], rows, payload["horizon"], payload.get("makespan"),
    )


def finding_to_dict(finding):
    return {
        "kind": finding.kind,
        "severity": finding.severity,
        "device": finding.device,
        "site": finding.site,
        "level": finding.level,
        "detail": {
            key: value for key, value in finding.detail.items()
            if _is_json_value(value)
        },
    }


def management_report_to_dict(report):
    return {
        "report_id": report.report_id,
        "dataset_id": report.dataset_id,
        "generated_at": report.generated_at,
        "records_analyzed": report.records_analyzed,
        "findings": [finding_to_dict(finding) for finding in report.findings],
    }


def run_result_to_dict(result):
    """Serialize a :class:`~repro.baselines.driver.RunResult`."""
    return {
        "label": result.label,
        "completed": result.completed,
        "makespan": result.makespan,
        "records_analyzed": result.records_analyzed,
        "utilization": utilization_report_to_dict(result.report),
        "findings": [finding_to_dict(f) for f in result.findings],
    }


def bench_to_dict(name, metrics, context=None):
    """A JSON-ready dict for a perf-bench artifact (``BENCH_<name>.json``).

    ``metrics`` maps metric name to a number (events/sec, wall seconds...).
    ``context`` carries run parameters (event counts, seeds) so a future
    session can re-run the same measurement and compare trajectories.
    """
    for key, value in metrics.items():
        if not isinstance(value, (int, float)):
            raise TypeError(
                "bench metric %r must be numeric, got %r" % (key, value))
    payload = {"bench": name, "metrics": dict(metrics)}
    if context is not None:
        payload["context"] = dict(context)
    return payload


def dump_json(payload, path=None, indent=2):
    """Serialize to a JSON string, optionally writing it to ``path``."""
    text = json.dumps(payload, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text


def load_json(path):
    with open(path) as handle:
        return json.load(handle)


def _is_json_value(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_json_value(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _is_json_value(item)
            for key, item in value.items()
        )
    return False
