"""Golden-result regression checking.

A reproduction is only useful while it keeps reproducing.  This module
captures an experiment's headline numbers as a *golden* JSON file and
verifies later runs against it within declared tolerances -- so a refactor
that silently shifts the Figure 6 ordering or inflates a bottleneck by 2x
fails loudly in CI.

Usage::

    golden = GoldenResult.capture("figure6", {"grid_max_cpu": 440.0, ...})
    golden.save("benchmarks/golden/figure6.json")
    ...
    golden = GoldenResult.load("benchmarks/golden/figure6.json")
    report = golden.check({"grid_max_cpu": 441.2, ...}, rel_tol=0.05)
    assert report.ok, report.describe()
"""

import json


class RegressionReport:
    """Outcome of one golden check."""

    def __init__(self, name, mismatches, missing, unexpected):
        self.name = name
        self.mismatches = mismatches    # [(key, golden, actual, rel_err)]
        self.missing = missing          # keys absent from the actual run
        self.unexpected = unexpected    # keys absent from the golden file

    @property
    def ok(self):
        return not self.mismatches and not self.missing

    def describe(self):
        lines = ["golden check %r: %s" % (
            self.name, "OK" if self.ok else "FAILED")]
        for key, golden, actual, rel_err in self.mismatches:
            lines.append("  %s: golden=%r actual=%r (rel err %.1f%%)" % (
                key, golden, actual, 100 * rel_err))
        for key in self.missing:
            lines.append("  missing metric: %s" % key)
        for key in self.unexpected:
            lines.append("  new metric (not golden-tracked): %s" % key)
        return "\n".join(lines)

    def __repr__(self):
        return "RegressionReport(%r, ok=%s)" % (self.name, self.ok)


class GoldenResult:
    """A named set of golden metrics with tolerance-aware checking."""

    def __init__(self, name, metrics):
        self.name = name
        self.metrics = dict(metrics)
        for key, value in self.metrics.items():
            if not isinstance(value, (int, float, str, bool, list)):
                raise TypeError(
                    "golden metric %r has non-serializable value %r"
                    % (key, value))

    @classmethod
    def capture(cls, name, metrics):
        return cls(name, metrics)

    def save(self, path):
        with open(path, "w") as handle:
            json.dump({"name": self.name, "metrics": self.metrics},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            payload = json.load(handle)
        return cls(payload["name"], payload["metrics"])

    def check(self, actual_metrics, rel_tol=0.05, abs_tol=1e-9):
        """Compare a fresh run's metrics against the golden values.

        Numeric values compare within ``rel_tol`` (relative) or ``abs_tol``
        (for near-zero goldens); everything else must match exactly.
        """
        mismatches = []
        missing = []
        for key, golden in self.metrics.items():
            if key not in actual_metrics:
                missing.append(key)
                continue
            actual = actual_metrics[key]
            if isinstance(golden, bool) or not isinstance(
                    golden, (int, float)):
                if actual != golden:
                    mismatches.append((key, golden, actual, float("inf")))
                continue
            scale = max(abs(golden), abs_tol)
            rel_err = abs(actual - golden) / scale
            if abs(actual - golden) > abs_tol and rel_err > rel_tol:
                mismatches.append((key, golden, actual, rel_err))
        unexpected = sorted(set(actual_metrics) - set(self.metrics))
        return RegressionReport(self.name, mismatches, missing, unexpected)

    def __repr__(self):
        return "GoldenResult(%r, metrics=%d)" % (self.name, len(self.metrics))


def figure6_metrics(results):
    """The headline metrics golden-tracked for the Figure 6 experiment.

    ``results`` is the dict from
    :func:`repro.baselines.driver.run_figure6`.
    """
    from repro.simkernel.resources import ResourceKind

    metrics = {}
    for label, result in results.items():
        host, units = result.report.max_host(ResourceKind.CPU)
        metrics[label + "_max_cpu_units"] = units
        metrics[label + "_bottleneck_host"] = host
        metrics[label + "_makespan"] = result.makespan
        metrics[label + "_records"] = result.records_analyzed
    return metrics
