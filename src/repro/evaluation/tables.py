"""Plain-text table rendering for bench output.

The benches print the same row/series structure the paper's tables and
figures report; this module is the one place that formats them.
"""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table.

    Args:
        headers: list of column headers.
        rows: list of row sequences (stringified with ``str``).
        title: optional title line above the table.
    """
    headers = [str(header) for header in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                "row has %d cells, expected %d" % (len(row), len(headers))
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[index])
                         for index, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def format_number(value, digits=1):
    """Compact numeric formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, int):
        return str(value)
    if abs(value - round(value)) < 1e-9:
        return str(int(round(value)))
    return ("%%.%df" % digits) % value
