"""Simulated network substrate: hosts, sites, links and message transport.

Hosts own CPU / disk / NIC :class:`~repro.simkernel.resources.Resource`
instances whose ledgers are what the evaluation reads.  The
:class:`Transport` delivers :class:`Message` objects between bound ports,
charging network units at both endpoints and applying link latency and
bandwidth-proportional transit delay.
"""

from repro.network.addressing import Address
from repro.network.reliable import DeadLetter, Envelope, ReliableChannel
from repro.network.topology import Host, LinkSpec, Network, Site
from repro.network.transport import DeliveryError, Message, Transport
from repro.network.protocols import (
    HTTP,
    SMTP,
    BatchEnvelope,
    ProtocolSpec,
    protocol_overhead,
)

__all__ = [
    "Address",
    "BatchEnvelope",
    "DeadLetter",
    "DeliveryError",
    "Envelope",
    "HTTP",
    "Host",
    "LinkSpec",
    "Message",
    "Network",
    "ProtocolSpec",
    "ReliableChannel",
    "SMTP",
    "Site",
    "Transport",
    "protocol_overhead",
]
