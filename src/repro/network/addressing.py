"""Addressing for the simulated network.

An :class:`Address` names a (host, port) endpoint.  Ports are symbolic
strings ("snmp", "acl", "batch-in") rather than numbers; the paper's agents
exchange messages over named channels (SNMP, SMTP, HTTP, FIPA ACL) and the
symbolic form keeps traces readable.
"""


class Address:
    """Immutable (host, port) endpoint identifier."""

    __slots__ = ("host", "port")

    def __init__(self, host, port):
        if not host:
            raise ValueError("host must be non-empty")
        if not port:
            raise ValueError("port must be non-empty")
        object.__setattr__(self, "host", host)
        object.__setattr__(self, "port", port)

    def __setattr__(self, name, value):
        raise AttributeError("Address is immutable")

    @classmethod
    def parse(cls, text):
        """Parse ``"host:port"`` into an Address."""
        host, sep, port = text.partition(":")
        if not sep:
            raise ValueError("address %r is not of the form host:port" % text)
        return cls(host, port)

    def __eq__(self, other):
        return (
            isinstance(other, Address)
            and other.host == self.host
            and other.port == self.port
        )

    def __hash__(self):
        return hash((self.host, self.port))

    def __str__(self):
        return "%s:%s" % (self.host, self.port)

    def __repr__(self):
        return "Address(%r, %r)" % (self.host, self.port)
