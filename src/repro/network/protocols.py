"""Application-protocol envelopes.

The paper ships collected-data batches between grids "through any existing
protocol such as SMTP or HTTP" and sends notifications as FIPA ACL
messages.  We model protocols as overhead factors on payload size: the
protocol choice changes how many network units a batch costs, which feeds
the Figure 6 network bars and the protocol-ablation bench.
"""


class ProtocolSpec:
    """Size model for an application protocol.

    ``size(payload_units) = fixed_overhead + payload_units * factor``
    """

    def __init__(self, name, fixed_overhead, factor):
        if fixed_overhead < 0 or factor <= 0:
            raise ValueError("invalid protocol parameters")
        self.name = name
        self.fixed_overhead = float(fixed_overhead)
        self.factor = float(factor)

    def size(self, payload_units):
        if payload_units < 0:
            raise ValueError("payload_units must be >= 0")
        return self.fixed_overhead + payload_units * self.factor

    def __repr__(self):
        return "ProtocolSpec(%r, fixed=%g, factor=%g)" % (
            self.name,
            self.fixed_overhead,
            self.factor,
        )


#: HTTP-style shipping: small per-message overhead, compact body.
HTTP = ProtocolSpec("http", fixed_overhead=0.2, factor=1.0)
#: SMTP-style shipping: heavier envelope + base64-ish expansion.
SMTP = ProtocolSpec("smtp", fixed_overhead=0.5, factor=1.33)
#: FIPA ACL notification: tiny, near-constant control message.
ACL = ProtocolSpec("acl", fixed_overhead=0.1, factor=1.0)

_REGISTRY = {spec.name: spec for spec in (HTTP, SMTP, ACL)}


def protocol_overhead(name):
    """Look up a registered :class:`ProtocolSpec` by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown protocol %r (known: %s)" % (
            name, ", ".join(sorted(_REGISTRY)))) from None


class BatchEnvelope:
    """A batch of management records wrapped for shipping.

    The envelope knows its wire size (protocol applied to the sum of record
    sizes), so senders can construct a single :class:`Message` per batch.
    """

    def __init__(self, records, protocol=HTTP):
        self.records = list(records)
        self.protocol = protocol

    @property
    def payload_units(self):
        return sum(record.size_units for record in self.records)

    @property
    def wire_units(self):
        return self.protocol.size(self.payload_units)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self):
        return "BatchEnvelope(n=%d, wire=%.2f via %s)" % (
            len(self.records),
            self.wire_units,
            self.protocol.name,
        )
