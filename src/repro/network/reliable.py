"""End-to-end reliable delivery over the lossy transport.

The base :class:`~repro.network.transport.Transport` is deliberately
unreliable: links draw per-message Bernoulli losses and a down host drops
everything in flight.  Protocols that care (SNMP polls) retry themselves;
everything else is fire-and-forget.  The paper's survivability claim
("grids of agents tolerate imperfect WANs") needs more for the record
pipeline: a lost collector envelope silently loses collected records.

:class:`ReliableChannel` layers a sequenced, acknowledged, retransmitting
delivery protocol on top of the transport without touching its
timing-exact wire-batch lanes:

* every payload message is wrapped in an :class:`Envelope` carrying a
  per-``(sender host, destination host, destination port)`` *stream* id
  and a monotonically increasing sequence number;
* envelopes travel to a channel-owned data port on the destination host;
  the channel unwraps them there, suppresses duplicates by (stream, seq),
  hands first copies to the *original* port's handler, and returns an ACK
  to a channel-owned ack port on the sender host;
* the sender retransmits unacknowledged envelopes on a timeout that backs
  off exponentially per attempt; after ``max_attempts`` the message moves
  to the **dead-letter queue** with full accounting (attempts, first/last
  send time, reason) instead of vanishing;
* both data and ACK messages ride the normal transport (NIC charges, link
  latency, loss draws all apply), so reliability is paid for, not free.

The protocol is at-least-once below the suppression point and exactly-once
above it: a receiver handler never sees the same (stream, seq) twice, but
an envelope whose ACKs were all lost can be delivered *and* dead-lettered
-- accounting therefore treats "classified + dead-lettered >= shipped" as
the no-silent-loss invariant, never exact equality.

**Redelivery** (``redelivery=True``) closes the remaining gap from
at-least-once to *effectively-always*: instead of terminating at the
dead-letter queue, exhausted envelopes are **parked per destination
host** and a capped-exponential-backoff *heal probe* watches the
destination; once it answers (host back up), every parked envelope is
re-shipped under its **original** (stream, seq) -- so receiver dedup
still guarantees exactly-once above the suppression point even when a
delivered-but-unacked envelope takes the redelivery path.  Each parked
envelope keeps a total delivery budget (``redelivery_give_up_after``
seconds from its first transmission); past it the channel gives up for
good (``redelivery_gave_up`` accounting + hook).  With every outage
healing inside the budget the invariant tightens to ``classified ==
shipped``: zero permanently-lost batches.

The channel is opt-in (``GridTopologySpec(reliability=True)``); when it is
not installed the agent helpers fall back to the plain fire-and-forget
paths, byte-identical with pre-channel behaviour.
"""

from repro.network.addressing import Address
from repro.network.transport import Message

#: Channel-owned ports bound on demand on participating hosts.
DATA_PORT = "rel-data"
ACK_PORT = "rel-ack"


class Envelope:
    """The reliable-channel header wrapped around one payload message."""

    __slots__ = ("stream", "seq", "port", "payload", "attempt")

    def __init__(self, stream, seq, port, payload, attempt):
        self.stream = stream
        self.seq = seq
        self.port = port
        self.payload = payload
        self.attempt = attempt

    def __repr__(self):
        return "Envelope(%s#%d -> port %r, attempt %d)" % (
            "/".join(self.stream), self.seq, self.port, self.attempt,
        )


class _Ack:
    """Receiver -> sender acknowledgement for one (stream, seq)."""

    __slots__ = ("stream", "seq")

    def __init__(self, stream, seq):
        self.stream = stream
        self.seq = seq


class _Pending:
    """Sender-side state for one unacknowledged envelope."""

    __slots__ = ("stream", "seq", "message", "attempts", "first_sent",
                 "last_sent", "timer")

    def __init__(self, stream, seq, message, now):
        self.stream = stream
        self.seq = seq
        self.message = message
        self.attempts = 0
        self.first_sent = now
        self.last_sent = now
        self.timer = None


class DeadLetter:
    """One message the channel exhausted its retransmissions on.

    ``status`` tracks the redelivery lifecycle:

    ``"dead"``
        terminal -- redelivery is off; the message is lost (accounted).
    ``"parked"``
        waiting for the destination host to heal; a probe is armed.
    ``"redelivered"``
        the destination healed and the envelope was re-shipped under its
        original (stream, seq); receiver dedup keeps it exactly-once.
    ``"gave-up"``
        the delivery budget (``redelivery_give_up_after``) ran out while
        parked; terminal.
    """

    __slots__ = ("message", "stream", "seq", "attempts", "first_sent",
                 "dead_at", "reason", "status", "redelivered_at")

    def __init__(self, pending, dead_at, reason):
        self.message = pending.message
        self.stream = pending.stream
        self.seq = pending.seq
        self.attempts = pending.attempts
        self.first_sent = pending.first_sent
        self.dead_at = dead_at
        self.reason = reason
        self.status = "dead"
        self.redelivered_at = None

    @property
    def terminal(self):
        """True when the channel will make no further delivery attempt."""
        return self.status in ("dead", "gave-up")

    def __repr__(self):
        return "DeadLetter(%s#%d, attempts=%d, %s, reason=%r)" % (
            "/".join(self.stream), self.seq, self.attempts, self.status,
            self.reason,
        )


class ReliableChannel:
    """Acked, deduplicated, retransmitting delivery over a Transport.

    Args:
        transport: the underlying (lossy) transport.
        ack_timeout: seconds to wait for an ACK before the first
            retransmission; doubles by ``backoff`` per further attempt.
        backoff: multiplicative retransmission backoff per attempt.
        max_attempts: total transmissions (first + retransmits) before a
            message is dead-lettered.
        ack_size_units: network units charged for each ACK message.
        metrics: optional :class:`~repro.simkernel.metrics.MetricRegistry`;
            when given, the channel's accounting (sent / retransmits /
            dup drops / dead letters / acked) is *registered* as live
            counters there -- labelled by ``metric_labels`` -- so it shows
            up in telemetry snapshots instead of staying attribute-only.
        metric_labels: labels dict for the registered counters (e.g.
            ``{"grid": "network"}``).
        redelivery: park dead-lettered envelopes per destination host and
            re-ship them once the destination heals (default off -- the
            dead-letter queue stays terminal, pre-redelivery behaviour).
        redelivery_interval: first heal-probe delay after a park (defaults
            to ``2 * ack_timeout``).
        redelivery_backoff: multiplicative probe backoff while the
            destination stays down.
        redelivery_max_interval: probe-interval cap (the backoff never
            stretches probes further apart than this).
        redelivery_give_up_after: total delivery budget in seconds from a
            message's *first* transmission; parked envelopes past it are
            given up for good.  ``None`` parks forever.
    """

    def __init__(self, transport, ack_timeout=2.0, backoff=2.0,
                 max_attempts=6, ack_size_units=0.1, metrics=None,
                 metric_labels=None, redelivery=False,
                 redelivery_interval=None, redelivery_backoff=2.0,
                 redelivery_max_interval=30.0,
                 redelivery_give_up_after=600.0):
        if ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if redelivery_interval is None:
            redelivery_interval = 2.0 * ack_timeout
        if redelivery_interval <= 0:
            raise ValueError("redelivery_interval must be positive")
        if redelivery_backoff < 1.0:
            raise ValueError("redelivery_backoff must be >= 1")
        if redelivery_max_interval < redelivery_interval:
            raise ValueError(
                "redelivery_max_interval must be >= redelivery_interval")
        if redelivery_give_up_after is not None \
                and redelivery_give_up_after <= 0:
            raise ValueError(
                "redelivery_give_up_after must be positive (or None)")
        self.transport = transport
        self.sim = transport.sim
        self.network = transport.network
        self.ack_timeout = ack_timeout
        self.backoff = backoff
        self.max_attempts = max_attempts
        self.ack_size_units = ack_size_units
        self.redelivery = bool(redelivery)
        self.redelivery_interval = redelivery_interval
        self.redelivery_backoff = redelivery_backoff
        self.redelivery_max_interval = redelivery_max_interval
        self.redelivery_give_up_after = redelivery_give_up_after
        self._next_seq = {}      # stream -> next sequence number
        self._pending = {}       # (stream, seq) -> _Pending
        self._seen = {}          # receiver side: stream -> set(seq)
        self._data_hosts = set()
        self._ack_hosts = set()
        self.dead_letters = []
        self._dead_by_key = {}   # (stream, seq) -> DeadLetter (dedup)
        self._parked = {}        # dest host name -> [DeadLetter]
        self._probe_interval = {}  # dest host name -> current probe delay
        self._probe_armed = set()  # dest hosts with a probe in flight
        self.on_dead_letter = None        # optional hook(dead_letter)
        self.on_redelivered = None        # optional hook(dead_letter)
        self.on_redelivery_gave_up = None  # optional hook(dead_letter)
        # -- metrics ------------------------------------------------------
        self.messages_sent = 0
        self.messages_delivered = 0   # first copies handed to handlers
        self.messages_acked = 0       # pending entries settled by an ACK
        self.retransmits = 0
        self.dup_drops = 0
        self.acks_sent = 0
        self.undeliverable = 0        # arrived but original port unbound
        self.redelivered = 0          # parked envelopes re-shipped
        self.redelivery_gave_up = 0   # parked envelopes past the budget
        self.heal_probes = 0
        self.latency_sum = 0.0        # first-send -> ack, per acked message
        self.latency_max = 0.0
        self.bind_metrics(metrics, metric_labels)

    def bind_metrics(self, metrics, labels=None):
        """Register the channel's counters in a metric registry.

        The attribute accounting stays (cheap, always on); the registry
        counters mirror it live so snapshots -- and anything else reading
        the registry -- see retransmissions, duplicate suppressions and
        dead letters without reaching into channel internals.
        """
        if metrics is None:
            self._m_sent = self._m_delivered = self._m_acked = None
            self._m_retransmits = self._m_dups = self._m_dead = None
            self._m_redelivered = self._m_gave_up = None
            return
        self._m_sent = metrics.counter("reliable.sent", labels)
        self._m_delivered = metrics.counter("reliable.delivered", labels)
        self._m_acked = metrics.counter("reliable.acked", labels)
        self._m_retransmits = metrics.counter("reliable.retransmits", labels)
        self._m_dups = metrics.counter("reliable.dup_drops", labels)
        self._m_dead = metrics.counter("reliable.dead_letters", labels)
        self._m_redelivered = metrics.counter("reliable.redelivered", labels)
        self._m_gave_up = metrics.counter(
            "reliable.redelivery_gave_up", labels)

    # -- submission --------------------------------------------------------

    def post(self, message):
        """Reliably deliver ``message`` (fire-and-forget with retries).

        The message must be addressed to a real (host, port) endpoint; the
        channel owns delivery from here: the caller gets no completion
        event, but the message is guaranteed to land exactly once at the
        destination handler unless it ends up in :attr:`dead_letters`.
        """
        self._wire(self._enroll(message), first=True)

    def post_batch(self, messages):
        """Reliably deliver several messages.

        First transmissions of same-flow messages share an aggregate wire
        batch (one NIC use + one transit), mirroring
        :meth:`Transport.post_batch`; retransmissions go out individually.
        """
        pendings = [self._enroll(message) for message in messages]
        wires = [self._make_wire(pending, first=True) for pending in pendings]
        if wires:
            self.transport.post_batch(wires)

    def pending_count(self):
        return len(self._pending)

    def parked_count(self, host=None):
        """Dead-lettered envelopes currently waiting for a heal.

        With ``host`` given, only envelopes parked against that
        destination host -- the health scorecards use this to pin the
        degradation on the host that is refusing delivery.
        """
        if host is not None:
            return len(self._parked.get(host, ()))
        return sum(len(queue) for queue in self._parked.values())

    def permanently_dead(self):
        """Dead letters the channel will never attempt again.

        With redelivery off this is the whole dead-letter queue; with it
        on, only ``gave-up`` entries -- parked and redelivered envelopes
        are still (or were) in flight.  The heal-complete invariant
        ``classified == shipped`` holds exactly when this is empty after
        the run drains.
        """
        return [dead for dead in self.dead_letters if dead.terminal]

    # -- sender side -------------------------------------------------------

    def _enroll(self, message):
        stream = (message.sender.host, message.dest.host, message.dest.port)
        seq = self._next_seq.get(stream, 0)
        self._next_seq[stream] = seq + 1
        pending = _Pending(stream, seq, message, self.sim.now)
        self._pending[(stream, seq)] = pending
        self._bind_endpoints(message.sender.host, message.dest.host)
        self.messages_sent += 1
        if self._m_sent is not None:
            self._m_sent.inc()
        return pending

    def _make_wire(self, pending, first):
        """Build the wrapped transport message for one (re)transmission."""
        pending.attempts += 1
        pending.last_sent = self.sim.now
        if not first:
            self.retransmits += 1
            if self._m_retransmits is not None:
                self._m_retransmits.inc()
        message = pending.message
        envelope = Envelope(
            pending.stream, pending.seq, message.dest.port,
            message.payload, pending.attempts,
        )
        delay = self.ack_timeout * (self.backoff ** (pending.attempts - 1))
        pending.timer = self.sim.schedule(delay, self._on_timeout, (pending,))
        return Message(
            sender=message.sender,
            dest=Address(message.dest.host, DATA_PORT),
            payload=envelope,
            size_units=message.size_units,
            protocol=message.protocol,
            label=message.label,
        )

    def _wire(self, pending, first):
        self.transport.post(self._make_wire(pending, first))

    def _on_timeout(self, pending):
        key = (pending.stream, pending.seq)
        if self._pending.get(key) is not pending:
            return  # acked in the meantime
        if pending.attempts >= self.max_attempts:
            del self._pending[key]
            reason = "no ack after %d attempts" % pending.attempts
            dead = self._dead_by_key.get(key)
            if dead is None:
                dead = DeadLetter(pending, self.sim.now, reason)
                self._dead_by_key[key] = dead
                self.dead_letters.append(dead)
                if self._m_dead is not None:
                    self._m_dead.inc()
            else:
                # Re-exhaustion after a redelivery round: refresh the
                # existing entry instead of double-counting the loss.
                dead.attempts += pending.attempts
                dead.dead_at = self.sim.now
                dead.reason = reason
                dead.status = "dead"
            self._maybe_park(dead)
            if self.on_dead_letter is not None:
                self.on_dead_letter(dead)
            return
        self._wire(pending, first=False)

    # -- redelivery --------------------------------------------------------

    def _maybe_park(self, dead):
        """Park a fresh dead letter for redelivery (when enabled).

        Runs *before* :attr:`on_dead_letter` fires so the hook observes
        the settled status: ``parked`` (a probe is armed), ``gave-up``
        (budget already spent) or ``dead`` (redelivery off).
        """
        if not self.redelivery:
            return
        budget = self.redelivery_give_up_after
        if budget is not None and self.sim.now - dead.first_sent >= budget:
            self._give_up(dead)
            return
        dead.status = "parked"
        dst = dead.stream[1]
        self._parked.setdefault(dst, []).append(dead)
        self._arm_probe(dst, self.redelivery_interval)

    def _arm_probe(self, dst, interval):
        if dst in self._probe_armed:
            return
        self._probe_armed.add(dst)
        self._probe_interval[dst] = interval
        self.sim.schedule(interval, self._probe, (dst,))

    def _probe(self, dst):
        """One heal probe: give up on stale entries, re-ship or back off.

        Liveness comes from the topology (``host.up``) -- the simulated
        stand-in for a piggybacked heartbeat -- so probes cost no network
        units; the re-shipped envelopes pay full transport charges.
        """
        self._probe_armed.discard(dst)
        queue = self._parked.get(dst)
        if not queue:
            self._parked.pop(dst, None)
            return
        self.heal_probes += 1
        budget = self.redelivery_give_up_after
        if budget is not None:
            keep = []
            for dead in queue:
                if self.sim.now - dead.first_sent >= budget:
                    self._give_up(dead)
                else:
                    keep.append(dead)
            queue[:] = keep
            if not queue:
                del self._parked[dst]
                return
        host = self.network.hosts.get(dst)
        if host is not None and host.up:
            # Site partitions are invisible to host liveness (the peer is
            # up, just unreachable), so the probe must also consult the
            # topology's partition state -- otherwise parked envelopes
            # toward a partitioned site would churn re-ship/re-exhaust
            # rounds against a severed link until their budget ran out.
            severed = self.network.severed_between
            ready = [dead for dead in queue
                     if not severed(dead.stream[0], dst)]
            if ready:
                still_cut = [dead for dead in queue if dead not in ready]
                if still_cut:
                    queue[:] = still_cut
                else:
                    del self._parked[dst]
                wires = [self._reopen(dead) for dead in ready]
                self.transport.post_batch(wires)
                if not still_cut:
                    return
        interval = min(
            self.redelivery_max_interval,
            self._probe_interval.get(dst, self.redelivery_interval)
            * self.redelivery_backoff,
        )
        self._arm_probe(dst, interval)

    def _reopen(self, dead):
        """Re-enroll a parked envelope under its *original* (stream, seq).

        Reusing the sequence number is what preserves exactly-once above
        dedup: if the dead-lettered envelope had actually been delivered
        (only its ACKs were lost), the receiver re-acks and drops the
        redelivered copy as a duplicate.
        """
        pending = _Pending(dead.stream, dead.seq, dead.message, self.sim.now)
        pending.first_sent = dead.first_sent
        self._pending[(dead.stream, dead.seq)] = pending
        dead.status = "redelivered"
        dead.redelivered_at = self.sim.now
        self.redelivered += 1
        if self._m_redelivered is not None:
            self._m_redelivered.inc()
        if self.on_redelivered is not None:
            self.on_redelivered(dead)
        return self._make_wire(pending, first=True)

    def _give_up(self, dead):
        dead.status = "gave-up"
        self.redelivery_gave_up += 1
        if self._m_gave_up is not None:
            self._m_gave_up.inc()
        if self.on_redelivery_gave_up is not None:
            self.on_redelivery_gave_up(dead)

    def _on_ack(self, wire):
        ack = wire.payload
        if not isinstance(ack, _Ack):
            return
        pending = self._pending.pop((ack.stream, ack.seq), None)
        if pending is None:
            return  # duplicate ACK for an already-settled message
        if pending.timer is not None:
            pending.timer.cancel()
        self.messages_acked += 1
        if self._m_acked is not None:
            self._m_acked.inc()
        latency = self.sim.now - pending.first_sent
        self.latency_sum += latency
        if latency > self.latency_max:
            self.latency_max = latency

    # -- receiver side -----------------------------------------------------

    def _on_data(self, wire):
        envelope = wire.payload
        if not isinstance(envelope, Envelope):
            return
        stream, seq = envelope.stream, envelope.seq
        seen = self._seen.setdefault(stream, set())
        if seq in seen:
            # Duplicate: the payload was already handed up; the ACK must
            # have been lost, so re-ack without redelivering.
            self.dup_drops += 1
            if self._m_dups is not None:
                self._m_dups.inc()
            self._send_ack(wire, stream, seq)
            return
        destination = self.network.hosts.get(wire.dest.host)
        handler = (destination.handler_for(envelope.port)
                   if destination is not None else None)
        if handler is None:
            # Arrived on a host that no longer serves the original port.
            # Ack anyway: retransmitting cannot help, and leaving the
            # sender to dead-letter it would misreport a *delivered* wire.
            self.undeliverable += 1
            seen.add(seq)
            self._send_ack(wire, stream, seq)
            return
        seen.add(seq)
        self.messages_delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc()
        # Restore the original addressing before the handoff so handlers
        # (e.g. AgentPlatform._on_network_message) see a plain delivery.
        wire.dest = Address(wire.dest.host, envelope.port)
        wire.payload = envelope.payload
        self._send_ack(wire, stream, seq)
        handler(wire)

    def _send_ack(self, wire, stream, seq):
        self.acks_sent += 1
        self.transport.post(Message(
            sender=Address(wire.dest.host, DATA_PORT),
            dest=Address(stream[0], ACK_PORT),
            payload=_Ack(stream, seq),
            size_units=self.ack_size_units,
            protocol="rel-ack",
        ))

    # -- wiring ------------------------------------------------------------

    def _bind_endpoints(self, sender_host_name, dest_host_name):
        if sender_host_name not in self._ack_hosts:
            host = self.network.hosts.get(sender_host_name)
            if host is not None:
                host.bind(ACK_PORT, self._on_ack)
            self._ack_hosts.add(sender_host_name)
        if dest_host_name not in self._data_hosts:
            host = self.network.hosts.get(dest_host_name)
            if host is not None:
                host.bind(DATA_PORT, self._on_data)
            self._data_hosts.add(dest_host_name)

    # -- reporting ---------------------------------------------------------

    def mean_latency(self):
        if not self.messages_acked:
            return 0.0
        return self.latency_sum / self.messages_acked

    def stream_stats(self):
        """Per-stream accounting: one row per (src host, dst host, port).

        Exposes the persistent inter-site link view the federation mesh
        reports on: how many envelopes each site-pair stream has carried
        and how many are still unacknowledged.
        """
        rows = {}
        for stream, next_seq in self._next_seq.items():
            rows[stream] = {"sent": next_seq, "pending": 0}
        for (stream, _seq) in self._pending:
            rows[stream]["pending"] += 1
        return rows

    def stats(self):
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "acked": self.messages_acked,
            "retransmits": self.retransmits,
            "dup_drops": self.dup_drops,
            "acks_sent": self.acks_sent,
            "dead_letters": len(self.dead_letters),
            "undeliverable": self.undeliverable,
            "pending": len(self._pending),
            "parked": self.parked_count(),
            "redelivered": self.redelivered,
            "redelivery_gave_up": self.redelivery_gave_up,
            "permanently_dead": len(self.permanently_dead()),
            "heal_probes": self.heal_probes,
            "mean_latency": self.mean_latency(),
            "max_latency": self.latency_max,
        }

    def __repr__(self):
        return ("ReliableChannel(sent=%d, acked=%d, retransmits=%d, "
                "dead=%d)") % (self.messages_sent, self.messages_acked,
                               self.retransmits, len(self.dead_letters))
