"""End-to-end reliable delivery over the lossy transport.

The base :class:`~repro.network.transport.Transport` is deliberately
unreliable: links draw per-message Bernoulli losses and a down host drops
everything in flight.  Protocols that care (SNMP polls) retry themselves;
everything else is fire-and-forget.  The paper's survivability claim
("grids of agents tolerate imperfect WANs") needs more for the record
pipeline: a lost collector envelope silently loses collected records.

:class:`ReliableChannel` layers a sequenced, acknowledged, retransmitting
delivery protocol on top of the transport without touching its
timing-exact wire-batch lanes:

* every payload message is wrapped in an :class:`Envelope` carrying a
  per-``(sender host, destination host, destination port)`` *stream* id
  and a monotonically increasing sequence number;
* envelopes travel to a channel-owned data port on the destination host;
  the channel unwraps them there, suppresses duplicates by (stream, seq),
  hands first copies to the *original* port's handler, and returns an ACK
  to a channel-owned ack port on the sender host;
* the sender retransmits unacknowledged envelopes on a timeout that backs
  off exponentially per attempt; after ``max_attempts`` the message moves
  to the **dead-letter queue** with full accounting (attempts, first/last
  send time, reason) instead of vanishing;
* both data and ACK messages ride the normal transport (NIC charges, link
  latency, loss draws all apply), so reliability is paid for, not free.

The protocol is at-least-once below the suppression point and exactly-once
above it: a receiver handler never sees the same (stream, seq) twice, but
an envelope whose ACKs were all lost can be delivered *and* dead-lettered
-- accounting therefore treats "classified + dead-lettered >= shipped" as
the no-silent-loss invariant, never exact equality.

The channel is opt-in (``GridTopologySpec(reliability=True)``); when it is
not installed the agent helpers fall back to the plain fire-and-forget
paths, byte-identical with pre-channel behaviour.
"""

from repro.network.addressing import Address
from repro.network.transport import Message

#: Channel-owned ports bound on demand on participating hosts.
DATA_PORT = "rel-data"
ACK_PORT = "rel-ack"


class Envelope:
    """The reliable-channel header wrapped around one payload message."""

    __slots__ = ("stream", "seq", "port", "payload", "attempt")

    def __init__(self, stream, seq, port, payload, attempt):
        self.stream = stream
        self.seq = seq
        self.port = port
        self.payload = payload
        self.attempt = attempt

    def __repr__(self):
        return "Envelope(%s#%d -> port %r, attempt %d)" % (
            "/".join(self.stream), self.seq, self.port, self.attempt,
        )


class _Ack:
    """Receiver -> sender acknowledgement for one (stream, seq)."""

    __slots__ = ("stream", "seq")

    def __init__(self, stream, seq):
        self.stream = stream
        self.seq = seq


class _Pending:
    """Sender-side state for one unacknowledged envelope."""

    __slots__ = ("stream", "seq", "message", "attempts", "first_sent",
                 "last_sent", "timer")

    def __init__(self, stream, seq, message, now):
        self.stream = stream
        self.seq = seq
        self.message = message
        self.attempts = 0
        self.first_sent = now
        self.last_sent = now
        self.timer = None


class DeadLetter:
    """One message the channel gave up on, with delivery accounting."""

    __slots__ = ("message", "stream", "seq", "attempts", "first_sent",
                 "dead_at", "reason")

    def __init__(self, pending, dead_at, reason):
        self.message = pending.message
        self.stream = pending.stream
        self.seq = pending.seq
        self.attempts = pending.attempts
        self.first_sent = pending.first_sent
        self.dead_at = dead_at
        self.reason = reason

    def __repr__(self):
        return "DeadLetter(%s#%d, attempts=%d, reason=%r)" % (
            "/".join(self.stream), self.seq, self.attempts, self.reason,
        )


class ReliableChannel:
    """Acked, deduplicated, retransmitting delivery over a Transport.

    Args:
        transport: the underlying (lossy) transport.
        ack_timeout: seconds to wait for an ACK before the first
            retransmission; doubles by ``backoff`` per further attempt.
        backoff: multiplicative retransmission backoff per attempt.
        max_attempts: total transmissions (first + retransmits) before a
            message is dead-lettered.
        ack_size_units: network units charged for each ACK message.
        metrics: optional :class:`~repro.simkernel.metrics.MetricRegistry`;
            when given, the channel's accounting (sent / retransmits /
            dup drops / dead letters / acked) is *registered* as live
            counters there -- labelled by ``metric_labels`` -- so it shows
            up in telemetry snapshots instead of staying attribute-only.
        metric_labels: labels dict for the registered counters (e.g.
            ``{"grid": "network"}``).
    """

    def __init__(self, transport, ack_timeout=2.0, backoff=2.0,
                 max_attempts=6, ack_size_units=0.1, metrics=None,
                 metric_labels=None):
        if ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.transport = transport
        self.sim = transport.sim
        self.network = transport.network
        self.ack_timeout = ack_timeout
        self.backoff = backoff
        self.max_attempts = max_attempts
        self.ack_size_units = ack_size_units
        self._next_seq = {}      # stream -> next sequence number
        self._pending = {}       # (stream, seq) -> _Pending
        self._seen = {}          # receiver side: stream -> set(seq)
        self._data_hosts = set()
        self._ack_hosts = set()
        self.dead_letters = []
        self.on_dead_letter = None  # optional hook(dead_letter)
        # -- metrics ------------------------------------------------------
        self.messages_sent = 0
        self.messages_delivered = 0   # first copies handed to handlers
        self.messages_acked = 0       # pending entries settled by an ACK
        self.retransmits = 0
        self.dup_drops = 0
        self.acks_sent = 0
        self.undeliverable = 0        # arrived but original port unbound
        self.latency_sum = 0.0        # first-send -> ack, per acked message
        self.latency_max = 0.0
        self.bind_metrics(metrics, metric_labels)

    def bind_metrics(self, metrics, labels=None):
        """Register the channel's counters in a metric registry.

        The attribute accounting stays (cheap, always on); the registry
        counters mirror it live so snapshots -- and anything else reading
        the registry -- see retransmissions, duplicate suppressions and
        dead letters without reaching into channel internals.
        """
        if metrics is None:
            self._m_sent = self._m_delivered = self._m_acked = None
            self._m_retransmits = self._m_dups = self._m_dead = None
            return
        self._m_sent = metrics.counter("reliable.sent", labels)
        self._m_delivered = metrics.counter("reliable.delivered", labels)
        self._m_acked = metrics.counter("reliable.acked", labels)
        self._m_retransmits = metrics.counter("reliable.retransmits", labels)
        self._m_dups = metrics.counter("reliable.dup_drops", labels)
        self._m_dead = metrics.counter("reliable.dead_letters", labels)

    # -- submission --------------------------------------------------------

    def post(self, message):
        """Reliably deliver ``message`` (fire-and-forget with retries).

        The message must be addressed to a real (host, port) endpoint; the
        channel owns delivery from here: the caller gets no completion
        event, but the message is guaranteed to land exactly once at the
        destination handler unless it ends up in :attr:`dead_letters`.
        """
        self._wire(self._enroll(message), first=True)

    def post_batch(self, messages):
        """Reliably deliver several messages.

        First transmissions of same-flow messages share an aggregate wire
        batch (one NIC use + one transit), mirroring
        :meth:`Transport.post_batch`; retransmissions go out individually.
        """
        pendings = [self._enroll(message) for message in messages]
        wires = [self._make_wire(pending, first=True) for pending in pendings]
        if wires:
            self.transport.post_batch(wires)

    def pending_count(self):
        return len(self._pending)

    # -- sender side -------------------------------------------------------

    def _enroll(self, message):
        stream = (message.sender.host, message.dest.host, message.dest.port)
        seq = self._next_seq.get(stream, 0)
        self._next_seq[stream] = seq + 1
        pending = _Pending(stream, seq, message, self.sim.now)
        self._pending[(stream, seq)] = pending
        self._bind_endpoints(message.sender.host, message.dest.host)
        self.messages_sent += 1
        if self._m_sent is not None:
            self._m_sent.inc()
        return pending

    def _make_wire(self, pending, first):
        """Build the wrapped transport message for one (re)transmission."""
        pending.attempts += 1
        pending.last_sent = self.sim.now
        if not first:
            self.retransmits += 1
            if self._m_retransmits is not None:
                self._m_retransmits.inc()
        message = pending.message
        envelope = Envelope(
            pending.stream, pending.seq, message.dest.port,
            message.payload, pending.attempts,
        )
        delay = self.ack_timeout * (self.backoff ** (pending.attempts - 1))
        pending.timer = self.sim.schedule(delay, self._on_timeout, (pending,))
        return Message(
            sender=message.sender,
            dest=Address(message.dest.host, DATA_PORT),
            payload=envelope,
            size_units=message.size_units,
            protocol=message.protocol,
            label=message.label,
        )

    def _wire(self, pending, first):
        self.transport.post(self._make_wire(pending, first))

    def _on_timeout(self, pending):
        key = (pending.stream, pending.seq)
        if self._pending.get(key) is not pending:
            return  # acked in the meantime
        if pending.attempts >= self.max_attempts:
            del self._pending[key]
            dead = DeadLetter(pending, self.sim.now,
                              "no ack after %d attempts" % pending.attempts)
            self.dead_letters.append(dead)
            if self._m_dead is not None:
                self._m_dead.inc()
            if self.on_dead_letter is not None:
                self.on_dead_letter(dead)
            return
        self._wire(pending, first=False)

    def _on_ack(self, wire):
        ack = wire.payload
        if not isinstance(ack, _Ack):
            return
        pending = self._pending.pop((ack.stream, ack.seq), None)
        if pending is None:
            return  # duplicate ACK for an already-settled message
        if pending.timer is not None:
            pending.timer.cancel()
        self.messages_acked += 1
        if self._m_acked is not None:
            self._m_acked.inc()
        latency = self.sim.now - pending.first_sent
        self.latency_sum += latency
        if latency > self.latency_max:
            self.latency_max = latency

    # -- receiver side -----------------------------------------------------

    def _on_data(self, wire):
        envelope = wire.payload
        if not isinstance(envelope, Envelope):
            return
        stream, seq = envelope.stream, envelope.seq
        seen = self._seen.setdefault(stream, set())
        if seq in seen:
            # Duplicate: the payload was already handed up; the ACK must
            # have been lost, so re-ack without redelivering.
            self.dup_drops += 1
            if self._m_dups is not None:
                self._m_dups.inc()
            self._send_ack(wire, stream, seq)
            return
        destination = self.network.hosts.get(wire.dest.host)
        handler = (destination.handler_for(envelope.port)
                   if destination is not None else None)
        if handler is None:
            # Arrived on a host that no longer serves the original port.
            # Ack anyway: retransmitting cannot help, and leaving the
            # sender to dead-letter it would misreport a *delivered* wire.
            self.undeliverable += 1
            seen.add(seq)
            self._send_ack(wire, stream, seq)
            return
        seen.add(seq)
        self.messages_delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc()
        # Restore the original addressing before the handoff so handlers
        # (e.g. AgentPlatform._on_network_message) see a plain delivery.
        wire.dest = Address(wire.dest.host, envelope.port)
        wire.payload = envelope.payload
        self._send_ack(wire, stream, seq)
        handler(wire)

    def _send_ack(self, wire, stream, seq):
        self.acks_sent += 1
        self.transport.post(Message(
            sender=Address(wire.dest.host, DATA_PORT),
            dest=Address(stream[0], ACK_PORT),
            payload=_Ack(stream, seq),
            size_units=self.ack_size_units,
            protocol="rel-ack",
        ))

    # -- wiring ------------------------------------------------------------

    def _bind_endpoints(self, sender_host_name, dest_host_name):
        if sender_host_name not in self._ack_hosts:
            host = self.network.hosts.get(sender_host_name)
            if host is not None:
                host.bind(ACK_PORT, self._on_ack)
            self._ack_hosts.add(sender_host_name)
        if dest_host_name not in self._data_hosts:
            host = self.network.hosts.get(dest_host_name)
            if host is not None:
                host.bind(DATA_PORT, self._on_data)
            self._data_hosts.add(dest_host_name)

    # -- reporting ---------------------------------------------------------

    def mean_latency(self):
        if not self.messages_acked:
            return 0.0
        return self.latency_sum / self.messages_acked

    def stats(self):
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "acked": self.messages_acked,
            "retransmits": self.retransmits,
            "dup_drops": self.dup_drops,
            "acks_sent": self.acks_sent,
            "dead_letters": len(self.dead_letters),
            "undeliverable": self.undeliverable,
            "pending": len(self._pending),
            "mean_latency": self.mean_latency(),
            "max_latency": self.latency_max,
        }

    def __repr__(self):
        return ("ReliableChannel(sent=%d, acked=%d, retransmits=%d, "
                "dead=%d)") % (self.messages_sent, self.messages_acked,
                               self.retransmits, len(self.dead_letters))
