"""Hosts, sites and links.

The topology model matches the paper's deployment sketch (Figure 2): hosts
are grouped into *sites* (Site I, Site II, ...).  Hosts within a site talk
over a LAN link spec; hosts in different sites talk over the WAN spec.  A
host carries the three accounted resources the evaluation reports on --
CPU, disk and network interface.
"""

from repro.simkernel.resources import Resource, ResourceKind


class LinkSpec:
    """Latency/bandwidth/loss parameters for a class of links.

    Args:
        latency: one-way propagation delay in simulated seconds.
        bandwidth: payload units per second for transit-time computation
            (independent of the NIC capacity, which models endpoint work).
        loss_rate: probability a message is lost in transit (the grid must
            tolerate imperfect WANs; losses surface as delivery errors and
            the protocols above retry).
    """

    def __init__(self, latency, bandwidth, loss_rate=0.0):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be within [0, 1)")
        object.__setattr__(self, "latency", float(latency))
        object.__setattr__(self, "bandwidth", float(bandwidth))
        object.__setattr__(self, "loss_rate", float(loss_rate))

    def __setattr__(self, name, value):
        # Frozen by contract: the default LAN/WAN specs are shared
        # module-level singletons referenced by every run, and in-flight
        # batches hold a reference to the spec they launched under.  Fault
        # injection (``link_loss_burst``) must *replace* the spec on the
        # Network/Site, never mutate one -- mutation would silently change
        # in-flight traffic and leak the burst into later runs.
        raise AttributeError(
            "LinkSpec is immutable; build a new LinkSpec and install it "
            "(cannot set %r)" % name
        )

    def transit_time(self, size_units):
        """Propagation + serialization delay for a payload."""
        return self.latency + size_units / self.bandwidth

    def __repr__(self):
        return "LinkSpec(latency=%g, bandwidth=%g, loss=%g)" % (
            self.latency, self.bandwidth, self.loss_rate)


#: Reasonable defaults: LAN is fast/low-latency; WAN has the "high latency"
#: the paper says grids must tolerate.
DEFAULT_LAN = LinkSpec(latency=0.001, bandwidth=10000.0)
DEFAULT_WAN = LinkSpec(latency=0.050, bandwidth=1000.0)
LOOPBACK = LinkSpec(latency=0.0, bandwidth=1e9)


class Site:
    """A group of hosts sharing a LAN."""

    def __init__(self, name, lan=None):
        self.name = name
        self.lan = lan if lan is not None else DEFAULT_LAN
        self.hosts = []

    def __repr__(self):
        return "Site(%r, hosts=%d)" % (self.name, len(self.hosts))


class Host:
    """A machine with accounted CPU, disk and network-interface resources.

    Args:
        sim: the simulator.
        name: unique host name.
        site: owning :class:`Site`.
        cpu_capacity / disk_capacity / net_capacity: units per second each
            resource can serve.  These are the knobs that make a host "big"
            or "small" in load-balancing experiments.
        role: free-form tag ("manager", "collector", "device", ...) used by
            the evaluation to group hosts in reports.
        tags: extra labels (e.g. capabilities) for directory experiments.
    """

    def __init__(
        self,
        sim,
        name,
        site,
        cpu_capacity=10.0,
        disk_capacity=10.0,
        net_capacity=10.0,
        role="host",
        tags=(),
    ):
        self.sim = sim
        self.name = name
        self.site = site
        self.role = role
        self.tags = tuple(tags)
        self.cpu = Resource(sim, "cpu", ResourceKind.CPU, cpu_capacity, owner=self)
        self.disk = Resource(sim, "disk", ResourceKind.DISK, disk_capacity, owner=self)
        self.nic = Resource(sim, "nic", ResourceKind.NET, net_capacity, owner=self)
        self.up = True
        self._ports = {}
        site.hosts.append(self)

    # -- port binding (used by Transport) --------------------------------

    def bind(self, port, handler):
        """Register ``handler(message)`` for deliveries to ``port``."""
        if port in self._ports:
            raise ValueError("port %r already bound on %s" % (port, self.name))
        self._ports[port] = handler

    def unbind(self, port):
        self._ports.pop(port, None)

    def handler_for(self, port):
        return self._ports.get(port)

    # -- convenience -------------------------------------------------------

    def resource(self, kind):
        if kind == ResourceKind.CPU:
            return self.cpu
        if kind == ResourceKind.DISK:
            return self.disk
        if kind == ResourceKind.NET:
            return self.nic
        raise ValueError("unknown resource kind %r" % kind)

    def resources(self):
        return (self.cpu, self.nic, self.disk)

    def fail(self):
        """Mark the host down; the transport drops traffic to/from it."""
        self.up = False

    def recover(self):
        self.up = True

    def __repr__(self):
        return "Host(%r, site=%r, role=%r)" % (self.name, self.site.name, self.role)


class Network:
    """The full topology: sites, hosts and link selection.

    Routing is trivially hierarchical, as in the paper's two-site sketch:
    loopback within a host, the site's LAN spec within a site, the WAN spec
    across sites.
    """

    def __init__(self, sim, wan=None):
        self.sim = sim
        self.wan = wan if wan is not None else DEFAULT_WAN
        self.sites = {}
        self.hosts = {}
        #: Sites whose inter-site links are currently severed (see
        #: :meth:`partition_site`).  Empty in every healthy run -- the
        #: transport only consults :meth:`severed` when this is non-empty,
        #: so the partition machinery costs nothing when unused.
        self.partitioned_sites = set()
        #: Host names forming a partition *island* (see
        #: :meth:`partition_hosts`).  Traffic crossing the island boundary
        #: is severed; traffic wholly inside or wholly outside still
        #: flows.  Empty in every healthy run, same cheap gating as
        #: :attr:`partitioned_sites`.
        self.partitioned_hosts = set()

    def add_site(self, name, lan=None):
        if name in self.sites:
            raise ValueError("site %r already exists" % name)
        site = Site(name, lan)
        self.sites[name] = site
        return site

    def site(self, name):
        """Fetch a site, creating it with default LAN parameters if new."""
        if name not in self.sites:
            return self.add_site(name)
        return self.sites[name]

    def add_host(self, name, site_name, **kwargs):
        """Create a host in ``site_name`` (site auto-created)."""
        if name in self.hosts:
            raise ValueError("host %r already exists" % name)
        host = Host(self.sim, name, self.site(site_name), **kwargs)
        self.hosts[name] = host
        return host

    def host(self, name):
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError("unknown host %r" % name) from None

    def link_between(self, src, dst):
        """The :class:`LinkSpec` governing src -> dst traffic."""
        if src is dst:
            return LOOPBACK
        if src.site is dst.site:
            return src.site.lan
        return self.wan

    def hosts_by_role(self, role):
        return [h for h in self.hosts.values() if h.role == role]

    # -- site partitions ---------------------------------------------------

    def partition_site(self, site_name):
        """Sever every inter-site link touching ``site_name``.

        Hosts inside the partitioned site keep talking to each other over
        the LAN; only traffic that crosses the site boundary is dropped.
        Idempotent.  The hosts themselves stay ``up`` -- a partition is a
        *network* failure, which is exactly why heartbeat-driven detection
        (rather than host-liveness probing) is needed above.
        """
        if site_name not in self.sites:
            raise KeyError("unknown site %r" % site_name)
        self.partitioned_sites.add(site_name)

    def heal_site(self, site_name):
        """Restore inter-site connectivity for ``site_name``.  Idempotent."""
        if site_name not in self.sites:
            raise KeyError("unknown site %r" % site_name)
        self.partitioned_sites.discard(site_name)

    def severed(self, src, dst):
        """True if src -> dst traffic crosses a partitioned site boundary."""
        if not self.partitioned_sites or src.site is dst.site:
            return False
        return (
            src.site.name in self.partitioned_sites
            or dst.site.name in self.partitioned_sites
        )

    # -- host-island partitions (split-brain) ------------------------------

    def partition_hosts(self, host_names):
        """Isolate an *island* of hosts from everything outside it.

        The classic split-brain cut: hosts inside the island keep talking
        to each other, hosts outside keep talking to each other, but any
        traffic crossing the boundary is dropped.  Unlike
        :meth:`partition_site` this cuts *within* a site too -- it is how
        the scenario catalog severs the processor-grid root from half of
        its analyzer containers while both halves stay internally healthy.
        Every host stays ``up``; only detection layered above (gossip,
        heartbeats) can see the cut.  Idempotent; a second call replaces
        the island.
        """
        names = set(host_names)
        unknown = names - set(self.hosts)
        if unknown:
            raise KeyError("unknown hosts %s" % sorted(unknown))
        self.partitioned_hosts = names

    def heal_hosts(self):
        """Dissolve the host island.  Idempotent."""
        self.partitioned_hosts = set()

    def host_severed(self, src, dst):
        """True if src -> dst traffic crosses the island boundary."""
        if not self.partitioned_hosts:
            return False
        return (src.name in self.partitioned_hosts) != (
            dst.name in self.partitioned_hosts)

    def severed_between(self, src_name, dst_name):
        """Name-based reachability check for callers that hold host names.

        Covers both partition families (site cuts and host islands) so
        the reliable channel's heal probe backs off while *either* kind
        of cut is live, instead of churning re-ship rounds into it.
        """
        if not self.partitioned_sites and not self.partitioned_hosts:
            return False
        src = self.hosts.get(src_name)
        dst = self.hosts.get(dst_name)
        if src is None or dst is None:
            return False
        return self.severed(src, dst) or self.host_severed(src, dst)

    def __repr__(self):
        return "Network(sites=%d, hosts=%d)" % (len(self.sites), len(self.hosts))
