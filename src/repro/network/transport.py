"""Message transport over the simulated topology.

Semantics (see DESIGN.md section 5):

* the sender's NIC *queues* the payload (``nic.use``) -- a busy NIC delays
  further sends, which is how network bottlenecks emerge;
* the link adds latency plus size/bandwidth transit time;
* the receiver's NIC is *charged* the payload units (accounting without
  queueing -- receive-side contention is negligible at the paper's scale);
* the handler bound to the destination port is invoked with the message.

Delivery to a down host (or an unbound port, unless ``best_effort``) raises
:class:`DeliveryError` into the sending process via the returned event.

Batched delivery (DESIGN.md section 5.1 "Transport batching"):

All traffic flows through *wire batches*.  A flow is the tuple
``(sender host, destination host, destination port, ledger label)``; every
message submitted for the same flow within the same simulated instant is
drained by **one** delivery engine instead of one spawned process per
message.  Two batch modes exist:

* **coalesced** (automatic, for :meth:`Transport.send` / :meth:`post`) --
  one pooled NIC ``use`` for the summed units, but per-message transits so
  each message keeps the *exact* delivery time (and latency accounting) it
  would have had under per-message delivery: message *i* of the batch
  arrives at ``nic_service_start + cumsum(sizes[:i+1])/capacity +
  link.transit_time(sizes[i])``, which is precisely the serialized
  per-message pipeline.  Figure 6 outputs are therefore byte-identical
  with and without coalescing.
* **aggregate** (explicit :meth:`send_batch` / :meth:`post_batch`) -- the
  sender opted into shipping one aggregate: one NIC ``use`` for the summed
  units, **one** link transit sized by the sum, and one fan-out loop
  invoking handlers in send order at the common arrival instant.  This is
  the paper's "aggregate before transfer" (section 3) made literal.

Loss is applied per *message* in both modes -- each message survives an
independent Bernoulli draw from the shared ``"transport-loss"`` RNG stream
(drawn in arrival order), so link loss statistics are unchanged by
batching.  Host-down / unknown-host / unbound-port failures are likewise
still judged per message, at the instant that message arrives.
"""

import itertools

from repro.network.addressing import Address
from repro.simkernel.events import SimEvent


class DeliveryError(Exception):
    """A message could not be delivered."""

    def __init__(self, message, reason):
        super().__init__("%s (message %s -> %s)" % (reason, message.sender, message.dest))
        self.message = message
        self.reason = reason


class Message:
    """A payload travelling between two (host, port) endpoints.

    Args:
        sender / dest: :class:`~repro.network.addressing.Address`.
        payload: arbitrary Python object (records batch, ACL message, ...).
        size_units: abstract network units -- the quantity charged to NICs
            and divided by bandwidth for transit time.
        protocol: symbolic protocol name ("snmp", "http", "smtp", "acl").
        label: ledger label for the NIC charge (defaults to protocol).
    """

    _ids = itertools.count(1)

    def __init__(self, sender, dest, payload, size_units, protocol="raw", label=None):
        if size_units < 0:
            raise ValueError("size_units must be >= 0")
        self.id = next(Message._ids)
        self.sender = sender
        self.dest = dest
        self.payload = payload
        self.size_units = float(size_units)
        self.protocol = protocol
        self.label = label if label is not None else protocol
        self.sent_at = None
        self.delivered_at = None

    @property
    def latency(self):
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def __repr__(self):
        return "Message(#%d %s->%s, %s, %g units)" % (
            self.id,
            self.sender,
            self.dest,
            self.protocol,
            self.size_units,
        )


class _WireBatch:
    """Delivery state for one wire batch (pooled -- see Transport._pool).

    ``sinks[i]`` records where message *i*'s outcome goes: ``None``
    (fire-and-forget), a :class:`SimEvent` to trigger, or an
    ``(_OutcomeCollector, index)`` pair from :meth:`Transport.send_batch`.
    """

    __slots__ = ("transport", "aggregate", "key", "messages", "sinks",
                 "src", "dst", "link", "total", "unresolved")

    def __init__(self, transport):
        self.transport = transport
        self.aggregate = False
        self.key = None
        self.messages = []
        self.sinks = []
        self.src = None
        self.dst = None
        self.link = None
        self.total = 0.0
        self.unresolved = 0

    def add(self, message, sink):
        self.messages.append(message)
        self.sinks.append(sink)
        self.unresolved += 1

    # NIC callbacks (resources.Resource.acquire) --------------------------

    def _nic_started(self, request):
        self.transport._exact_departures(self)

    def _nic_completed(self, request):
        self.transport._aggregate_transit(self)


class _OutcomeCollector:
    """Gathers per-message outcomes for one :meth:`Transport.send_batch`."""

    __slots__ = ("event", "results", "remaining")

    def __init__(self, event, count):
        self.event = event
        self.results = [None] * count
        self.remaining = count

    def resolve(self, index, value):
        self.results[index] = value
        self.remaining -= 1
        if self.remaining == 0:
            self.event.trigger(self.results)


class Transport:
    """Delivers messages between bound host ports with full cost accounting.

    Args:
        network: the :class:`~repro.network.topology.Network` to route over.
        best_effort: drop (rather than name) unbound destination ports.
        coalesce: when True (default), same-instant sends to the same flow
            share one wire batch (timing-exact; see module docstring).
            ``False`` gives every message its own batch -- the pre-batching
            per-message pipeline, kept for A/B tests and benchmarks.
    """

    def __init__(self, network, best_effort=False, coalesce=True):
        self.network = network
        self.sim = network.sim
        self.best_effort = best_effort
        self.coalesce = coalesce
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.units_carried = 0.0
        self.wire_batches = 0
        self.messages_coalesced = 0
        self._pending = {}  # flow key -> _WireBatch filling this instant
        self._pool = []  # recycled _WireBatch objects
        self._loss_random = None  # cached "transport-loss" stream .random
        self._delivered_hook = None  # set by simkernel.trace.trace_transport

    # -- submission ----------------------------------------------------------

    def send(self, message):
        """Asynchronously deliver ``message``.

        Returns a :class:`~repro.simkernel.events.SimEvent` that triggers
        with the message on delivery, or with a :class:`DeliveryError` on
        failure (the caller decides whether to inspect it).
        """
        done = self.sim.event("delivery#%d" % message.id)
        self._submit(message, done)
        return done

    def post(self, message):
        """Fire-and-forget :meth:`send`: no completion event is allocated.

        The hot path for protocols that surface failures by other means
        (SNMP timeouts, platform FAILURE bounces).
        """
        self._submit(message, None)

    def send_batch(self, messages):
        """Ship ``messages`` as aggregate wire batches (one per flow).

        Messages sharing a flow -- same (sender host, destination host,
        destination port, label) -- travel as **one** transfer: one NIC
        ``use`` for the summed units and one link transit sized by the
        sum, arriving together.  Returns a SimEvent that triggers with the
        list of per-message outcomes (Message or DeliveryError, in input
        order) once every message has been resolved.
        """
        messages = list(messages)
        done = self.sim.event("delivery-batch")
        if not messages:
            done.trigger([])
            return done
        collector = _OutcomeCollector(done, len(messages))
        for index, message in enumerate(messages):
            self._submit_aggregate(message, (collector, index))
        return done

    def post_batch(self, messages):
        """Fire-and-forget :meth:`send_batch` (no outcome collection)."""
        for message in messages:
            self._submit_aggregate(message, None)

    def send_and_wait(self, message):
        """Process helper: ``result = yield from transport.send_and_wait(m)``.

        Raises :class:`DeliveryError` inside the calling process on failure.
        """
        outcome = yield self.send(message)
        if isinstance(outcome, DeliveryError):
            raise outcome
        return outcome

    # -- batching lanes ------------------------------------------------------

    def _submit(self, message, sink):
        """Queue one message on the coalesced (timing-exact) lane."""
        message.sent_at = self.sim.now
        self.messages_sent += 1
        if not self.coalesce:
            batch = self._new_batch(aggregate=False)
            batch.add(message, sink)
            self.sim._schedule_now(self._launch, (batch,))
            return
        key = (message.sender.host, message.dest.host,
               message.dest.port, message.label)
        batch = self._pending.get(key)
        if batch is None:
            batch = self._new_batch(aggregate=False)
            batch.key = key
            self._pending[key] = batch
            self.sim._schedule_now(self._launch, (batch,))
        batch.add(message, sink)

    def _submit_aggregate(self, message, sink):
        """Queue one message on the aggregate (one-transit) lane."""
        message.sent_at = self.sim.now
        self.messages_sent += 1
        key = (message.sender.host, message.dest.host,
               message.dest.port, message.label, "aggregate")
        batch = self._pending.get(key)
        if batch is None:
            batch = self._new_batch(aggregate=True)
            batch.key = key
            self._pending[key] = batch
            self.sim._schedule_now(self._launch, (batch,))
        batch.add(message, sink)

    def _new_batch(self, aggregate):
        if self._pool:
            batch = self._pool.pop()
        else:
            batch = _WireBatch(self)
        batch.aggregate = aggregate
        return batch

    def _recycle(self, batch):
        batch.key = None
        batch.src = None
        batch.dst = None
        batch.link = None
        batch.total = 0.0
        batch.messages.clear()
        batch.sinks.clear()
        self._pool.append(batch)

    # -- delivery engine -----------------------------------------------------

    def _launch(self, batch):
        """Start one wire batch (fires in the zero-delay lane)."""
        if batch.key is not None:
            del self._pending[batch.key]
            batch.key = None
        self.wire_batches += 1
        count = len(batch.messages)
        if count > 1:
            self.messages_coalesced += count
        first = batch.messages[0]
        hosts = self.network.hosts
        src = hosts.get(first.sender.host)
        if src is None:
            self._abort(batch, "unknown sender host")
            return
        dst = hosts.get(first.dest.host)
        if dst is None:
            self._abort(batch, "unknown destination host")
            return
        if not src.up:
            self._abort(batch, "sender host down")
            return
        batch.src = src
        batch.dst = dst
        link = self.network.link_between(src, dst)
        batch.link = link
        total = 0.0
        for message in batch.messages:
            total += message.size_units
        batch.total = total
        if batch.aggregate:
            if total > 0:
                # One queued NIC use for the whole aggregate; transit is
                # scheduled once the summed units have been served.
                src.nic.acquire(total, label=first.label,
                                on_complete=batch._nic_completed)
            else:
                self._aggregate_transit(batch)
            return
        # Coalesced lane: one NIC use for the sum, per-message transits
        # once service starts.  Zero-size messages never queue on the NIC
        # and depart immediately, exactly as in per-message delivery.
        if total > 0:
            src.nic.acquire(total, label=first.label,
                            on_start=batch._nic_started)
        schedule = self.sim.schedule
        latency = link.latency
        for index, message in enumerate(batch.messages):
            if message.size_units > 0:
                continue
            if latency > 0:
                schedule(latency, self._arrive_one, (batch, index))
            else:
                self._arrive_one(batch, index)

    def _exact_departures(self, batch):
        """NIC service started: schedule each message's exact arrival.

        Message *i* would, under per-message delivery, finish the NIC at
        ``start + cumsum(sizes[:i+1])/capacity`` and then spend its own
        ``link.transit_time(size_i)`` on the wire; reproduce both from the
        single batched service start.
        """
        capacity = batch.src.nic.capacity
        link = batch.link
        schedule = self.sim.schedule
        cumulative = 0.0
        for index, message in enumerate(batch.messages):
            size = message.size_units
            if size <= 0:
                continue  # departed at launch
            cumulative += size
            schedule(cumulative / capacity + link.transit_time(size),
                     self._arrive_one, (batch, index))

    def _aggregate_transit(self, batch):
        """Aggregate NIC service done: one transit for the summed units."""
        transit = batch.link.transit_time(batch.total)
        if transit > 0:
            self.sim.schedule(transit, self._arrive_aggregate, (batch,))
        else:
            self._arrive_aggregate(batch)

    def _arrive_aggregate(self, batch):
        for index in range(len(batch.messages)):
            self._arrive_one(batch, index)

    def _arrive_one(self, batch, index):
        """One message reaches the destination edge: loss, checks, handoff."""
        message = batch.messages[index]
        link = batch.link
        if link.loss_rate > 0:
            loss_random = self._loss_random
            if loss_random is None:
                loss_random = self.sim.rng("transport-loss").random
                self._loss_random = loss_random
            if loss_random() < link.loss_rate:
                self._finish(batch, index, "lost in transit")
                return
        dst = batch.dst
        # Site partitions sever traffic at the destination edge: messages
        # already in flight when the partition starts are lost too, like a
        # real cut fibre.  The set membership guard keeps the healthy path
        # free of any per-message cost (partitioned_sites is normally empty).
        if self.network.partitioned_sites and self.network.severed(batch.src, dst):
            self._finish(batch, index, "site partitioned")
            return
        # Host-island partitions (split-brain) sever at the same edge,
        # under the same empty-set gating.
        if self.network.partitioned_hosts and \
                self.network.host_severed(batch.src, dst):
            self._finish(batch, index, "host partitioned")
            return
        if not dst.up:
            self._finish(batch, index, "destination host down")
            return
        handler = dst.handler_for(message.dest.port)
        if handler is None:
            if self.best_effort:
                self._finish(batch, index, "port not bound")
            else:
                self._finish(batch, index, "port %r not bound on %s" % (
                    message.dest.port, dst.name))
            return
        if message.size_units > 0:
            dst.nic.charge(message.size_units, label=message.label)
        message.delivered_at = self.sim.now
        self.messages_delivered += 1
        self.units_carried += message.size_units
        handler(message)
        self._finish(batch, index, None, message)

    def _finish(self, batch, index, reason, delivered=None):
        """Resolve message ``index`` of ``batch`` and recycle when drained."""
        if reason is not None:
            self._drop(batch.messages[index], batch.sinks[index], reason)
        else:
            self._resolve(batch.sinks[index], delivered)
            if self._delivered_hook is not None:
                self._delivered_hook(delivered)
        batch.unresolved -= 1
        if batch.unresolved == 0:
            self._recycle(batch)

    def _abort(self, batch, reason):
        """Drop every message of a batch that failed pre-flight checks."""
        for message, sink in zip(batch.messages, batch.sinks):
            self._drop(message, sink, reason)
        batch.unresolved = 0
        self._recycle(batch)

    def _drop(self, message, sink, reason):
        self.messages_dropped += 1
        self._resolve(sink, DeliveryError(message, reason))

    @staticmethod
    def _resolve(sink, value):
        if sink is None:
            return
        if type(sink) is tuple:
            sink[0].resolve(sink[1], value)
        else:
            sink.trigger(value)

    # -- convenience ---------------------------------------------------------

    def address(self, host_name, port):
        return Address(host_name, port)

    def stats(self):
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "units_carried": self.units_carried,
            "wire_batches": self.wire_batches,
            "coalesced": self.messages_coalesced,
        }

    def __repr__(self):
        return "Transport(sent=%d, delivered=%d, dropped=%d, batches=%d)" % (
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.wire_batches,
        )
