"""Message transport over the simulated topology.

Semantics (see DESIGN.md section 5):

* the sender's NIC *queues* the payload (``nic.use``) -- a busy NIC delays
  further sends, which is how network bottlenecks emerge;
* the link adds latency plus size/bandwidth transit time;
* the receiver's NIC is *charged* the payload units (accounting without
  queueing -- receive-side contention is negligible at the paper's scale);
* the handler bound to the destination port is invoked with the message.

Delivery to a down host (or an unbound port, unless ``best_effort``) raises
:class:`DeliveryError` into the sending process via the returned event.
"""

import itertools

from repro.network.addressing import Address


class DeliveryError(Exception):
    """A message could not be delivered."""

    def __init__(self, message, reason):
        super().__init__("%s (message %s -> %s)" % (reason, message.sender, message.dest))
        self.message = message
        self.reason = reason


class Message:
    """A payload travelling between two (host, port) endpoints.

    Args:
        sender / dest: :class:`~repro.network.addressing.Address`.
        payload: arbitrary Python object (records batch, ACL message, ...).
        size_units: abstract network units -- the quantity charged to NICs
            and divided by bandwidth for transit time.
        protocol: symbolic protocol name ("snmp", "http", "smtp", "acl").
        label: ledger label for the NIC charge (defaults to protocol).
    """

    _ids = itertools.count(1)

    def __init__(self, sender, dest, payload, size_units, protocol="raw", label=None):
        if size_units < 0:
            raise ValueError("size_units must be >= 0")
        self.id = next(Message._ids)
        self.sender = sender
        self.dest = dest
        self.payload = payload
        self.size_units = float(size_units)
        self.protocol = protocol
        self.label = label if label is not None else protocol
        self.sent_at = None
        self.delivered_at = None

    @property
    def latency(self):
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def __repr__(self):
        return "Message(#%d %s->%s, %s, %g units)" % (
            self.id,
            self.sender,
            self.dest,
            self.protocol,
            self.size_units,
        )


class Transport:
    """Delivers messages between bound host ports with full cost accounting."""

    def __init__(self, network, best_effort=False):
        self.network = network
        self.sim = network.sim
        self.best_effort = best_effort
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.units_carried = 0.0

    def send(self, message):
        """Asynchronously deliver ``message``.

        Returns a :class:`~repro.simkernel.events.SimEvent` that triggers
        with the message on delivery, or with a :class:`DeliveryError` on
        failure (the caller decides whether to inspect it).
        """
        done = self.sim.event("delivery#%d" % message.id)
        message.sent_at = self.sim.now
        self.messages_sent += 1
        self.sim.spawn(self._deliver(message, done), name="deliver#%d" % message.id)
        return done

    def send_and_wait(self, message):
        """Process helper: ``result = yield from transport.send_and_wait(m)``.

        Raises :class:`DeliveryError` inside the calling process on failure.
        """
        outcome = yield self.send(message)
        if isinstance(outcome, DeliveryError):
            raise outcome
        return outcome

    def _deliver(self, message, done):
        src = self.network.host(message.sender.host)
        try:
            dst = self.network.host(message.dest.host)
        except KeyError:
            self._drop(message, done, "unknown destination host")
            return
        if not src.up:
            self._drop(message, done, "sender host down")
            return
        # Sender NIC queues the payload (this is where send contention bites).
        if message.size_units > 0:
            yield src.nic.use(message.size_units, label=message.label)
        link = self.network.link_between(src, dst)
        transit = link.transit_time(message.size_units)
        if transit > 0:
            yield transit
        if link.loss_rate > 0 and \
                self.sim.rng("transport-loss").random() < link.loss_rate:
            self._drop(message, done, "lost in transit")
            return
        if not dst.up:
            self._drop(message, done, "destination host down")
            return
        handler = dst.handler_for(message.dest.port)
        if handler is None:
            if self.best_effort:
                self._drop(message, done, "port not bound")
                return
            self._drop(message, done, "port %r not bound on %s" % (
                message.dest.port, dst.name))
            return
        if message.size_units > 0:
            dst.nic.charge(message.size_units, label=message.label)
        message.delivered_at = self.sim.now
        self.messages_delivered += 1
        self.units_carried += message.size_units
        handler(message)
        done.trigger(message)

    def _drop(self, message, done, reason):
        self.messages_dropped += 1
        done.trigger(DeliveryError(message, reason))

    # -- convenience ---------------------------------------------------------

    def address(self, host_name, port):
        return Address(host_name, port)

    def stats(self):
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "units_carried": self.units_carried,
        }

    def __repr__(self):
        return "Transport(sent=%d, delivered=%d, dropped=%d)" % (
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
        )
