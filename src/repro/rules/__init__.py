"""Production-rule engine and knowledge bases.

The paper's analysis is rule-driven: "Rule-based and inference systems
could be used to analyze this data, extract necessary information and
identify eventual problems", and a selling point of the grid is holding "a
large number of analysis rules".  This package provides:

* :mod:`facts <repro.rules.facts>` -- typed facts and working memory;
* :mod:`conditions <repro.rules.conditions>` -- the pattern/predicate DSL;
* :mod:`engine <repro.rules.engine>` -- forward-chaining inference with
  salience ordering and refractoriness;
* :mod:`rulebase <repro.rules.rulebase>` -- grouped, extensible knowledge
  bases (agents can "learn new rules" by adding to them at runtime);
* :mod:`stdlib <repro.rules.stdlib>` -- the stock network-management rules
  (thresholds, trends, cross-device correlation).
"""

from repro.rules.facts import Fact, WorkingMemory
from repro.rules.conditions import (
    BETWEEN,
    CONTAINS,
    EQ,
    GE,
    GT,
    IN,
    LE,
    LT,
    NE,
    PRED,
    Pattern,
    Var,
)
from repro.rules.engine import InferenceEngine, Rule, RuleContext
from repro.rules.rulebase import KnowledgeBase
from repro.rules import stdlib

__all__ = [
    "BETWEEN",
    "CONTAINS",
    "EQ",
    "Fact",
    "GE",
    "GT",
    "IN",
    "InferenceEngine",
    "KnowledgeBase",
    "LE",
    "LT",
    "NE",
    "PRED",
    "Pattern",
    "Rule",
    "RuleContext",
    "Var",
    "WorkingMemory",
    "stdlib",
]
