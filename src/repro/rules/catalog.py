"""Declarative rule specifications.

The interface grid "can learn new rules and transmit them to the grid" --
transmission needs rules as *data*, not Python callables.  A
:class:`RuleSpec` names a factory from the catalog plus its parameters
(and an optional rename); it serializes to a plain dict that travels in
ACL message content, and rebuilds into a live
:class:`~repro.rules.engine.Rule` at the receiving analyzer.

The catalog contains every parameterizable stock rule.  Projects can
register their own factories with :func:`register_factory`.
"""

from repro.rules import stdlib

#: name -> zero-or-more-kwarg factory returning a Rule.
_FACTORIES = {
    "high-cpu": stdlib.high_cpu_rule,
    "low-memory": stdlib.low_memory_rule,
    "high-load": stdlib.high_load_rule,
    "low-disk": stdlib.low_disk_rule,
    "process-storm": stdlib.process_storm_rule,
    "interface-down": stdlib.interface_down_rule,
    "traffic-surge": stdlib.traffic_surge_rule,
    "memory-trend": stdlib.memory_trend_rule,
    "silent-interface": stdlib.silent_interface_rule,
    "load-trend": stdlib.load_trend_rule,
    "disk-projection": stdlib.disk_projection_rule,
    "site-overload": stdlib.site_overload_rule,
    "cascade-failure": stdlib.cascade_failure_rule,
    "resource-exhaustion": stdlib.resource_exhaustion_rule,
    "multi-site-overload": stdlib.multi_site_overload_rule,
}


def register_factory(name, factory):
    """Add a custom rule factory to the catalog."""
    if name in _FACTORIES:
        raise ValueError("factory %r already registered" % name)
    _FACTORIES[name] = factory


def factory_names():
    return sorted(_FACTORIES)


class RuleSpec:
    """A serializable description of a rule instantiation.

    Args:
        factory: catalog factory name.
        params: keyword arguments for the factory.
        rename: optional new rule name (so a re-parameterized variant can
            coexist with the stock rule in one knowledge base).
    """

    def __init__(self, factory, params=None, rename=None):
        if factory not in _FACTORIES:
            raise KeyError("unknown rule factory %r (known: %s)" % (
                factory, ", ".join(factory_names())))
        self.factory = factory
        self.params = dict(params or {})
        self.rename = rename

    def build(self):
        """Instantiate the live Rule."""
        rule = _FACTORIES[self.factory](**self.params)
        if self.rename:
            rule.name = self.rename
        return rule

    def to_dict(self):
        payload = {"factory": self.factory, "params": dict(self.params)}
        if self.rename:
            payload["rename"] = self.rename
        return payload

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict) or "factory" not in payload:
            raise ValueError("malformed rule spec %r" % (payload,))
        return cls(
            payload["factory"],
            payload.get("params"),
            payload.get("rename"),
        )

    def __eq__(self, other):
        return (
            isinstance(other, RuleSpec)
            and other.to_dict() == self.to_dict()
        )

    def __repr__(self):
        return "RuleSpec(%r, params=%r, rename=%r)" % (
            self.factory, self.params, self.rename)
