"""Condition DSL for rule patterns.

A :class:`Pattern` matches facts of one type whose attributes satisfy
constraints.  A constraint is a literal (equality), a predicate object
(:func:`GT`, :func:`BETWEEN`, ...), or a :class:`Var` which binds the
attribute's value into the rule's binding environment -- occurrences of the
same variable across patterns must agree, giving joins::

    Pattern("sample", metric="cpu_load", value=GT(90), device=Var("d"))
    Pattern("sample", metric="mem_available", value=LT(1000), device=Var("d"))

matches a high-CPU sample and a low-memory sample from the *same* device.
"""


class Predicate:
    """Base class for attribute predicates."""

    def check(self, value):
        raise NotImplementedError

    def __call__(self, value):
        return self.check(value)


class _Compare(Predicate):
    op_name = "?"

    def __init__(self, bound):
        self.bound = bound

    def __repr__(self):
        return "%s(%r)" % (self.op_name, self.bound)


class _EQ(_Compare):
    op_name = "EQ"

    def check(self, value):
        return value == self.bound


class _NE(_Compare):
    op_name = "NE"

    def check(self, value):
        return value != self.bound


class _GT(_Compare):
    op_name = "GT"

    def check(self, value):
        return value is not None and value > self.bound


class _GE(_Compare):
    op_name = "GE"

    def check(self, value):
        return value is not None and value >= self.bound


class _LT(_Compare):
    op_name = "LT"

    def check(self, value):
        return value is not None and value < self.bound


class _LE(_Compare):
    op_name = "LE"

    def check(self, value):
        return value is not None and value <= self.bound


class _BETWEEN(Predicate):
    def __init__(self, low, high):
        if low > high:
            raise ValueError("BETWEEN bounds out of order")
        self.low = low
        self.high = high

    def check(self, value):
        return value is not None and self.low <= value <= self.high

    def __repr__(self):
        return "BETWEEN(%r, %r)" % (self.low, self.high)


class _IN(Predicate):
    def __init__(self, options):
        self.options = frozenset(options)

    def check(self, value):
        try:
            return value in self.options
        except TypeError:
            return False

    def __repr__(self):
        return "IN(%r)" % sorted(self.options, key=repr)


class _CONTAINS(Predicate):
    def __init__(self, member):
        self.member = member

    def check(self, value):
        try:
            return self.member in value
        except TypeError:
            return False

    def __repr__(self):
        return "CONTAINS(%r)" % (self.member,)


class _PRED(Predicate):
    def __init__(self, function, label="custom"):
        self.function = function
        self.label = label

    def check(self, value):
        return bool(self.function(value))

    def __repr__(self):
        return "PRED(%s)" % self.label


def EQ(bound):
    return _EQ(bound)


def NE(bound):
    return _NE(bound)


def GT(bound):
    return _GT(bound)


def GE(bound):
    return _GE(bound)


def LT(bound):
    return _LT(bound)


def LE(bound):
    return _LE(bound)


def BETWEEN(low, high):
    return _BETWEEN(low, high)


def IN(*options):
    if len(options) == 1 and isinstance(options[0], (list, tuple, set, frozenset)):
        options = tuple(options[0])
    return _IN(options)


def CONTAINS(member):
    return _CONTAINS(member)


def PRED(function, label="custom"):
    return _PRED(function, label)


class Var:
    """A binding variable; same name must bind consistently across patterns."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __repr__(self):
        return "Var(%r)" % self.name


class Pattern:
    """A single-fact condition.

    Args:
        fact_type: type of fact this pattern matches.
        bind: optional variable name to bind the whole matched fact.
        **constraints: attribute name -> literal / Predicate / Var.
    """

    def __init__(self, fact_type, bind=None, **constraints):
        if not fact_type:
            raise ValueError("fact_type must be non-empty")
        self.fact_type = fact_type
        self.bind = bind
        self.constraints = constraints

    def match(self, fact, bindings):
        """Match one fact under existing bindings.

        Returns an extended bindings dict, or None on mismatch.  The input
        dict is never mutated.
        """
        if fact.type != self.fact_type:
            return None
        new_bindings = None
        for name, constraint in self.constraints.items():
            if name not in fact:
                return None
            value = fact[name]
            if isinstance(constraint, Var):
                current = (new_bindings or bindings).get(constraint.name, _MISSING)
                if current is _MISSING:
                    if new_bindings is None:
                        new_bindings = dict(bindings)
                    new_bindings[constraint.name] = value
                elif current != value:
                    return None
            elif isinstance(constraint, Predicate):
                if not constraint.check(value):
                    return None
            else:
                if value != constraint:
                    return None
        result = new_bindings if new_bindings is not None else dict(bindings)
        if self.bind is not None:
            if result is bindings:
                result = dict(bindings)
            result[self.bind] = fact
        return result

    def __repr__(self):
        inner = ", ".join(
            "%s=%r" % (name, constraint)
            for name, constraint in sorted(self.constraints.items())
        )
        return "Pattern(%s: %s)" % (self.fact_type, inner)


_MISSING = object()
