"""Forward-chaining inference.

The engine repeatedly matches every rule's patterns against working memory
(joins propagate variable bindings across patterns), collects activations,
orders them by salience (then rule-definition order, then fact recency for
determinism), and fires them -- skipping activations whose exact
(rule, fact-tuple) combination has fired before (refractoriness).  Actions
may assert or retract facts; the engine loops until no new activations
appear or ``max_cycles`` trips.

This is a naive matcher, not a Rete network; at the reproduction's scale
(thousands of facts, dozens of rules) it is plenty and far easier to audit.
"""


class Rule:
    """A production rule.

    Args:
        name: unique rule name within its knowledge base.
        patterns: list of :class:`~repro.rules.conditions.Pattern`; all must
            match (conjunction) with consistent variable bindings.
        action: callable ``action(context)`` run on firing.
        salience: higher fires first within a cycle.
        group: knowledge-area tag ("performance", "traffic", ...); used by
            the grids to give containers different rule subsets.
        level: the paper's analysis level (1 = per-batch, 2 = consolidation
            against history, 3 = cross-device correlation).
    """

    def __init__(self, name, patterns, action, salience=0, group="default", level=1):
        if not patterns:
            raise ValueError("rule %r needs at least one pattern" % name)
        if level not in (1, 2, 3):
            raise ValueError("level must be 1, 2 or 3")
        self.name = name
        self.patterns = list(patterns)
        self.action = action
        self.salience = salience
        self.group = group
        self.level = level

    def __repr__(self):
        return "Rule(%r, group=%s, level=%d, salience=%d)" % (
            self.name, self.group, self.level, self.salience,
        )


class RuleContext:
    """What an action sees when its rule fires."""

    def __init__(self, engine, rule, facts, bindings):
        self.engine = engine
        self.rule = rule
        self.facts = facts
        self.bindings = bindings

    def __getitem__(self, variable_name):
        return self.bindings[variable_name]

    def get(self, variable_name, default=None):
        return self.bindings.get(variable_name, default)

    def assert_fact(self, fact_type, **attrs):
        """Assert a derived fact into working memory."""
        return self.engine.memory.assert_new(fact_type, **attrs)

    def retract(self, fact):
        return self.engine.memory.retract(fact)

    def __repr__(self):
        return "RuleContext(%s)" % self.rule.name


class _Activation:
    __slots__ = ("rule", "rule_index", "facts", "bindings", "key")

    def __init__(self, rule, rule_index, facts, bindings):
        self.rule = rule
        self.rule_index = rule_index
        self.facts = facts
        self.bindings = bindings
        self.key = (rule.name, tuple(fact.id for fact in facts))

    def sort_key(self):
        recency = tuple(-fact.id for fact in self.facts)
        return (-self.rule.salience, self.rule_index, recency)


class InferenceEngine:
    """Runs a rule set to quiescence over a working memory."""

    def __init__(self, memory, rules=(), max_cycles=1000):
        self.memory = memory
        self.rules = list(rules)
        self.max_cycles = max_cycles
        self.fired = []          # list of (rule_name, bindings) in fire order
        self._fired_keys = set()
        self.cycles_run = 0

    def add_rule(self, rule):
        if any(existing.name == rule.name for existing in self.rules):
            raise ValueError("duplicate rule name %r" % rule.name)
        self.rules.append(rule)

    @property
    def fire_count(self):
        return len(self.fired)

    def run(self):
        """Fire rules until quiescent; returns number of firings."""
        fired_before = len(self.fired)
        for _ in range(self.max_cycles):
            self.cycles_run += 1
            activations = self._match_all()
            runnable = [
                activation
                for activation in activations
                if activation.key not in self._fired_keys
            ]
            if not runnable:
                return len(self.fired) - fired_before
            runnable.sort(key=_Activation.sort_key)
            version_before = self.memory.version
            for activation in runnable:
                if activation.key in self._fired_keys:
                    continue
                self._fired_keys.add(activation.key)
                self.fired.append((activation.rule.name, activation.bindings))
                context = RuleContext(
                    self, activation.rule, activation.facts, activation.bindings
                )
                activation.rule.action(context)
                if self.memory.version != version_before:
                    # Memory changed: recompute activations for soundness.
                    break
        raise RuntimeError(
            "inference did not quiesce within %d cycles" % self.max_cycles
        )

    def _match_all(self):
        activations = []
        for rule_index, rule in enumerate(self.rules):
            for facts, bindings in self._match_rule(rule):
                activations.append(_Activation(rule, rule_index, facts, bindings))
        return activations

    def _match_rule(self, rule):
        """Yield (facts_tuple, bindings) for every full join of the rule."""
        partial = [((), {})]
        for pattern in rule.patterns:
            candidates = self.memory.facts(pattern.fact_type)
            extended = []
            for facts, bindings in partial:
                for fact in candidates:
                    if any(existing is fact for existing in facts):
                        continue  # a fact may satisfy only one pattern slot
                    new_bindings = pattern.match(fact, bindings)
                    if new_bindings is not None:
                        extended.append((facts + (fact,), new_bindings))
            if not extended:
                return []
            partial = extended
        return partial

    def __repr__(self):
        return "InferenceEngine(rules=%d, fired=%d)" % (len(self.rules), len(self.fired))
