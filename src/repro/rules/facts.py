"""Typed facts and working memory."""

import itertools


class Fact:
    """An immutable typed fact: a fact type plus named attributes.

    Facts compare by type + attributes (not identity), so the engine's
    duplicate suppression works naturally.
    """

    _ids = itertools.count(1)

    __slots__ = ("id", "type", "attrs", "asserted_at")

    def __init__(self, fact_type, **attrs):
        if not fact_type:
            raise ValueError("fact type must be non-empty")
        object.__setattr__(self, "id", next(Fact._ids))
        object.__setattr__(self, "type", fact_type)
        object.__setattr__(self, "attrs", dict(attrs))
        object.__setattr__(self, "asserted_at", None)

    def __setattr__(self, name, value):
        if name == "asserted_at" and self.asserted_at is None:
            object.__setattr__(self, name, value)
            return
        raise AttributeError("Fact is immutable")

    def get(self, name, default=None):
        return self.attrs.get(name, default)

    def __getitem__(self, name):
        return self.attrs[name]

    def __contains__(self, name):
        return name in self.attrs

    def same_content(self, other):
        """Type+attribute equality (ignores id/assertion time)."""
        return (
            isinstance(other, Fact)
            and other.type == self.type
            and other.attrs == self.attrs
        )

    def content_key(self):
        """A hashable key of the fact's content (for dedup sets)."""
        return (self.type, tuple(sorted(
            (name, _freeze(value)) for name, value in self.attrs.items()
        )))

    def __repr__(self):
        inner = ", ".join(
            "%s=%r" % (name, value) for name, value in sorted(self.attrs.items())
        )
        return "Fact(%s: %s)" % (self.type, inner)


def _freeze(value):
    """Recursively convert a value into something hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(val)) for key, val in value.items()))
    if isinstance(value, set):
        return frozenset(_freeze(item) for item in value)
    return value


class WorkingMemory:
    """The fact store an inference engine runs against.

    Indexed by fact type.  Asserting a fact whose content duplicates a live
    fact is a no-op returning the existing fact (classic production-system
    semantics), which keeps rule firings idempotent across re-runs.
    """

    def __init__(self, clock=None):
        self._by_type = {}
        self._by_key = {}
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.assertions = 0
        self.retractions = 0
        self.version = 0

    def __len__(self):
        return sum(len(facts) for facts in self._by_type.values())

    def assert_fact(self, fact):
        """Add a fact; returns the stored fact (existing one on duplicate)."""
        key = fact.content_key()
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        fact.asserted_at = self._clock()
        self._by_type.setdefault(fact.type, []).append(fact)
        self._by_key[key] = fact
        self.assertions += 1
        self.version += 1
        return fact

    def assert_new(self, fact_type, **attrs):
        return self.assert_fact(Fact(fact_type, **attrs))

    def retract(self, fact):
        """Remove a fact (no-op when absent)."""
        facts = self._by_type.get(fact.type)
        if facts is None:
            return False
        try:
            facts.remove(fact)
        except ValueError:
            return False
        self._by_key.pop(fact.content_key(), None)
        self.retractions += 1
        self.version += 1
        return True

    def retract_type(self, fact_type):
        """Remove every fact of a type; returns how many were removed."""
        facts = self._by_type.pop(fact_type, [])
        for fact in facts:
            self._by_key.pop(fact.content_key(), None)
        self.retractions += len(facts)
        if facts:
            self.version += 1
        return len(facts)

    def facts(self, fact_type=None):
        """All facts, or those of one type (stable assertion order)."""
        if fact_type is not None:
            return list(self._by_type.get(fact_type, ()))
        everything = []
        for fact_type_name in sorted(self._by_type):
            everything.extend(self._by_type[fact_type_name])
        return everything

    def first(self, fact_type, **attr_equals):
        """First fact of a type whose attributes equal the given values."""
        for fact in self._by_type.get(fact_type, ()):
            if all(fact.get(name) == value for name, value in attr_equals.items()):
                return fact
        return None

    def count(self, fact_type):
        return len(self._by_type.get(fact_type, ()))

    def types(self):
        return sorted(self._by_type)

    def __repr__(self):
        return "WorkingMemory(facts=%d, types=%d)" % (len(self), len(self._by_type))
