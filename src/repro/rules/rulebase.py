"""Grouped, extensible knowledge bases.

A :class:`KnowledgeBase` organizes rules into *groups* (knowledge areas:
"performance", "storage", "traffic", "correlation").  Containers in the
processing grid hold different group subsets -- this is the paper's
"Container B has knowledge to analyze W" -- and agents can *learn* new
rules at runtime (user feedback through the interface grid adds rules
here).
"""

from repro.rules.engine import InferenceEngine, Rule


class KnowledgeBase:
    """A named collection of rules organized by group."""

    def __init__(self, name="kb"):
        self.name = name
        self._rules = {}       # rule name -> Rule
        self._order = []       # insertion-ordered rule names
        self.learned = []      # names of rules added after construction sealed

    def __len__(self):
        return len(self._rules)

    def __contains__(self, rule_name):
        return rule_name in self._rules

    def add(self, rule):
        """Add a rule; names must be unique."""
        if rule.name in self._rules:
            raise ValueError("rule %r already in knowledge base %s" % (
                rule.name, self.name))
        self._rules[rule.name] = rule
        self._order.append(rule.name)
        return rule

    def learn(self, rule):
        """Add a rule at runtime (the paper's agents 'learning new rules')."""
        self.add(rule)
        self.learned.append(rule.name)
        return rule

    def remove(self, rule_name):
        if rule_name not in self._rules:
            raise KeyError("no rule named %r" % rule_name)
        del self._rules[rule_name]
        self._order.remove(rule_name)

    def rule(self, rule_name):
        return self._rules[rule_name]

    def rules(self, groups=None, max_level=None):
        """Rules filtered by group membership and analysis level."""
        selected = []
        for rule_name in self._order:
            rule = self._rules[rule_name]
            if groups is not None and rule.group not in groups:
                continue
            if max_level is not None and rule.level > max_level:
                continue
            selected.append(rule)
        return selected

    def groups(self):
        return sorted({rule.group for rule in self._rules.values()})

    def merge(self, other):
        """Absorb another knowledge base (the paper's 'shared knowledge').

        Rules with duplicate names are skipped (first writer wins) and the
        list of skipped names is returned, so callers can report conflicts.
        """
        skipped = []
        for rule_name in other._order:
            if rule_name in self._rules:
                skipped.append(rule_name)
                continue
            self.add(other._rules[rule_name])
        return skipped

    def engine_for(self, memory, groups=None, max_level=None, max_cycles=1000):
        """Build an :class:`InferenceEngine` over a rule subset."""
        return InferenceEngine(
            memory, self.rules(groups=groups, max_level=max_level),
            max_cycles=max_cycles,
        )

    def describe(self):
        """A serializable inventory (used in reports and tests)."""
        return {
            "name": self.name,
            "rule_count": len(self._rules),
            "groups": {
                group: [rule.name for rule in self.rules(groups=(group,))]
                for group in self.groups()
            },
            "learned": list(self.learned),
        }

    def __repr__(self):
        return "KnowledgeBase(%r, rules=%d, groups=%s)" % (
            self.name, len(self._rules), self.groups(),
        )


def make_rule(name, patterns, action, **kwargs):
    """Convenience constructor mirroring :class:`Rule`'s signature."""
    return Rule(name, patterns, action, **kwargs)
