"""Stock network-management rules.

These encode the analyses the paper sketches: threshold checks on the
collected metrics (level 1), consolidation against stored history
(level 2), and cross-device/cross-fact correlation (level 3, "problems
that arose through the crossing of information from a whole complex of
equipment and not just isolated data").

Facts consumed:

* ``sample`` -- one collected metric value:
  ``device, site, group, metric, value, time``.
* ``baseline`` -- historical aggregate from storage (level 2):
  ``device, metric, mean, maximum``.
* ``problem`` -- produced by level-1/2 rules, consumed by level 3.

Facts produced: ``problem`` and (level 3) ``incident``.
"""

from repro.rules.conditions import EQ, GT, LT, Pattern, Var
from repro.rules.engine import Rule
from repro.rules.rulebase import KnowledgeBase

#: Severities attached to produced problems.
SEV_WARNING = "warning"
SEV_MINOR = "minor"
SEV_MAJOR = "major"
SEV_CRITICAL = "critical"


def _problem(kind, severity):
    """An action asserting a problem derived from the bound ``sample`` fact."""

    def action(context):
        sample = context.get("sample")
        context.assert_fact(
            "problem",
            kind=kind,
            severity=severity,
            device=context["device"],
            site=context.get("site", ""),
            value=sample.get("value") if sample is not None else context.get("value"),
            metric=sample.get("metric") if sample is not None else context.get("metric", ""),
        )

    return action


def high_cpu_rule(threshold=90.0):
    return Rule(
        "high-cpu",
        [Pattern(
            "sample", bind="sample", metric="cpu_load", value=GT(threshold),
            device=Var("device"), site=Var("site"),
        )],
        _problem("high-cpu", SEV_MAJOR),
        group="performance",
        level=1,
    )


def low_memory_rule(threshold_kb=100 * 1024):
    return Rule(
        "low-memory",
        [Pattern(
            "sample", bind="sample", metric="mem_available", value=LT(threshold_kb),
            device=Var("device"), site=Var("site"),
        )],
        _problem("low-memory", SEV_MINOR),
        group="performance",
        level=1,
    )


def high_load_rule(threshold=4.0):
    return Rule(
        "high-load",
        [Pattern(
            "sample", bind="sample", metric="load_avg", value=GT(threshold),
            device=Var("device"), site=Var("site"),
        )],
        _problem("high-load", SEV_WARNING),
        group="performance",
        level=1,
    )


def low_disk_rule(threshold_kb=512 * 1024):
    return Rule(
        "low-disk",
        [Pattern(
            "sample", bind="sample", metric="disk_free", value=LT(threshold_kb),
            device=Var("device"), site=Var("site"),
        )],
        _problem("low-disk", SEV_MAJOR),
        group="storage",
        level=1,
    )


def process_storm_rule(threshold=400):
    return Rule(
        "process-storm",
        [Pattern(
            "sample", bind="sample", metric="proc_count", value=GT(threshold),
            device=Var("device"), site=Var("site"),
        )],
        _problem("process-storm", SEV_WARNING),
        group="storage",
        level=1,
    )


def interface_down_rule():
    return Rule(
        "interface-down",
        [Pattern(
            "sample", metric="if_oper_status", value=EQ(2),
            device=Var("device"), site=Var("site"), instance=Var("instance"),
        )],
        lambda context: context.assert_fact(
            "problem",
            kind="interface-down",
            severity=SEV_CRITICAL,
            device=context["device"],
            site=context["site"],
            value=context["instance"],
            metric="if_oper_status",
        ),
        group="traffic",
        level=1,
    )


def traffic_surge_rule(factor=3.0):
    """Level 2: current interface *rate* far above the stored baseline.

    Operates on the ``if_in_rate`` samples the classifier derives from the
    cumulative SNMP counters (comparing raw counters against their own
    history cannot see a surge).
    """

    def action(context):
        context.assert_fact(
            "problem",
            kind="traffic-surge",
            severity=SEV_MINOR,
            device=context["device"],
            site=context.get("site", ""),
            value=context["value"],
            metric="if_in_rate",
        )

    return Rule(
        "traffic-surge",
        [
            Pattern(
                "sample", metric="if_in_rate", device=Var("device"),
                site=Var("site"), value=Var("value"), instance=Var("instance"),
            ),
            Pattern(
                "baseline", metric="if_in_rate", device=Var("device"),
                instance=Var("instance"), mean=Var("mean"),
            ),
        ],
        _surge_guard(action, factor),
        group="traffic",
        level=2,
    )


def _surge_guard(action, factor):
    """Wrap an action with the value > factor * mean guard.

    The cross-variable comparison cannot be expressed as a single-attribute
    predicate, so it is checked at fire time; non-qualifying activations
    simply do nothing.
    """

    def guarded(context):
        mean = context["mean"]
        value = context["value"]
        if mean is not None and value is not None and mean > 0 and value > factor * mean:
            action(context)

    return guarded


def memory_trend_rule(drop_fraction=0.5):
    """Level 2: available memory far below its historical mean (leak hint)."""

    def action(context):
        context.assert_fact(
            "problem",
            kind="memory-leak-suspect",
            severity=SEV_MAJOR,
            device=context["device"],
            site=context.get("site", ""),
            value=context["value"],
            metric="mem_available",
        )

    def guarded(context):
        mean = context["mean"]
        value = context["value"]
        if mean and value is not None and value < drop_fraction * mean:
            action(context)

    return Rule(
        "memory-trend",
        [
            Pattern(
                "sample", bind="sample", metric="mem_available", device=Var("device"),
                site=Var("site"), value=Var("value"),
            ),
            Pattern(
                "baseline", metric="mem_available", device=Var("device"),
                mean=Var("mean"),
            ),
        ],
        guarded,
        group="performance",
        level=2,
    )


def site_overload_rule():
    """Level 3: two distinct devices at one site with high CPU -> incident."""

    def action(context):
        first = context["first"]
        second = context["second"]
        if first["device"] >= second["device"]:
            return  # fire once per unordered pair
        context.assert_fact(
            "incident",
            kind="site-overload",
            severity=SEV_CRITICAL,
            site=context["site"],
            devices=tuple(sorted((first["device"], second["device"]))),
        )

    return Rule(
        "site-overload",
        [
            Pattern("problem", kind="high-cpu", site=Var("site"), bind="first"),
            Pattern("problem", kind="high-cpu", site=Var("site"), bind="second"),
        ],
        action,
        group="correlation",
        level=3,
    )


def cascade_failure_rule():
    """Level 3: an interface down plus a traffic surge elsewhere at the site.

    The paper's canonical cross-equipment example: traffic rerouted around a
    dead link overloads a neighbour.
    """

    def action(context):
        if context["down_device"] == context["surge_device"]:
            return
        context.assert_fact(
            "incident",
            kind="cascade-failure",
            severity=SEV_CRITICAL,
            site=context["site"],
            devices=(context["down_device"], context["surge_device"]),
        )

    return Rule(
        "cascade-failure",
        [
            Pattern(
                "problem", kind="interface-down", site=Var("site"),
                device=Var("down_device"),
            ),
            Pattern(
                "problem", kind="traffic-surge", site=Var("site"),
                device=Var("surge_device"),
            ),
        ],
        action,
        group="correlation",
        level=3,
    )


def resource_exhaustion_rule():
    """Level 3: one device both low on disk and low on memory."""

    def action(context):
        context.assert_fact(
            "incident",
            kind="resource-exhaustion",
            severity=SEV_MAJOR,
            site=context.get("site", ""),
            devices=(context["device"],),
        )

    return Rule(
        "resource-exhaustion",
        [
            Pattern("problem", kind="low-disk", device=Var("device"), site=Var("site")),
            Pattern("problem", kind="low-memory", device=Var("device")),
        ],
        action,
        group="correlation",
        level=3,
    )


def silent_interface_rule(rate_floor=1.0):
    """Level 1: an interface that is operationally up but moving no data.

    Joins the oper-status sample with the classifier-derived rate sample of
    the same device *and instance* -- a black-holing link looks healthy to
    a status check alone.
    """

    def action(context):
        context.assert_fact(
            "problem",
            kind="silent-interface",
            severity=SEV_MINOR,
            device=context["device"],
            site=context["site"],
            value=context["instance"],
            metric="if_in_rate",
        )

    return Rule(
        "silent-interface",
        [
            Pattern(
                "sample", metric="if_oper_status", value=EQ(1),
                device=Var("device"), site=Var("site"),
                instance=Var("instance"),
            ),
            Pattern(
                "sample", metric="if_in_rate", value=LT(rate_floor),
                device=Var("device"), instance=Var("instance"),
            ),
        ],
        action,
        group="traffic",
        level=1,
    )


def load_trend_rule(factor=2.0):
    """Level 2: load average well above its own history (creeping load)."""

    def action(context):
        context.assert_fact(
            "problem",
            kind="load-trend",
            severity=SEV_WARNING,
            device=context["device"],
            site=context.get("site", ""),
            value=context["value"],
            metric="load_avg",
        )

    def guarded(context):
        mean = context["mean"]
        value = context["value"]
        if mean and value is not None and value > factor * mean:
            action(context)

    return Rule(
        "load-trend",
        [
            Pattern(
                "sample", metric="load_avg", device=Var("device"),
                site=Var("site"), value=Var("value"),
            ),
            Pattern(
                "baseline", metric="load_avg", device=Var("device"),
                mean=Var("mean"),
            ),
        ],
        guarded,
        group="performance",
        level=2,
    )


def disk_projection_rule(drop_fraction=0.25):
    """Level 2: free disk sharply below its history -> filling disk.

    Fires before the absolute low-disk threshold does, giving operators
    lead time ("identify eventual problems" early is the whole point of
    the analysis grid).
    """

    def action(context):
        context.assert_fact(
            "problem",
            kind="disk-filling",
            severity=SEV_MAJOR,
            device=context["device"],
            site=context.get("site", ""),
            value=context["value"],
            metric="disk_free",
        )

    def guarded(context):
        mean = context["mean"]
        value = context["value"]
        if mean and value is not None and value < (1.0 - drop_fraction) * mean:
            action(context)

    return Rule(
        "disk-projection",
        [
            Pattern(
                "sample", metric="disk_free", device=Var("device"),
                site=Var("site"), value=Var("value"),
            ),
            Pattern(
                "baseline", metric="disk_free", device=Var("device"),
                mean=Var("mean"),
            ),
        ],
        guarded,
        group="storage",
        level=2,
    )


def multi_site_overload_rule():
    """Level 3: the same overload signature at two *different* sites.

    This is the correlation the paper's Figure 5 baseline structurally
    cannot perform ("Each network has a similar structure and there's no
    relation among different sites [...] no high level analysis can be
    carried out"): it requires one analysis point seeing both sites'
    problems.
    """

    def action(context):
        first = context["first"]
        second = context["second"]
        if first["site"] >= second["site"]:
            return  # fire once per unordered site pair
        context.assert_fact(
            "incident",
            kind="multi-site-overload",
            severity=SEV_CRITICAL,
            site=",".join(sorted((first["site"], second["site"]))),
            devices=tuple(sorted((first["device"], second["device"]))),
        )

    return Rule(
        "multi-site-overload",
        [
            Pattern("problem", kind="high-cpu", bind="first"),
            Pattern("problem", kind="high-cpu", bind="second"),
        ],
        action,
        group="correlation",
        level=3,
    )


#: Default thresholds used by :func:`standard_knowledge_base`.
DEFAULT_THRESHOLDS = {
    "cpu_percent": 90.0,
    "memory_kb": 100 * 1024,
    "load_avg": 4.0,
    "disk_kb": 512 * 1024,
    "process_count": 400,
    "surge_factor": 3.0,
    "memory_drop_fraction": 0.5,
    "silent_rate_floor": 1.0,
    "load_trend_factor": 2.0,
    "disk_drop_fraction": 0.25,
}


def standard_knowledge_base(name="network-management", thresholds=None):
    """The full stock rule base, all groups and levels."""
    params = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        params.update(thresholds)
    kb = KnowledgeBase(name)
    kb.add(high_cpu_rule(params["cpu_percent"]))
    kb.add(low_memory_rule(params["memory_kb"]))
    kb.add(high_load_rule(params["load_avg"]))
    kb.add(low_disk_rule(params["disk_kb"]))
    kb.add(process_storm_rule(params["process_count"]))
    kb.add(interface_down_rule())
    kb.add(traffic_surge_rule(params["surge_factor"]))
    kb.add(memory_trend_rule(params["memory_drop_fraction"]))
    kb.add(silent_interface_rule(params["silent_rate_floor"]))
    kb.add(load_trend_rule(params["load_trend_factor"]))
    kb.add(disk_projection_rule(params["disk_drop_fraction"]))
    kb.add(site_overload_rule())
    kb.add(cascade_failure_rule())
    kb.add(resource_exhaustion_rule())
    kb.add(multi_site_overload_rule())
    return kb
