"""Deterministic discrete-event simulation kernel.

The kernel is the spine of the reproduction: every other subsystem (the
simulated network, the SNMP devices, the agent platform and the management
grids) runs as processes on a single :class:`~repro.simkernel.simulator.Simulator`
instance.  Resources (CPU, disk, NIC) account busy time, which is what the
paper's Figure 6 reports.

Public surface:

* :class:`Simulator` -- event queue, clock, process scheduler.
* :class:`Process` -- a running simulation process (wraps a generator).
* :class:`SimEvent` -- one-shot triggerable event processes can wait on.
* :class:`Resource` / :class:`ResourceKind` -- capacity-limited server with a
  busy-time ledger.
* :class:`RngStream` -- named, seed-derived random streams for determinism.
* :mod:`metrics <repro.simkernel.metrics>` -- time series / counters.
* :mod:`telemetry <repro.simkernel.telemetry>` -- causal spans, the kernel
  profiler and the session :class:`Telemetry` flight recorder.
"""

from repro.simkernel.events import EventQueue, ScheduledEvent, SimEvent
from repro.simkernel.simulator import (
    Interrupted,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
)
from repro.simkernel.resources import Resource, ResourceKind, Use
from repro.simkernel.rng import RngStream, derive_seed
from repro.simkernel.metrics import Counter, Gauge, MetricRegistry, TimeSeries
from repro.simkernel.trace import SimulationTracer, TraceRecord, trace_transport
from repro.simkernel.telemetry import (
    KernelProfiler,
    Span,
    SpanRecorder,
    Telemetry,
)

__all__ = [
    "Counter",
    "EventQueue",
    "Gauge",
    "Interrupted",
    "KernelProfiler",
    "MetricRegistry",
    "Process",
    "ProcessKilled",
    "Resource",
    "ResourceKind",
    "RngStream",
    "ScheduledEvent",
    "SimEvent",
    "SimulationError",
    "SimulationTracer",
    "Simulator",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TraceRecord",
    "trace_transport",
    "TimeSeries",
    "Use",
    "derive_seed",
]
