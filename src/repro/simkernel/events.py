"""Event primitives for the discrete-event kernel.

Two kinds of "event" live here and they are deliberately distinct:

* :class:`ScheduledEvent` -- an entry in the simulator's time-ordered queue
  (a callback that fires at a simulated instant).  Created by
  :meth:`Simulator.schedule <repro.simkernel.simulator.Simulator.schedule>`.
* :class:`SimEvent` -- a one-shot condition that processes can *wait on*
  (``yield event``) and that any code can *trigger* with a value.  This is
  the rendezvous primitive used for message queues, job completion and
  process joins.

The queue has three lanes, all merged into one exact global
(time, priority, seq) order on ``pop``:

* **fast lane** -- same-instant default-priority events (``spawn``,
  ``SimEvent.trigger``, already-triggered ``add_waiter``) go through a
  plain FIFO deque, skipping any ordered structure entirely.  Because
  fast-lane entries always carry the *current* simulated time and
  priority 0, and are appended in strictly increasing ``seq`` order, a
  single head-to-head comparison against the timer-side head reproduces
  the exact global ordering.
* **timer wheel** -- future events land in calendar buckets keyed by
  ``int(time / wheel_width)``: an O(1) append on schedule, an O(1) lazy
  mark on cancel.  A bucket is *activated* (cancelled entries filtered,
  the rest sorted once) only when it becomes the earliest pending bucket,
  so a population of N pending timers costs one sort per bucket instead
  of 2N heap sifts.  This is what keeps the pending-timer-heavy profiles
  (retransmit backoffs, heartbeats, fetch patience ladders) near-constant
  per event as the device population grows.
* **heap fallback** -- far-future events (beyond ``wheel_span`` buckets
  of lookahead) and events pushed while very few timers are pending
  (where a tiny binary heap is faster than bucket bookkeeping) go through
  the classic binary heap.  ``pop`` compares the heap head against the
  activated bucket head precisely, so the split is invisible.

The wheel is a pure scheduling-speed optimisation: pops come out in the
exact (time, priority, seq) order the single-heap design had, which
``tests/test_simkernel_determinism.py`` pins operation-by-operation
against a reference model and wheel-vs-heap (``EventQueue(wheel=False)``)
over random interleavings.
"""

import collections
import heapq
import itertools
from bisect import insort
from operator import attrgetter

#: C-level sort key for bucket activation: one attrgetter call per event
#: plus C tuple comparisons beats n-log-n Python ``__lt__`` calls.
_SORT_KEY = attrgetter("time", "priority", "seq")


class ScheduledEvent:
    """A cancellable callback scheduled at an absolute simulated time.

    Ordering: time, then priority (lower fires first), then insertion order,
    which keeps runs fully deterministic.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "queue")

    def __init__(self, time, priority, seq, callback, args, queue=None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.queue = queue

    def cancel(self):
        """Prevent the callback from firing (idempotent, O(1))."""
        if not self.cancelled:
            self.cancelled = True
            queue = self.queue
            if queue is not None:
                queue._live -= 1
                self.queue = None

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other):
        # Inlined field comparisons: this runs on every heap sift and every
        # bucket sort, so the tuple allocation sort_key() would do per
        # comparison is pure waste.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "ScheduledEvent(t=%g, prio=%d, %s)" % (self.time, self.priority, state)


class EventQueue:
    """A deterministic priority queue of :class:`ScheduledEvent`.

    Cancelled events stay in their lane and are skipped on pop/activation;
    this keeps cancellation O(1) at the cost of occasional lazy cleanup.
    ``len`` is O(1): a live count is incremented on push and decremented by
    both pop and :meth:`ScheduledEvent.cancel`.

    Args:
        wheel: route near-future events through the calendar timer wheel
            (default).  ``False`` restores the single binary heap -- same
            pop order, used by the equivalence tests and A/B benches.
        wheel_width: seconds of simulated time per calendar bucket.
        wheel_span: buckets of lookahead; events further out fall back to
            the heap (they are popped from there precisely, never migrated).
        wheel_min_pending: while fewer timers than this are pending, new
            events use the heap -- a near-empty binary heap beats bucket
            bookkeeping, and the precise head-to-head merge on ``pop``
            makes the split invisible.
    """

    def __init__(self, wheel=True, wheel_width=0.5, wheel_span=8192,
                 wheel_min_pending=64):
        self._heap = []
        self._fast = collections.deque()
        self._counter = itertools.count()
        self._live = 0
        self._wheel = wheel
        if wheel_width <= 0:
            raise ValueError("wheel_width must be positive")
        self._inv_width = 1.0 / wheel_width
        self._span = wheel_span
        self._min_pending = wheel_min_pending
        self._buckets = {}      # bucket no -> [min_time, *unsorted events]
        self._bucket_heap = []  # bucket numbers with a _buckets entry
        self._cur = []          # activated bucket, sorted ascending
        self._cur_idx = 0       # pop cursor into _cur
        self._cur_no = -1       # highest bucket number merged into _cur
        self._base_no = 0       # highest bucket number activated so far

    def __len__(self):
        return self._live

    def push(self, time, callback, args=(), priority=0):
        """Insert a callback to fire at absolute ``time``; returns the event."""
        event = ScheduledEvent(time, priority, next(self._counter), callback,
                               args, self)
        self._live += 1
        if self._wheel:
            no = int(time * self._inv_width)
            cur = self._cur
            if cur and no <= self._cur_no:
                # Lands inside (or before) the activated bucket: a precise
                # sorted insert keeps _cur the exact front segment.  Only
                # the not-yet-popped tail is searched.
                insort(cur, event, self._cur_idx)
                return event
            bucket = self._buckets.get(no)
            if bucket is not None:
                bucket.append(event)
                if time < bucket[0]:
                    bucket[0] = time
                return event
            if (no - self._base_no > self._span
                    or self._live - len(self._fast) <= self._min_pending):
                heapq.heappush(self._heap, event)
                return event
            # Slot 0 holds the bucket's min time (a float): pop/peek use it
            # as a lower bound to prove a fast-lane win without activating.
            self._buckets[no] = [time, event]
            heapq.heappush(self._bucket_heap, no)
            return event
        heapq.heappush(self._heap, event)
        return event

    def push_fifo(self, time, callback, args=()):
        """Fast-lane insert for a default-priority event at the current time.

        The caller must guarantee ``time`` is the simulator's *current*
        instant (no pending entry fires earlier than it): :meth:`pop` then
        only needs one comparison against the timer-side head to keep the
        global (time, priority, seq) order exact.
        """
        event = ScheduledEvent(time, 0, next(self._counter), callback, args,
                               self)
        self._fast.append(event)
        self._live += 1
        return event

    def _timer_head(self):
        """The next live timer-side event as ``(event, from_heap)``.

        Skips cancelled entries, activates the earliest pending bucket when
        the current one is drained, and merges the activated bucket head
        against the heap head precisely.  Returns ``(None, False)`` when no
        timer-side event is pending.
        """
        cur = self._cur
        idx = self._cur_idx
        length = len(cur)
        while idx < length and cur[idx].cancelled:
            idx += 1
        if idx >= length:
            if length:
                del cur[:]
            idx = 0
            bucket_heap = self._bucket_heap
            if bucket_heap:
                buckets = self._buckets
                while bucket_heap:
                    no = heapq.heappop(bucket_heap)
                    pending = buckets.pop(no)
                    pending = [event for event in pending[1:]
                               if not event.cancelled]
                    if pending:
                        pending.sort(key=_SORT_KEY)
                        cur.extend(pending)
                        self._cur_no = no
                        if no > self._base_no:
                            self._base_no = no
                        break
        self._cur_idx = idx
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if idx < len(cur):
            head = cur[idx]
            if heap:
                top = heap[0]
                if top.time < head.time or (
                        top.time == head.time and (
                            top.priority < head.priority or (
                                top.priority == head.priority
                                and top.seq < head.seq))):
                    return top, True
            return head, False
        if heap:
            return heap[0], True
        return None, False

    def pop(self):
        """Remove and return the next non-cancelled event, or None if empty."""
        fast = self._fast
        while fast and fast[0].cancelled:
            fast.popleft()
        if fast:
            first = fast[0]
            ftime = first.time
            # Fast-lane early win: every bound below is <= the earliest
            # live timer-side time (heads may be cancelled, bucket mins may
            # be stale -- both only make the bound lower), so a strict
            # ``ftime < bound`` proves the global head without touching --
            # in particular without *activating* -- the timer structures.
            if self._wheel:
                bound = None
                cur = self._cur
                idx = self._cur_idx
                if idx < len(cur):
                    bound = cur[idx].time
                bucket_heap = self._bucket_heap
                if bucket_heap:
                    time = self._buckets[bucket_heap[0]][0]
                    if bound is None or time < bound:
                        bound = time
                heap = self._heap
                if heap:
                    time = heap[0].time
                    if bound is None or time < bound:
                        bound = time
            else:
                heap = self._heap
                bound = heap[0].time if heap else None
            if bound is None or ftime < bound:
                fast.popleft()
                self._live -= 1
                first.queue = None
                return first
        # Inline the common timer-side states (a live activated-bucket head,
        # or no wheel activity at all): _timer_head is only called when a
        # bucket needs activating or the cur head is cancelled, keeping the
        # zero-delay and tiny-heap profiles free of the function call.
        from_heap = True
        if self._wheel:
            cur = self._cur
            idx = self._cur_idx
            if idx < len(cur):
                head = cur[idx]
                if head.cancelled:
                    timer, from_heap = self._timer_head()
                else:
                    heap = self._heap
                    while heap and heap[0].cancelled:
                        heapq.heappop(heap)
                    timer = head
                    from_heap = False
                    if heap:
                        top = heap[0]
                        if top.time < head.time or (
                                top.time == head.time and (
                                    top.priority < head.priority or (
                                        top.priority == head.priority
                                        and top.seq < head.seq))):
                            timer = top
                            from_heap = True
            elif self._bucket_heap:
                timer, from_heap = self._timer_head()
            else:
                if idx:
                    del cur[:]
                    self._cur_idx = 0
                heap = self._heap
                while heap and heap[0].cancelled:
                    heapq.heappop(heap)
                timer = heap[0] if heap else None
        else:
            heap = self._heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
            timer = heap[0] if heap else None
        if fast:
            first = fast[0]
            if timer is not None and (
                    timer.time < first.time or (
                        timer.time == first.time and (
                            timer.priority < first.priority or (
                                timer.priority == first.priority
                                and timer.seq < first.seq)))):
                event = timer
                if from_heap:
                    heapq.heappop(self._heap)
                else:
                    self._cur_idx += 1
            else:
                event = fast.popleft()
        elif timer is not None:
            event = timer
            if from_heap:
                heapq.heappop(self._heap)
            else:
                self._cur_idx += 1
        else:
            return None
        self._live -= 1
        event.queue = None
        return event

    def peek_time(self):
        """Time of the next live event, or None."""
        fast = self._fast
        while fast and fast[0].cancelled:
            fast.popleft()
        if fast:
            ftime = fast[0].time
            # Same lower-bound trick as pop: only the *time* is returned,
            # so a non-strict ``ftime <= bound`` suffices here.
            if self._wheel:
                bound = None
                cur = self._cur
                idx = self._cur_idx
                if idx < len(cur):
                    bound = cur[idx].time
                bucket_heap = self._bucket_heap
                if bucket_heap:
                    time = self._buckets[bucket_heap[0]][0]
                    if bound is None or time < bound:
                        bound = time
                heap = self._heap
                if heap:
                    time = heap[0].time
                    if bound is None or time < bound:
                        bound = time
            else:
                heap = self._heap
                bound = heap[0].time if heap else None
            if bound is None or ftime <= bound:
                return ftime
        if self._wheel:
            cur = self._cur
            idx = self._cur_idx
            if idx < len(cur) and not cur[idx].cancelled:
                # A live activated-bucket head: only times matter here, so
                # one head-to-head against the heap is enough.
                timer_time = cur[idx].time
                heap = self._heap
                while heap and heap[0].cancelled:
                    heapq.heappop(heap)
                if heap and heap[0].time < timer_time:
                    timer_time = heap[0].time
            elif idx < len(cur) or self._bucket_heap:
                timer, _ = self._timer_head()
                timer_time = None if timer is None else timer.time
            else:
                heap = self._heap
                while heap and heap[0].cancelled:
                    heapq.heappop(heap)
                timer_time = heap[0].time if heap else None
        else:
            heap = self._heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
            timer_time = heap[0].time if heap else None
        if fast:
            if timer_time is not None and timer_time < fast[0].time:
                return timer_time
            return fast[0].time
        if timer_time is not None:
            return timer_time
        return None

    def clear(self):
        for event in self._heap:
            event.queue = None
        for event in self._fast:
            event.queue = None
        for bucket in self._buckets.values():
            for event in bucket[1:]:
                event.queue = None
        for index in range(self._cur_idx, len(self._cur)):
            self._cur[index].queue = None
        self._heap = []
        self._fast.clear()
        self._buckets = {}
        self._bucket_heap = []
        self._cur = []
        self._cur_idx = 0
        self._cur_no = -1
        self._live = 0


class SimEvent:
    """A one-shot event that simulation processes can wait on.

    Usage from a process generator::

        value = yield some_event      # suspends until triggered

    Triggering an already-triggered event raises; waiting on a triggered
    event resumes the waiter immediately (at the current instant) with the
    stored value, so there is no lost-wakeup race.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim, name=""):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value = None
        self._waiters = []

    def trigger(self, value=None):
        """Fire the event, resuming every waiter with ``value``."""
        if self.triggered:
            raise RuntimeError("SimEvent %r triggered twice" % (self.name,))
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        schedule_now = self.sim._schedule_now
        for callback in waiters:
            schedule_now(callback, (value,))

    def add_waiter(self, callback):
        """Register ``callback(value)``; called now if already triggered."""
        if self.triggered:
            self.sim._schedule_now(callback, (self.value,))
        else:
            self._waiters.append(callback)

    def discard_waiter(self, callback):
        """Remove a pending waiter if present (used by process kill)."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return "SimEvent(%r, %s)" % (self.name, state)
