"""Event primitives for the discrete-event kernel.

Two kinds of "event" live here and they are deliberately distinct:

* :class:`ScheduledEvent` -- an entry in the simulator's time-ordered queue
  (a callback that fires at a simulated instant).  Created by
  :meth:`Simulator.schedule <repro.simkernel.simulator.Simulator.schedule>`.
* :class:`SimEvent` -- a one-shot condition that processes can *wait on*
  (``yield event``) and that any code can *trigger* with a value.  This is
  the rendezvous primitive used for message queues, job completion and
  process joins.

The queue has two lanes.  Future-time (or non-default-priority) events go
through a binary heap as usual.  Same-instant default-priority events --
``spawn``, ``SimEvent.trigger``, already-triggered ``add_waiter`` -- go
through a plain FIFO deque instead, skipping the O(log n) heap entirely.
Because fast-lane entries always carry the *current* simulated time and
priority 0, and are appended in strictly increasing ``seq`` order, a single
head-to-head comparison against the heap top reproduces the exact
(time, priority, seq) global ordering the single-heap design had.
"""

import collections
import heapq
import itertools


class ScheduledEvent:
    """A cancellable callback scheduled at an absolute simulated time.

    Ordering: time, then priority (lower fires first), then insertion order,
    which keeps runs fully deterministic.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "queue")

    def __init__(self, time, priority, seq, callback, args, queue=None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.queue = queue

    def cancel(self):
        """Prevent the callback from firing (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            queue = self.queue
            if queue is not None:
                queue._live -= 1
                self.queue = None

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other):
        # Inlined field comparisons: this runs on every heap sift, so the
        # tuple allocation sort_key() would do per comparison is pure waste.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "ScheduledEvent(t=%g, prio=%d, %s)" % (self.time, self.priority, state)


class EventQueue:
    """A deterministic priority queue of :class:`ScheduledEvent`.

    Cancelled events stay in their lane and are skipped on pop; this keeps
    cancellation O(1) at the cost of occasional lazy cleanup.  ``len`` is
    O(1): a live count is incremented on push and decremented by both pop
    and :meth:`ScheduledEvent.cancel`.
    """

    def __init__(self):
        self._heap = []
        self._fast = collections.deque()
        self._counter = itertools.count()
        self._live = 0

    def __len__(self):
        return self._live

    def push(self, time, callback, args=(), priority=0):
        """Insert a callback to fire at absolute ``time``; returns the event."""
        event = ScheduledEvent(time, priority, next(self._counter), callback,
                               args, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def push_fifo(self, time, callback, args=()):
        """Fast-lane insert for a default-priority event at the current time.

        The caller must guarantee ``time`` is the simulator's *current*
        instant (no heap entry fires earlier than it): :meth:`pop` then only
        needs one comparison against the heap head to keep the global
        (time, priority, seq) order exact.
        """
        event = ScheduledEvent(time, 0, next(self._counter), callback, args,
                               self)
        self._fast.append(event)
        self._live += 1
        return event

    def pop(self):
        """Remove and return the next non-cancelled event, or None if empty."""
        fast = self._fast
        while fast and fast[0].cancelled:
            fast.popleft()
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if fast:
            first = fast[0]
            if heap:
                head = heap[0]
                if head.time < first.time or (
                        head.time == first.time and (
                            head.priority < first.priority or (
                                head.priority == first.priority
                                and head.seq < first.seq))):
                    event = heapq.heappop(heap)
                else:
                    event = fast.popleft()
            else:
                event = fast.popleft()
        elif heap:
            event = heapq.heappop(heap)
        else:
            return None
        self._live -= 1
        event.queue = None
        return event

    def peek_time(self):
        """Time of the next live event, or None."""
        fast = self._fast
        while fast and fast[0].cancelled:
            fast.popleft()
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if fast:
            if heap and heap[0].time < fast[0].time:
                return heap[0].time
            return fast[0].time
        if heap:
            return heap[0].time
        return None

    def clear(self):
        for event in self._heap:
            event.queue = None
        for event in self._fast:
            event.queue = None
        self._heap = []
        self._fast.clear()
        self._live = 0


class SimEvent:
    """A one-shot event that simulation processes can wait on.

    Usage from a process generator::

        value = yield some_event      # suspends until triggered

    Triggering an already-triggered event raises; waiting on a triggered
    event resumes the waiter immediately (at the current instant) with the
    stored value, so there is no lost-wakeup race.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim, name=""):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value = None
        self._waiters = []

    def trigger(self, value=None):
        """Fire the event, resuming every waiter with ``value``."""
        if self.triggered:
            raise RuntimeError("SimEvent %r triggered twice" % (self.name,))
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        schedule_now = self.sim._schedule_now
        for callback in waiters:
            schedule_now(callback, (value,))

    def add_waiter(self, callback):
        """Register ``callback(value)``; called now if already triggered."""
        if self.triggered:
            self.sim._schedule_now(callback, (self.value,))
        else:
            self._waiters.append(callback)

    def discard_waiter(self, callback):
        """Remove a pending waiter if present (used by process kill)."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return "SimEvent(%r, %s)" % (self.name, state)
