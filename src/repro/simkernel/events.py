"""Event primitives for the discrete-event kernel.

Two kinds of "event" live here and they are deliberately distinct:

* :class:`ScheduledEvent` -- an entry in the simulator's time-ordered queue
  (a callback that fires at a simulated instant).  Created by
  :meth:`Simulator.schedule <repro.simkernel.simulator.Simulator.schedule>`.
* :class:`SimEvent` -- a one-shot condition that processes can *wait on*
  (``yield event``) and that any code can *trigger* with a value.  This is
  the rendezvous primitive used for message queues, job completion and
  process joins.
"""

import heapq
import itertools


class ScheduledEvent:
    """A cancellable callback scheduled at an absolute simulated time.

    Ordering: time, then priority (lower fires first), then insertion order,
    which keeps runs fully deterministic.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(self, time, priority, seq, callback, args):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other):
        return self.sort_key() < other.sort_key()

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "ScheduledEvent(t=%g, prio=%d, %s)" % (self.time, self.priority, state)


class EventQueue:
    """A deterministic priority queue of :class:`ScheduledEvent`.

    Cancelled events stay in the heap and are skipped on pop; this keeps
    cancellation O(1) at the cost of occasional lazy cleanup.
    """

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()

    def __len__(self):
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time, callback, args=(), priority=0):
        """Insert a callback to fire at absolute ``time``; returns the event."""
        event = ScheduledEvent(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        """Remove and return the next non-cancelled event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self):
        """Time of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self):
        self._heap = []


class SimEvent:
    """A one-shot event that simulation processes can wait on.

    Usage from a process generator::

        value = yield some_event      # suspends until triggered

    Triggering an already-triggered event raises; waiting on a triggered
    event resumes the waiter immediately (at the current instant) with the
    stored value, so there is no lost-wakeup race.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim, name=""):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value = None
        self._waiters = []

    def trigger(self, value=None):
        """Fire the event, resuming every waiter with ``value``."""
        if self.triggered:
            raise RuntimeError("SimEvent %r triggered twice" % (self.name,))
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, callback, (value,))

    def add_waiter(self, callback):
        """Register ``callback(value)``; called now if already triggered."""
        if self.triggered:
            self.sim.schedule(0.0, callback, (self.value,))
        else:
            self._waiters.append(callback)

    def discard_waiter(self, callback):
        """Remove a pending waiter if present (used by process kill)."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return "SimEvent(%r, %s)" % (self.name, state)
