"""Log-bucketed streaming latency histogram.

The flight recorder (PRs 4/6) can answer forensic percentile questions
after a run by sorting every recorded value (``TimeSeries.percentile``,
O(n log n) per query, O(n) memory).  That shape cannot back a *live*
health layer: an operator asking "what is the ship-stage p99 right now"
on a grid pushing millions of spans needs O(1) ingest, bounded memory
and cheap quantile reads -- and the per-shard/per-site histograms must
merge exactly so the root and the federation gateways can aggregate.

:class:`LatencyHistogram` is the standard log-bucketed sketch (DDSketch
/ HdrHistogram family): values land in geometrically spaced buckets
``[growth**i, growth**(i+1))`` and a quantile query walks the sparse
bucket table returning each bucket's geometric midpoint.  The relative
error of any reported quantile is therefore bounded by the bucket shape
alone::

    max relative error = sqrt(growth) - 1

The default ``growth=1.015`` bounds error at ~0.75%, comfortably inside
the 1% contract pinned by the property tests, while a full nanosecond-
to-hour dynamic range (13 decades) still fits in ~2000 sparse buckets.
"""

import math

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Mergeable streaming histogram with bounded relative quantile error.

    Args:
        growth: geometric bucket growth factor (> 1).  Quantile error is
            bounded by ``sqrt(growth) - 1``; memory is bounded by the
            number of *occupied* buckets, O(log(max/min) / log(growth)).

    ``record`` is O(1) (one ``math.log`` + dict update), ``quantile`` is
    O(buckets log buckets), ``merge`` is O(buckets of other) and exact:
    merging is commutative and associative because buckets are integer
    counters, so sharded histograms aggregate without error inflation.
    """

    __slots__ = ("growth", "_inv_log_growth", "_log_growth", "_buckets",
                 "_zero", "count", "total", "_min", "_max")

    def __init__(self, growth=1.015):
        if growth <= 1.0:
            raise ValueError("growth must be > 1 (got %r)" % (growth,))
        self.growth = growth
        self._log_growth = math.log(growth)
        self._inv_log_growth = 1.0 / self._log_growth
        self._buckets = {}  # bucket index -> count
        self._zero = 0      # values == 0 get their own exact bucket
        self.count = 0
        self.total = 0.0
        self._min = None
        self._max = None

    # -- ingest -----------------------------------------------------------

    def record(self, value):
        """Record one non-negative latency value.  O(1)."""
        if value < 0:
            raise ValueError("latency cannot be negative (got %r)" % (value,))
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value == 0:
            self._zero += 1
            return
        index = int(math.floor(math.log(value) * self._inv_log_growth))
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    # -- queries ----------------------------------------------------------

    @property
    def min(self):
        return self._min

    @property
    def max(self):
        return self._max

    @property
    def mean(self):
        if not self.count:
            return None
        return self.total / self.count

    def _representative(self, index):
        # Geometric midpoint of [growth**i, growth**(i+1)): equidistant
        # (in relative terms) from both edges, hence the sqrt(growth)-1
        # error bound.
        return math.exp(self._log_growth * (index + 0.5))

    def quantile(self, q):
        """Value at percentile ``q`` in [0, 100], or None when empty.

        q=0 and q=100 return the exact observed min/max; interior
        quantiles use nearest-rank over the bucket table and carry the
        ``sqrt(growth) - 1`` relative error bound.
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100] (got %r)" % (q,))
        if not self.count:
            return None
        if q == 0:
            return self._min
        if q == 100:
            return self._max
        # Nearest-rank: the smallest bucket whose cumulative count
        # covers rank ceil(q/100 * count) >= 1.
        rank = int(math.ceil(q / 100.0 * self.count))
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                value = self._representative(index)
                # The true value lies inside [min, max]; clamping can
                # only shrink the error of edge buckets.
                if self._max is not None and value > self._max:
                    value = self._max
                if self._min is not None and value < self._min:
                    value = self._min
                return value
        return self._max  # numeric safety net; unreachable in practice

    def percentiles(self, qs=(50, 95, 99)):
        """Mapping ``q -> quantile(q)`` for each q in ``qs``."""
        return {q: self.quantile(q) for q in qs}

    # -- merge / serialisation -------------------------------------------

    def merge(self, other):
        """Fold ``other`` into self (in place).  Exact: integer counter
        addition, so merge order never changes any reported quantile."""
        if not isinstance(other, LatencyHistogram):
            raise TypeError("can only merge LatencyHistogram instances")
        if other.growth != self.growth:
            raise ValueError(
                "cannot merge histograms with different growth factors "
                "(%r vs %r)" % (self.growth, other.growth))
        buckets = self._buckets
        for index, count in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + count
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        if other._min is not None:
            if self._min is None or other._min < self._min:
                self._min = other._min
        if other._max is not None:
            if self._max is None or other._max > self._max:
                self._max = other._max
        return self

    def to_dict(self):
        """JSON-serialisable snapshot (round-trips via :meth:`from_dict`)."""
        return {
            "growth": self.growth,
            "buckets": {str(index): count
                        for index, count in sorted(self._buckets.items())},
            "zero": self._zero,
            "count": self.count,
            "total": self.total,
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, payload):
        histogram = cls(growth=payload["growth"])
        histogram._buckets = {int(index): count
                              for index, count in payload["buckets"].items()}
        histogram._zero = payload["zero"]
        histogram.count = payload["count"]
        histogram.total = payload["total"]
        histogram._min = payload["min"]
        histogram._max = payload["max"]
        return histogram

    def summary(self, qs=(50, 95, 99)):
        """Compact stats dict used by ``pipeline_report`` and the CLI."""
        stats = {
            "count": self.count,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
        }
        for q, value in self.percentiles(qs).items():
            stats["p%g" % q] = value
        return stats

    def __len__(self):
        return self.count

    def __repr__(self):
        return ("LatencyHistogram(count=%d, min=%r, max=%r, buckets=%d)"
                % (self.count, self._min, self._max,
                   len(self._buckets) + (1 if self._zero else 0)))
