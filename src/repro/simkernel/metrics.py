"""Lightweight metric primitives used across the reproduction.

These are intentionally simple: the evaluation harness mostly reads the
resource ledgers directly, but components also expose counters (messages
sent, rules fired, jobs dispatched) and time series (queue depth over time)
through a :class:`MetricRegistry`.
"""

import bisect
import math


def _labeled_name(name, labels):
    """Canonical registry key for a labelled metric: ``name{k=v,...}``."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join(
        "%s=%s" % (key, value) for key, value in sorted(labels.items())))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("Counter can only increase (got %r)" % amount)
        self.value += amount

    def __repr__(self):
        return "Counter(%s=%g)" % (self.name, self.value)


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "value")

    def __init__(self, name, value=0.0):
        self.name = name
        self.value = value

    def set(self, value):
        self.value = value

    def add(self, delta):
        self.value += delta

    def __repr__(self):
        return "Gauge(%s=%g)" % (self.name, self.value)


class TimeSeries:
    """An append-only series of ``(time, value)`` observations."""

    __slots__ = ("name", "points")

    def __init__(self, name):
        self.name = name
        self.points = []

    def record(self, time, value):
        if self.points and time < self.points[-1][0]:
            raise ValueError("time must be non-decreasing")
        self.points.append((time, value))

    def __len__(self):
        return len(self.points)

    def values(self):
        return [value for _, value in self.points]

    def times(self):
        return [time for time, _ in self.points]

    def last(self):
        if not self.points:
            return None
        return self.points[-1][1]

    def mean(self):
        if not self.points:
            return 0.0
        return sum(value for _, value in self.points) / len(self.points)

    def maximum(self):
        if not self.points:
            return 0.0
        return max(value for _, value in self.points)

    def percentile(self, q):
        """Linear-interpolated percentile of the recorded values; q in [0,100].

        **Cost: O(n log n) per query** -- every call sorts the full point
        list -- and the list itself is unbounded, so this is an *offline*
        analysis helper, not a monitoring primitive.  Hot paths that need
        repeated quantile reads over a live stream (the health layer, the
        ``stage_latency`` pipeline audit) use
        :class:`repro.simkernel.histogram.LatencyHistogram` instead:
        O(1) record, bounded memory, <=1% relative quantile error.
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be within [0, 100]")
        if not self.points:
            return 0.0
        ordered = sorted(value for _, value in self.points)
        # Exact edges: q=0 is the minimum and q=100 the maximum by
        # definition; short-circuiting also keeps float noise in
        # (q/100)*(n-1) from pushing the bracket off either end.
        if q == 0 or len(ordered) == 1:
            return ordered[0]
        if q == 100:
            return ordered[-1]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = min(math.ceil(rank), len(ordered) - 1)
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        interpolated = ordered[low] * (1 - frac) + ordered[high] * frac
        # clamp: float rounding (e.g. subnormals) must not escape the bracket
        return min(max(interpolated, ordered[low]), ordered[high])

    def snapshot(self, window=None, max_points=None):
        """A bounded copy of the points: the long-run-safe view.

        ``record`` is O(1) but naive exports copy the whole point list --
        ruinous on long diurnal (X13) runs where one series accumulates
        hundreds of thousands of points.  This copies only what leaves:

        * ``window`` -- keep points within the trailing ``window`` seconds
          of the last observation (located by bisection, so the cost is
          O(log n + returned), not O(n));
        * ``max_points`` -- decimate to at most this many points, evenly
          strided, always keeping the first and last of the selection.

        Both ``None`` returns a plain full copy (the legacy behaviour).
        """
        points = self.points
        if window is not None and points:
            if window < 0:
                raise ValueError("window must be >= 0")
            start = points[-1][0] - window
            low = bisect.bisect_left(points, (start,))
            selected_start, selected_end = low, len(points)
        else:
            selected_start, selected_end = 0, len(points)
        count = selected_end - selected_start
        if max_points is not None and count > max_points:
            if max_points < 1:
                raise ValueError("max_points must be >= 1")
            if max_points == 1:
                return [points[selected_end - 1]]
            last = count - 1
            step = last / (max_points - 1)
            return [
                points[selected_start + round(index * step)]
                for index in range(max_points)
            ]
        return points[selected_start:selected_end]

    def time_weighted_mean(self, horizon=None):
        """Mean of a step function defined by the observations."""
        if not self.points:
            return 0.0
        end = horizon if horizon is not None else self.points[-1][0]
        total = 0.0
        for (t0, v0), (t1, _) in zip(self.points, self.points[1:]):
            total += v0 * (t1 - t0)
        last_t, last_v = self.points[-1]
        if end > last_t:
            total += last_v * (end - last_t)
        span = end - self.points[0][0]
        if span <= 0:
            return self.points[-1][1]
        return total / span

    def __repr__(self):
        return "TimeSeries(%s, n=%d)" % (self.name, len(self.points))


class MetricRegistry:
    """Namespaced factory/lookup for counters, gauges and series."""

    __slots__ = ("_counters", "_gauges", "_series")

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._series = {}

    def counter(self, name, labels=None):
        name = _labeled_name(name, labels)
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name, labels=None):
        name = _labeled_name(name, labels)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def series(self, name, labels=None):
        name = _labeled_name(name, labels)
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def snapshot(self, series_window=None, series_max_points=None):
        """Plain-dict dump of every metric (counters/gauges by value).

        ``series_window`` / ``series_max_points`` bound the exported point
        lists via :meth:`TimeSeries.snapshot` (long diurnal runs would
        otherwise copy every observation on every snapshot).
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "series": {
                n: s.snapshot(window=series_window,
                              max_points=series_max_points)
                for n, s in sorted(self._series.items())
            },
        }
