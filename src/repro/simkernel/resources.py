"""Capacity-limited resources with busy-time accounting.

A :class:`Resource` models one of a host's serving elements -- CPU, disk
subsystem, or network interface.  Work arrives as :class:`Use` requests
carrying an abstract amount of *units* (the paper's Table 1 values).  The
resource serves requests one at a time in FIFO-within-priority order;
service time is ``units / capacity``.  Every served unit is recorded in a
ledger broken down by label, which is exactly what the Figure 6 bench reads
back out.
"""

import collections
import heapq
import itertools


class ResourceKind:
    """Resource categories used throughout the reproduction."""

    CPU = "cpu"
    DISK = "disk"
    NET = "network"

    ALL = (CPU, NET, DISK)


class Use:
    """A pending request for ``units`` of work on a resource.

    Created via :meth:`Resource.use`; yield it from a process.  After the
    yield resumes, :attr:`wait_time` and :attr:`service_time` describe how
    the request fared (useful for latency metrics).
    """

    __slots__ = (
        "resource",
        "units",
        "label",
        "priority",
        "process",
        "enqueued_at",
        "started_at",
        "wait_time",
        "service_time",
        "abandoned",
        "on_start",
        "on_complete",
    )

    def __init__(self, resource, units, label, priority):
        self.resource = resource
        self.units = units
        self.label = label
        self.priority = priority
        self.process = None
        self.enqueued_at = None
        self.started_at = None
        self.wait_time = None
        self.service_time = None
        self.abandoned = False
        self.on_start = None
        self.on_complete = None

    def __repr__(self):
        return "Use(%s, units=%g, label=%r)" % (
            self.resource.full_name,
            self.units,
            self.label,
        )


class Resource:
    """A single-server, FIFO-within-priority resource with a busy ledger.

    Args:
        sim: owning simulator.
        name: short name (e.g. ``"cpu"``).
        kind: one of :class:`ResourceKind`.
        capacity: units served per simulated second (must be > 0).
        owner: optional owning object (a Host); used in ``full_name``.
    """

    def __init__(self, sim, name, kind, capacity, owner=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive, got %r" % capacity)
        self.sim = sim
        self.name = name
        self.kind = kind
        self.capacity = float(capacity)
        self.owner = owner
        self.busy_time = 0.0
        self.total_units = 0.0
        self.units_by_label = collections.Counter()
        self.completed_requests = 0
        # Fast path: all real workloads enqueue at the default priority 0,
        # so waiting requests live in a plain FIFO deque (no per-request
        # tuple, no seq, no heap sift).  The first non-zero priority seen
        # migrates the queue into a heap and the resource stays in heap
        # mode from then on.
        self._fifo = collections.deque()
        self._heap = None
        self._seq = itertools.count()
        self._serving = None

    @property
    def full_name(self):
        if self.owner is not None:
            return "%s.%s" % (getattr(self.owner, "name", self.owner), self.name)
        return self.name

    @property
    def queue_length(self):
        """Requests waiting (not counting the one in service)."""
        if self._heap is not None:
            return len(self._heap)
        return len(self._fifo)

    @property
    def busy(self):
        return self._serving is not None

    def utilization(self, horizon=None):
        """Busy fraction over ``horizon`` (defaults to current sim time)."""
        if horizon is None:
            horizon = self.sim.now
        if horizon <= 0:
            return 0.0
        return self.busy_time / horizon

    def use(self, units, label="work", priority=0):
        """Build a :class:`Use` request; yield it from a process."""
        if units < 0:
            raise ValueError("units must be >= 0, got %r" % units)
        return Use(self, float(units), label, priority)

    def acquire(self, units, label="work", priority=0, on_start=None, on_complete=None):
        """Queue a request driven by callbacks instead of a process.

        The request joins the same FIFO/priority queue as yielded
        :class:`Use` requests and is served identically; ``on_start`` fires
        when service begins and ``on_complete`` when it ends, each receiving
        the request.  This lets engine-style callers (the batched transport)
        occupy the server without spawning a process per request.
        """
        if units < 0:
            raise ValueError("units must be >= 0, got %r" % units)
        request = Use(self, float(units), label, priority)
        request.on_start = on_start
        request.on_complete = on_complete
        request.enqueued_at = self.sim.now
        if self._heap is None and priority == 0:
            self._fifo.append(request)
        else:
            self._enqueue_slow(request)
        self._try_start()
        return request

    def charge(self, units, label="direct"):
        """Account units without occupying the server.

        Used for costs that are proportional to work done but not modelled
        as queueing (e.g. the far end of a network transfer).  Busy time
        still advances so utilization reflects the charge.
        """
        if units < 0:
            raise ValueError("units must be >= 0, got %r" % units)
        self.total_units += units
        self.units_by_label[label] += units
        self.busy_time += units / self.capacity

    # -- kernel internals -------------------------------------------------

    def _enqueue(self, process, request):
        request.process = process
        request.enqueued_at = self.sim.now
        if self._heap is None and request.priority == 0:
            self._fifo.append(request)
        else:
            self._enqueue_slow(request)
        self._try_start()

    def _enqueue_slow(self, request):
        if self._heap is None:
            # First non-default priority: migrate the FIFO into a heap,
            # preserving arrival order via fresh monotonic seqs.
            self._heap = []
            for queued in self._fifo:
                self._heap.append((queued.priority, next(self._seq), queued))
            self._fifo.clear()
        heapq.heappush(self._heap, (request.priority, next(self._seq), request))

    def _abandon(self, request):
        """Mark a request abandoned (its process was detached).

        Abandoned requests are lazily skipped when they reach the head of
        the queue.  If the request is *in service*, the server stays
        occupied until the already-scheduled completion fires -- clearing
        ``_serving`` here would let a later arrival start a second service
        while the abandoned one's ``_complete`` is still pending, briefly
        double-serving the single-server resource.
        """
        request.abandoned = True

    def _try_start(self):
        if self._serving is not None:
            return
        fifo = self._fifo
        while fifo:
            request = fifo.popleft()
            if not request.abandoned:
                self._start(request)
                return
        heap = self._heap
        if heap:
            while heap:
                request = heapq.heappop(heap)[2]
                if not request.abandoned:
                    self._start(request)
                    return

    def _start(self, request):
        self._serving = request
        request.started_at = self.sim.now
        request.wait_time = request.started_at - request.enqueued_at
        duration = request.units / self.capacity
        request.service_time = duration
        self.sim.schedule(duration, self._complete, (request,))
        if request.on_start is not None:
            request.on_start(request)

    def _complete(self, request):
        if self._serving is request:
            self._serving = None
        if not request.abandoned:
            self.busy_time += request.service_time
            self.total_units += request.units
            self.units_by_label[request.label] += request.units
            self.completed_requests += 1
            if request.process is not None:
                self.sim._step(request.process, send=request)
            elif request.on_complete is not None:
                request.on_complete(request)
        self._try_start()

    def snapshot(self):
        """A plain-dict view of the ledger (stable for reports/tests)."""
        return {
            "name": self.full_name,
            "kind": self.kind,
            "capacity": self.capacity,
            "busy_time": self.busy_time,
            "total_units": self.total_units,
            "completed_requests": self.completed_requests,
            "units_by_label": dict(self.units_by_label),
        }

    def __repr__(self):
        return "Resource(%s, kind=%s, busy=%g)" % (
            self.full_name,
            self.kind,
            self.busy_time,
        )
