"""Deterministic, named random streams.

Every stochastic component pulls its randomness from a named stream derived
from the master seed, so adding a new component (or reordering event
processing) never perturbs the draws seen by existing ones.  This is the
standard multi-stream design for reproducible simulation experiments.
"""

import hashlib
import random


def derive_seed(master_seed, stream_name):
    """Derive a 64-bit child seed from ``(master_seed, stream_name)``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(
        ("%s/%s" % (master_seed, stream_name)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named random stream with the distributions the simulation needs."""

    def __init__(self, master_seed, name):
        self.name = name
        self.seed = derive_seed(master_seed, name)
        self._random = random.Random(self.seed)

    def uniform(self, low, high):
        return self._random.uniform(low, high)

    def random(self):
        return self._random.random()

    def expovariate(self, rate):
        """Exponential inter-arrival sample; rate must be positive."""
        if rate <= 0:
            raise ValueError("rate must be positive, got %r" % rate)
        return self._random.expovariate(rate)

    def gauss(self, mu, sigma):
        return self._random.gauss(mu, sigma)

    def bounded_gauss(self, mu, sigma, low, high):
        """Gaussian sample clamped into [low, high]."""
        return min(high, max(low, self._random.gauss(mu, sigma)))

    def randint(self, low, high):
        return self._random.randint(low, high)

    def choice(self, sequence):
        if not sequence:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(sequence)

    def sample(self, population, k):
        return self._random.sample(population, k)

    def shuffle(self, items):
        """Shuffle ``items`` in place and also return it for convenience."""
        self._random.shuffle(items)
        return items

    def jitter(self, value, fraction):
        """``value`` perturbed uniformly by up to +/- ``fraction`` of itself."""
        if fraction < 0:
            raise ValueError("fraction must be >= 0")
        spread = value * fraction
        return value + self._random.uniform(-spread, spread)

    def __repr__(self):
        return "RngStream(%r)" % (self.name,)
