"""The simulator: clock, event loop and generator-based processes.

Processes are plain Python generators.  They communicate with the kernel by
``yield``-ing one of:

* a number -- sleep for that many simulated seconds;
* a :class:`~repro.simkernel.events.SimEvent` -- wait until it is triggered
  (the trigger value becomes the result of the yield);
* a :class:`~repro.simkernel.resources.Use` request (obtained from
  ``resource.use(units)``) -- queue for the resource and resume once the
  work has been served (busy time is accounted on the resource);
* another :class:`Process` -- join it (the joined process's return value
  becomes the result of the yield).

Example::

    def worker(sim, cpu):
        yield 1.0                      # sleep
        yield cpu.use(10, label="parse")
        return "done"

    sim = Simulator(seed=42)
    proc = sim.spawn(worker(sim, cpu), name="worker")
    sim.run()
    assert proc.result == "done"

Process setup is deliberately allocation-light (the spawn/join path runs
hundreds of thousands of times per experiment): the ``.completion``
:class:`SimEvent`, the per-process ``_Resumer`` and the unique-ified name
string are all materialized lazily, only when something actually waits on
/ reads them.  A plain ``yield child`` join never touches a SimEvent at
all -- the child keeps a slim list of join callbacks and schedules them on
finish, in exactly the order (and through exactly the same zero-delay
lane) the eager completion event used, so event ordering is unchanged
(pinned by ``tests/test_simkernel_determinism.py``).
"""

from repro.simkernel.events import EventQueue, SimEvent
from repro.simkernel.resources import Use
from repro.simkernel.rng import RngStream


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused."""


class ProcessKilled(Exception):
    """Thrown into a process generator when it is killed."""


class Interrupted(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """A running simulation process wrapping a generator.

    Attributes:
        name: human-readable identifier (unique-ified by the simulator).
        done: True once the generator has finished or been killed.
        result: the generator's return value (``None`` if killed/failed).
        error: exception that escaped the generator, if any.
    """

    __slots__ = ("sim", "generator", "_name", "_name_count", "done",
                 "result", "error", "alive", "_completion", "_joiners",
                 "_pending_wait", "_pending_timer", "_pending_use",
                 "_resumer")

    def __init__(self, sim, generator, name, name_count=0):
        self.sim = sim
        self.generator = generator
        self._name = name
        self._name_count = name_count
        self.done = False
        self.result = None
        self.error = None
        self.alive = True
        self._completion = None  # SimEvent, materialized on first access
        self._joiners = None  # callbacks resumed with the result on finish
        self._pending_wait = None  # (SimEvent-or-Process, callback) while blocked
        self._pending_timer = None  # ScheduledEvent while sleeping
        self._pending_use = None  # Use while queued/served on a resource
        # A process waits on at most one thing at a time, so a single
        # resumer is reused for every event wait / join it ever makes --
        # created on the first one.
        self._resumer = None

    # -- public API ----------------------------------------------------

    @property
    def name(self):
        """The unique-ified process name (formatted lazily: most spawns
        never read it, and "%s#%d" per spawn is measurable at kernel
        microbench rates)."""
        count = self._name_count
        if count:
            self._name = "%s#%d" % (self._name, count)
            self._name_count = 0
        return self._name

    @property
    def completion(self):
        """SimEvent triggered with the result when the process ends.

        Materialized on demand: a plain ``yield process`` join uses the
        slim joiner list instead, so most processes never allocate this.
        """
        completion = self._completion
        if completion is None:
            completion = SimEvent(self.sim, name=self.name + ".done")
            self._completion = completion
            if self.done:
                completion.trigger(self.result)
        return completion

    def kill(self):
        """Terminate the process immediately; no further resumption."""
        if self.done or not self.alive:
            return
        self.alive = False
        self._detach()
        try:
            self.generator.close()
        except Exception as exc:  # a misbehaving finally block
            self.error = exc
        self._finish(None, killed=True)

    def interrupt(self, cause=None):
        """Throw :class:`Interrupted` into the process at its wait point."""
        if self.done or not self.alive:
            return
        self._detach()
        self.sim._step(self, throw=Interrupted(cause))

    # -- kernel internals ----------------------------------------------

    def discard_waiter(self, callback):
        """Remove a pending join callback (mirrors SimEvent.discard_waiter
        so :meth:`_detach` can treat event waits and joins uniformly)."""
        joiners = self._joiners
        if joiners is not None:
            try:
                joiners.remove(callback)
            except ValueError:
                pass

    def _detach(self):
        """Remove the process from whatever it is currently blocked on."""
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        if self._pending_wait is not None:
            target, callback = self._pending_wait
            target.discard_waiter(callback)
            self._pending_wait = None
        if self._pending_use is not None:
            self._pending_use.resource._abandon(self._pending_use)
            self._pending_use = None

    def _finish(self, result, killed=False):
        self.done = True
        self.alive = False
        self.result = result
        # The generator is spent: dropping the reference frees its frame by
        # refcount instead of leaving a Process<->frame cycle for the GC
        # (measurable as gen-2 pauses at kernel microbench spawn rates).
        self.generator = None
        completion = self._completion
        if completion is not None and not completion.triggered:
            completion.trigger(result)
        joiners = self._joiners
        if joiners is not None:
            self._joiners = None
            schedule_now = self.sim._schedule_now
            step = self.sim._step
            for callback in joiners:
                # Joiners are always _Resumer instances: schedule the step
                # directly instead of paying an extra __call__ frame each.
                schedule_now(step, (callback.process, result))
        if killed:
            return
        if self.error is not None and not self.sim.swallow_process_errors:
            raise self.error

    def __repr__(self):
        state = "done" if self.done else "running"
        return "Process(%r, %s)" % (self.name, state)


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: master seed; all component RNG streams derive from it.
        swallow_process_errors: if True, exceptions escaping processes are
            recorded on ``process.error`` instead of aborting the run
            (used by fault-injection benches).
    """

    def __init__(self, seed=0, swallow_process_errors=False):
        self.now = 0.0
        self.seed = seed
        self.swallow_process_errors = swallow_process_errors
        self.queue = EventQueue()
        self.spawned = 0
        self._name_counts = {}
        self._trace_hooks = []
        self._profiler = None
        self._rng_streams = {}

    # -- time & events ---------------------------------------------------

    def schedule(self, delay, callback, args=(), priority=0):
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay == 0 and priority == 0:
            # Zero-delay lane: same-instant default-priority callbacks skip
            # the timer structures entirely (see EventQueue.push_fifo).
            return self.queue.push_fifo(self.now, callback, args)
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay=%r)" % delay)
        return self.queue.push(self.now + delay, callback, args, priority)

    def _schedule_now(self, callback, args=()):
        """Internal zero-delay schedule used on the kernel's hot paths."""
        return self.queue.push_fifo(self.now, callback, args)

    def event(self, name=""):
        """Create a fresh :class:`SimEvent` bound to this simulator."""
        return SimEvent(self, name=name)

    def timeout_event(self, delay, value=None, name="timeout"):
        """A SimEvent that self-triggers after ``delay`` seconds."""
        event = self.event(name)
        self.schedule(delay, event.trigger, (value,))
        return event

    # -- processes --------------------------------------------------------

    def spawn(self, generator, name=None):
        """Start a new process from a generator; returns the Process."""
        if name is None:
            name = getattr(generator, "__name__", "process")
        counts = self._name_counts
        count = counts.get(name, 0)
        counts[name] = count + 1
        process = Process(self, generator, name, count)
        self.spawned += 1
        self.queue.push_fifo(self.now, self._step, (process, None, None))
        return process

    def _step(self, process, send=None, throw=None):
        """Advance ``process`` by one yield."""
        if process.done or not process.alive:
            return
        process._pending_wait = None
        process._pending_timer = None
        process._pending_use = None
        try:
            if throw is not None:
                item = process.generator.throw(throw)
            else:
                item = process.generator.send(send)
        except StopIteration as stop:
            process._finish(stop.value)
            return
        except (Interrupted, ProcessKilled):
            process._finish(None, killed=True)
            return
        except Exception as exc:
            process.error = exc
            process._finish(None, killed=self.swallow_process_errors)
            return
        self._dispatch_yield(process, item)

    def _dispatch_yield(self, process, item):
        if isinstance(item, (int, float)):
            # Inlined schedule(): sleeps run at kernel microbench rates.
            if item > 0:
                process._pending_timer = self.queue.push(
                    self.now + item, self._step, (process, None, None)
                )
            elif item == 0:
                self.queue.push_fifo(self.now, self._step, (process, None, None))
            else:
                self._step(process, throw=SimulationError("negative sleep %r" % item))
        elif isinstance(item, SimEvent):
            callback = process._resumer
            if callback is None:
                callback = process._resumer = _Resumer(self, process)
            process._pending_wait = (item, callback)
            item.add_waiter(callback)
        elif isinstance(item, Use):
            process._pending_use = item
            item.resource._enqueue(process, item)
        elif isinstance(item, Process):
            callback = process._resumer
            if callback is None:
                callback = process._resumer = _Resumer(self, process)
            if item.done:
                # One-shot join fast path: the result is already known, so
                # resume through the zero-delay lane exactly as a triggered
                # completion event would have.
                self.queue.push_fifo(self.now, callback, (item.result,))
                return
            completion = item._completion
            if completion is not None:
                # Someone materialized the completion event -- keep every
                # waiter (event and join alike) in its single waiter list
                # so resumption order is exactly the eager-SimEvent order.
                process._pending_wait = (completion, callback)
                completion.add_waiter(callback)
                return
            joiners = item._joiners
            if joiners is None:
                joiners = item._joiners = []
            joiners.append(callback)
            process._pending_wait = (item, callback)
        else:
            self._step(
                process,
                throw=SimulationError("process yielded unsupported %r" % (item,)),
            )

    # -- running -----------------------------------------------------------

    def run(self, until=None, max_events=None):
        """Run until the queue drains, ``until`` is reached, or event cap hit.

        Returns the simulated time at which the run stopped.
        """
        executed = 0
        queue = self.queue
        pop = queue.pop
        bounded = until is not None or max_events is not None
        hooks = self._trace_hooks
        profiler = self._profiler
        if not bounded and profiler is None:
            # The unbounded, unprofiled loop is the kernel's hottest path:
            # strip the per-event bookkeeping branches entirely.  ``hooks``
            # is the live list, so hooks added mid-run are still honoured.
            while True:
                event = pop()
                if event is None:
                    break
                if event.time < self.now - 1e-12:
                    raise SimulationError("time went backwards")
                self.now = event.time
                if hooks:
                    for hook in hooks:
                        hook(self.now, event)
                event.callback(*event.args)
            return self.now
        if profiler is not None:
            from time import perf_counter
            account = profiler.account
        elif until is not None and max_events is None:
            # Until-only loop: no event counter, no per-event bound-mode
            # branches.  ``run_until_records`` drives the big-topology
            # benches through repeated bounded slices, so at devices=5000
            # this loop executes every kernel event of the run.
            peek = queue.peek_time
            while True:
                next_time = peek()
                if next_time is None:
                    break
                if next_time > until:
                    self.now = until
                    break
                event = pop()
                if event.time < self.now - 1e-12:
                    raise SimulationError("time went backwards")
                self.now = event.time
                if hooks:
                    for hook in hooks:
                        hook(self.now, event)
                event.callback(*event.args)
            return self.now
        while True:
            if bounded:
                if until is not None:
                    next_time = queue.peek_time()
                    if next_time is None:
                        break
                    if next_time > until:
                        self.now = until
                        break
                if max_events is not None and executed >= max_events:
                    break
                executed += 1
            event = pop()
            if event is None:
                break
            if event.time < self.now - 1e-12:
                raise SimulationError("time went backwards")
            self.now = event.time
            if hooks:
                for hook in hooks:
                    hook(self.now, event)
            if profiler is None:
                event.callback(*event.args)
            else:
                started = perf_counter()
                event.callback(*event.args)
                account(event.callback, perf_counter() - started)
        return self.now

    def add_trace_hook(self, hook):
        """Register ``hook(now, scheduled_event)`` called before each event."""
        self._trace_hooks.append(hook)

    def set_profiler(self, profiler):
        """Install (or, with ``None``, remove) a kernel profiler.

        ``profiler.account(callback, elapsed_seconds)`` is called after
        every executed event -- see
        :class:`~repro.simkernel.telemetry.KernelProfiler`.  Off by
        default; takes effect on the next :meth:`run` call (the loop caches
        the profiler reference for speed).
        """
        self._profiler = profiler

    # -- randomness ----------------------------------------------------------

    def rng(self, stream_name):
        """A named deterministic RNG stream derived from the master seed."""
        stream = self._rng_streams.get(stream_name)
        if stream is None:
            stream = RngStream(self.seed, stream_name)
            self._rng_streams[stream_name] = stream
        return stream

    def __repr__(self):
        return "Simulator(now=%g, pending=%d)" % (self.now, len(self.queue))


class _Resumer:
    """A hashable callback resuming a process with the event value."""

    __slots__ = ("sim", "process")

    def __init__(self, sim, process):
        self.sim = sim
        self.process = process

    def __call__(self, value):
        self.sim._step(self.process, value)

    def __eq__(self, other):
        return isinstance(other, _Resumer) and other.process is self.process

    def __hash__(self):
        return hash(id(self.process))
