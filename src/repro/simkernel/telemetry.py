"""Causal tracing + unified telemetry: the pipeline flight recorder.

:mod:`repro.simkernel.trace` answers "what happened, in order?" with a flat
event log.  This module answers the harder operational question -- "where
did batch 17 spend its time, and why did it never reach a report?" -- by
recording **spans**: named intervals with a causal parent, grouped into
traces that follow one collector batch through the Figure-2 pipeline
(collect -> ship -> classify -> notify -> dispatch -> analyze -> report).

Three pieces:

* :class:`SpanRecorder` -- a bounded store of :class:`Span` objects with
  deterministic ids (two identical seeded runs produce identical span
  trees).  Exports a Chrome-trace/Perfetto JSON timeline
  (:meth:`SpanRecorder.to_chrome_trace`) that loads directly into
  ``chrome://tracing`` / https://ui.perfetto.dev.
* :class:`KernelProfiler` -- per-callback-qualname time/count accounting
  on the simulator hot loop (off by default; see
  :meth:`~repro.simkernel.simulator.Simulator.set_profiler`).
* :class:`Telemetry` -- the session facade: one recorder, one session-wide
  :class:`~repro.simkernel.metrics.MetricRegistry`, labelled metric
  *sources* (per grid / host / agent) and export helpers.

Everything here is passive Python bookkeeping: recording a span schedules
no events, draws no random numbers and charges no resources, so a run with
telemetry enabled is *simulation-identical* to the same run without it
(pinned by ``tests/test_telemetry.py``).

Span statuses form a small vocabulary:

``"open"``
    started, not yet ended (in flight, or leaked -- see orphan checks).
``"ok"``
    ended normally.
``"dead-letter"``
    the in-flight leg's envelope exhausted its retransmissions; terminal.
``"timeout"`` / ``"evicted"``
    a dispatch attempt retired by the Reaper / the heartbeat detector;
    non-terminal (a later attempt continues the chain).
``"abandoned"``
    the root gave up on a cluster/cross job; terminal for that cluster but
    the dataset still finalizes with an error finding.
"""

import collections
import json
import os


#: Spans whose status ends a chain without reaching the next stage.
TERMINAL_STATUSES = frozenset(("dead-letter", "abandoned"))

#: The Figure-2 pipeline stages, in causal order.
PIPELINE_STAGES = (
    "collect", "ship", "classify", "notify", "dispatch", "analyze", "report",
)


class Span:
    """One named interval with a causal parent.

    Attributes:
        span_id: recorder-unique integer (deterministic allocation order).
        trace_id: the trace (one per collector batch) this span belongs to.
        parent_id: causal parent span id, or ``None`` for roots.
        name: stage name ("collect", "ship", ... or anything else).
        grid: which grid did the work ("collector", "classifier",
            "processor", "interface", "network", "kernel").
        host / agent: where the work happened.
        t_start / t_end: simulated seconds (``t_end`` None while open).
        status: see module docstring.
        links: extra causal parents as ``(trace_id, span_id)`` tuples --
            used at merge points (many batches -> one dataset).
        detail: free-form dict of small JSON-able values.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "grid", "host",
                 "agent", "t_start", "t_end", "status", "links", "detail")

    def __init__(self, span_id, trace_id, parent_id, name, grid, host, agent,
                 t_start, detail):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.grid = grid
        self.host = host
        self.agent = agent
        self.t_start = t_start
        self.t_end = None
        self.status = "open"
        self.links = ()
        self.detail = detail

    @property
    def duration(self):
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def key(self):
        """A comparable tuple capturing the whole span (determinism tests)."""
        return (
            self.span_id, self.trace_id, self.parent_id, self.name,
            self.grid, self.host, self.agent, self.t_start, self.t_end,
            self.status, tuple(self.links),
            tuple(sorted(self.detail.items())),
        )

    def __repr__(self):
        return "Span(#%d %s %s t=[%.3f, %s] %s)" % (
            self.span_id, self.trace_id, self.name, self.t_start,
            "%.3f" % self.t_end if self.t_end is not None else "...",
            self.status,
        )


class SpanRecorder:
    """A bounded, deterministic span store.

    Unlike the ring-buffer :class:`~repro.simkernel.trace.SimulationTracer`,
    a full recorder *rejects new spans* instead of evicting old ones:
    evicting a parent would orphan its whole subtree, while rejecting the
    tail keeps every stored span's causal chain intact.  Rejections are
    counted in :attr:`dropped`.

    Args:
        sim: the simulator (span times come from ``sim.now``).
        capacity: maximum stored spans.
    """

    def __init__(self, sim, capacity=100_000):
        self.sim = sim
        self.capacity = capacity
        self.spans = []
        self.dropped = 0
        #: Optional :class:`StreamingTraceExporter`; when set, closed spans
        #: are rotated to disk and evicted so capacity is never reached.
        self.exporter = None
        #: Callables invoked with each span the moment it closes (before
        #: any streaming eviction) -- the in-line feed for the health
        #: layer's per-stage histograms.  Hooks must be passive: recording
        #: only, no event scheduling, no RNG draws.
        self.close_hooks = []
        self._by_id = {}
        self._next_span = 1
        self._next_trace = 1

    # -- recording ---------------------------------------------------------

    def new_trace(self):
        """Allocate a fresh trace id (one per collector batch)."""
        trace_id = "t-%d" % self._next_trace
        self._next_trace += 1
        return trace_id

    @property
    def trace_count(self):
        return self._next_trace - 1

    def start(self, name, trace_id, parent=None, grid="", host="", agent="",
              t_start=None, **detail):
        """Open a span; returns it (or ``None`` when at capacity).

        ``parent`` may be a :class:`Span` or a span id.  Callers must
        tolerate ``None`` -- at capacity the recorder refuses new spans so
        stored chains stay complete.
        """
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return None
        if isinstance(parent, Span):
            parent = parent.span_id
        span = Span(
            self._next_span, trace_id, parent, name, grid, host, agent,
            self.sim.now if t_start is None else t_start, detail,
        )
        self._next_span += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end(self, span, status="ok", **detail):
        """Close a span (or span id); the first end wins, later ends no-op.

        The first-end-wins rule absorbs the at-least-once seam in the
        reliable channel: a delivered-then-dead-lettered envelope ends its
        ship span once with the outcome that actually happened first.
        """
        if span is None:
            return None
        if not isinstance(span, Span):
            span = self._by_id.get(span)
            if span is None:
                return None
        if span.t_end is not None:
            return span
        span.t_end = self.sim.now
        span.status = status
        if detail:
            span.detail.update(detail)
        for hook in self.close_hooks:
            hook(span)
        exporter = self.exporter
        if exporter is not None:
            exporter.span_closed()
        return span

    def link(self, span, contributors):
        """Attach extra causal parents (merge points)."""
        if span is not None:
            span.links = tuple(span.links) + tuple(contributors)

    def get(self, span_id):
        return self._by_id.get(span_id)

    # -- queries -----------------------------------------------------------

    def __len__(self):
        return len(self.spans)

    def find(self, name=None, trace_id=None, status=None):
        """Spans filtered by name / trace / status."""
        return [
            span for span in self.spans
            if (name is None or span.name == name)
            and (trace_id is None or span.trace_id == trace_id)
            and (status is None or span.status == status)
        ]

    def open_spans(self):
        return [span for span in self.spans if span.t_end is None]

    def orphan_spans(self):
        """Spans whose causal parent (or any link) is not in the store.

        A non-empty result means the trace tree is broken -- either a bug
        in context threading or capacity-dropped ancestors.
        """
        known = self._by_id
        orphans = []
        for span in self.spans:
            if span.parent_id is not None and span.parent_id not in known:
                orphans.append(span)
                continue
            for _, linked_id in span.links:
                if linked_id not in known:
                    orphans.append(span)
                    break
        return orphans

    def children_of(self, span):
        span_id = span.span_id if isinstance(span, Span) else span
        return [s for s in self.spans if s.parent_id == span_id]

    def end_children(self, span, status="ok", **detail):
        """Close any still-open direct children with the parent's outcome.

        Used when an attempt dies out from under its worker: the analyzer
        on a killed container never returns to close its analyze span, so
        whoever terminates the dispatch attempt closes the children too.
        """
        if span is None:
            return
        for child in self.children_of(span):
            if child.t_end is None:
                self.end(child, status=status, **detail)

    def counts_by_name(self):
        return dict(collections.Counter(span.name for span in self.spans))

    # -- pipeline chain validation ----------------------------------------

    def pipeline_report(self):
        """Audit every collector batch's span chain end to end.

        Returns a dict with:

        * ``batches`` -- number of shipped batches (ship spans);
        * ``complete`` -- batches whose chain reaches a report span or
          terminates in an explicitly-statused dead-letter span;
        * ``incomplete`` -- list of ``(trace_id, stage, why)`` for the rest;
        * ``orphans`` -- :meth:`orphan_spans` (must be empty);
        * ``open`` -- spans never closed (in-flight work at shutdown);
        * ``dropped`` -- spans rejected at capacity.  A non-zero value
          means the other numbers undercount: capacity drops must never be
          mistaken for complete chains.

        The merge points (many classify spans -> one notify; one notify ->
        many dispatch attempts) are followed through span ``links``.
        """
        notifies = self.find(name="notify")
        notify_by_contributor = {}
        for notify in notifies:
            if notify.parent_id is not None:
                notify_by_contributor[notify.parent_id] = notify
            for _, linked_id in notify.links:
                notify_by_contributor[linked_id] = notify
        reports_by_parent = {}
        for report in self.find(name="report"):
            if report.parent_id is not None:
                reports_by_parent[report.parent_id] = report
        incomplete = []
        complete = 0
        ships = self.find(name="ship")
        for ship in ships:
            if ship.status in TERMINAL_STATUSES:
                complete += 1
                continue
            classifies = [
                span for span in self.children_of(ship)
                if span.name == "classify"
            ]
            if not classifies:
                incomplete.append((ship.trace_id, "ship",
                                   "no classify span (status %s)" % ship.status))
                continue
            notify = notify_by_contributor.get(classifies[0].span_id)
            if notify is None:
                incomplete.append((ship.trace_id, "classify",
                                   "dataset never published"))
                continue
            if notify.status in TERMINAL_STATUSES:
                complete += 1
                continue
            report = reports_by_parent.get(notify.span_id)
            if report is None:
                incomplete.append((ship.trace_id, "notify",
                                   "dataset never reported"))
                continue
            complete += 1
        return {
            "batches": len(ships),
            "complete": complete,
            "incomplete": incomplete,
            "orphans": self.orphan_spans(),
            "open": self.open_spans(),
            "dropped": self.dropped,
            "stage_latency": self.stage_latency(),
        }

    def stage_latency(self, qs=(50, 95, 99)):
        """Per-stage latency quantiles over every *closed* span.

        Returns ``{stage: {count, mean, min, max, p50, p95, p99}}`` for
        each Figure-2 pipeline stage that recorded at least one closed
        span, computed through :class:`LatencyHistogram` -- so the live
        recorder, a ``--follow`` replay of a streamed trace and the
        health layer's in-line histograms all report the same numbers.
        """
        from repro.simkernel.histogram import LatencyHistogram

        stages = {}
        wanted = set(PIPELINE_STAGES)
        for span in self.spans:
            if span.t_end is None or span.name not in wanted:
                continue
            histogram = stages.get(span.name)
            if histogram is None:
                histogram = stages[span.name] = LatencyHistogram()
            histogram.record(span.t_end - span.t_start)
        return {
            stage: stages[stage].summary(qs)
            for stage in PIPELINE_STAGES if stage in stages
        }

    # -- critical path ------------------------------------------------------

    def critical_path(self, trace_id):
        """The longest-duration span chain of one trace, root to leaf.

        Follows ``parent_id`` edges only (links mark merge points, not
        time attribution) and maximises the *sum of span durations* along
        the chain; open spans contribute zero.  Returns the chain as a
        list of :class:`Span` objects in causal order -- empty when the
        trace recorded nothing.
        """
        members = [span for span in self.spans if span.trace_id == trace_id]
        if not members:
            return []
        ids = {span.span_id for span in members}
        children = {}
        roots = []
        for span in members:
            if span.parent_id in ids:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)

        best = {}  # span_id -> (total_duration, chain tuple)

        def chain_from(span):
            cached = best.get(span.span_id)
            if cached is not None:
                return cached
            weight = span.duration or 0.0
            tail = (0.0, ())
            for child in children.get(span.span_id, ()):
                candidate = chain_from(child)
                if candidate[0] > tail[0]:
                    tail = candidate
            result = (weight + tail[0], (span,) + tail[1])
            best[span.span_id] = result
            return result

        winner = (0.0, ())
        for root in roots:
            candidate = chain_from(root)
            if candidate[0] > winner[0]:
                winner = candidate
        return list(winner[1])

    def slowest_traces(self, limit=5):
        """``(trace_id, total_duration, chain)`` rows, worst first.

        One row per trace (skipping the reserved behaviour-attribution
        trace), where ``chain`` is :meth:`critical_path` and the rows
        sort by the chain's summed duration.
        """
        rows = []
        for trace_id in sorted({span.trace_id for span in self.spans
                                if span.trace_id != Telemetry.BEHAVIOUR_TRACE}):
            chain = self.critical_path(trace_id)
            if not chain:
                continue
            total = sum(span.duration or 0.0 for span in chain)
            rows.append((trace_id, total, chain))
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows[:limit]

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self):
        """The stored spans as a Chrome-trace (Trace Event Format) dict.

        One complete ("X") event per span -- ``pid`` rows are hosts,
        ``tid`` rows are agents -- plus "M" metadata events naming them.
        Open spans are emitted with the recorder's current time as a
        provisional end and ``"status": "open"`` in args.  Times are
        microseconds (simulated seconds x 1e6), per the format.
        """
        pids = {}
        tids = {}
        events = []
        now = self.sim.now
        for span in self.spans:
            process = span.host or span.grid or "?"
            thread = span.agent or span.name
            pid = pids.setdefault(process, len(pids) + 1)
            tid = tids.setdefault((process, thread), len(tids) + 1)
            end = span.t_end if span.t_end is not None else max(now, span.t_start)
            args = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "status": span.status,
                "grid": span.grid,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.links:
                args["links"] = [list(link) for link in span.links]
            for key, value in span.detail.items():
                args[key] = value
            events.append({
                "name": span.name,
                "cat": span.grid or "span",
                "ph": "X",
                "ts": span.t_start * 1e6,
                "dur": (end - span.t_start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        for process, pid in sorted(pids.items(), key=lambda item: item[1]):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        for (process, thread), tid in sorted(tids.items(),
                                             key=lambda item: item[1]):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pids[process],
                "tid": tid, "args": {"name": thread},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "spans": len(self.spans),
                "dropped": self.dropped,
                "generator": "repro.simkernel.telemetry",
            },
        }

    def summary_rows(self):
        """``(name, count, open, total_duration)`` rows for CLI tables."""
        totals = {}
        for span in self.spans:
            entry = totals.setdefault(span.name, [0, 0, 0.0])
            entry[0] += 1
            if span.t_end is None:
                entry[1] += 1
            else:
                entry[2] += span.t_end - span.t_start
        return [
            (name, count, open_count, duration)
            for name, (count, open_count, duration) in sorted(totals.items())
        ]

    def __repr__(self):
        return "SpanRecorder(spans=%d, dropped=%d)" % (
            len(self.spans), self.dropped)


class StreamingTraceExporter:
    """Rotate closed spans to disk as chunked Chrome-trace files.

    The in-memory :class:`SpanRecorder` rejects new spans at capacity --
    correct for bounded runs, a ceiling for week-long diurnal or
    5000-device traced runs.  This exporter removes the ceiling: every
    ``chunk_spans`` closed spans are appended to ``chunk-NNNNN.json`` in
    ``directory`` and *evicted* from memory, so the recorder holds only
    open spans plus the current partial chunk and ``dropped`` stays zero.

    On-disk layout (all JSON):

    * ``chunk-00000.json``, ``chunk-00001.json``, ... -- each a
      self-contained ``{"traceEvents": [...]}`` file of complete ("X")
      events, loadable directly in ``chrome://tracing`` / Perfetto.  Span
      identity, causality and precise times ride in ``args`` (``span_id``,
      ``trace_id``, ``parent_id``, ``links``, ``t0``/``t1``, ``detail``)
      so :func:`load_streaming_trace` can reconstruct the exact spans.
    * ``manifest.json`` -- chunk list with span counts, cumulative totals
      (exported / open / dropped), the stable pid/tid naming tables and a
      ``finalized`` flag.  Rewritten after every chunk, so a crash loses at
      most the current partial chunk.

    Caveats: once a span is exported, later ``link()`` / detail mutations
    are not reflected on disk (in-tree callers only mutate open spans),
    and the live recorder's ``pipeline_report()`` only sees what is still
    in memory -- use ``repro-sim trace --follow`` for the full audit.

    Args:
        recorder: the :class:`SpanRecorder` to drain (takes ownership of
            its ``exporter`` hook).
        directory: output directory, created if missing.
        chunk_spans: closed spans per chunk file.
    """

    def __init__(self, recorder, directory, chunk_spans=5000):
        if chunk_spans < 1:
            raise ValueError("chunk_spans must be >= 1")
        self.recorder = recorder
        self.directory = directory
        self.chunk_spans = chunk_spans
        self.spans_exported = 0
        self.chunks = []  # manifest rows
        self.finalized = False
        self._closed = 0  # closed-but-not-yet-exported spans
        self._pids = {}
        self._tids = {}
        os.makedirs(directory, exist_ok=True)
        recorder.exporter = self

    # -- recorder hook -----------------------------------------------------

    def span_closed(self):
        """Called by the recorder on every span end; rotates when due."""
        self._closed += 1
        if self._closed >= self.chunk_spans and not self.finalized:
            self.flush()

    # -- rotation ----------------------------------------------------------

    def _span_event(self, span, provisional_end):
        """One Chrome-trace "X" event carrying full span identity."""
        process = span.host or span.grid or "?"
        thread = span.agent or span.name
        pid = self._pids.setdefault(process, len(self._pids) + 1)
        tid = self._tids.setdefault((process, thread), len(self._tids) + 1)
        end = span.t_end if span.t_end is not None else provisional_end
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "status": span.status,
            "grid": span.grid,
            "host": span.host,
            "agent": span.agent,
            "t0": span.t_start,
        }
        if span.t_end is not None:
            args["t1"] = span.t_end
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.links:
            args["links"] = [list(link) for link in span.links]
        if span.detail:
            args["detail"] = dict(span.detail)
        return {
            "name": span.name,
            "cat": span.grid or "span",
            "ph": "X",
            "ts": span.t_start * 1e6,
            "dur": (end - span.t_start) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        }

    def _write_chunk(self, spans, provisional_end):
        filename = "chunk-%05d.json" % len(self.chunks)
        events = [self._span_event(span, provisional_end) for span in spans]
        with open(os.path.join(self.directory, filename), "w") as handle:
            json.dump({"traceEvents": events}, handle)
        self.chunks.append({
            "file": filename,
            "spans": len(spans),
            "first_span_id": spans[0].span_id,
            "last_span_id": spans[-1].span_id,
        })

    def flush(self):
        """Export every closed span to a new chunk and evict it from memory.

        No-op when nothing is closed.  The manifest is rewritten afterwards
        so the on-disk state is always internally consistent.
        """
        recorder = self.recorder
        closed = [span for span in recorder.spans if span.t_end is not None]
        if closed:
            self._write_chunk(closed, recorder.sim.now)
            recorder.spans = [
                span for span in recorder.spans if span.t_end is None
            ]
            by_id = recorder._by_id
            for span in closed:
                del by_id[span.span_id]
            self.spans_exported += len(closed)
        self._closed = 0
        self.write_manifest()

    def finalize(self):
        """Flush the tail, export still-open spans provisionally, seal.

        Open spans are written (status ``"open"``, end = current time) to a
        final chunk but stay in memory; the manifest's ``finalized`` flag
        flips so late rotations cannot corrupt the sealed layout.
        Idempotent.
        """
        if self.finalized:
            return
        recorder = self.recorder
        now = recorder.sim.now
        closed = [span for span in recorder.spans if span.t_end is not None]
        still_open = [span for span in recorder.spans if span.t_end is None]
        tail = closed + still_open
        if tail:
            self._write_chunk(tail, now)
            recorder.spans = still_open
            by_id = recorder._by_id
            for span in closed:
                del by_id[span.span_id]
            self.spans_exported += len(closed)
        self._closed = 0
        self.finalized = True
        self.write_manifest()

    def write_manifest(self):
        recorder = self.recorder
        manifest = {
            "format": "repro-streaming-trace",
            "version": 1,
            "chunk_spans": self.chunk_spans,
            "chunks": list(self.chunks),
            "spans_exported": self.spans_exported,
            "spans_open": len(recorder.open_spans()),
            "spans_dropped": recorder.dropped,
            "trace_count": recorder.trace_count,
            "finalized": self.finalized,
            "displayTimeUnit": "ms",
            "processes": dict(self._pids),
            "threads": [
                [process, thread, tid]
                for (process, thread), tid in self._tids.items()
            ],
            "generator": "repro.simkernel.telemetry",
        }
        path = os.path.join(self.directory, "manifest.json")
        tmp_path = path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(tmp_path, path)
        return manifest

    def __repr__(self):
        return "StreamingTraceExporter(%r, chunks=%d, exported=%d)" % (
            self.directory, len(self.chunks), self.spans_exported)


#: args keys carrying span identity in streamed chunk events; everything
#: else under "detail" is the span's free-form detail dict.
_STREAM_ARG_KEYS = frozenset((
    "trace_id", "span_id", "parent_id", "status", "grid", "host", "agent",
    "t0", "t1", "links", "detail",
))


def load_streaming_trace(directory):
    """Rebuild ``(recorder, manifest)`` from a streaming-export directory.

    The returned :class:`SpanRecorder` is offline (``sim=None``) but fully
    populated -- ``summary_rows``, ``pipeline_report`` and
    ``counts_by_name`` work exactly as on the live recorder, including the
    manifest's ``spans_dropped`` count.  Spans exported provisionally
    (status ``"open"``) come back as open spans (``t_end=None``).
    """
    manifest_path = os.path.join(directory, "manifest.json")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != "repro-streaming-trace":
        raise ValueError("%s is not a streaming-trace manifest" % manifest_path)
    recorder = SpanRecorder(sim=None, capacity=0)
    spans = []
    for chunk in manifest["chunks"]:
        with open(os.path.join(directory, chunk["file"])) as handle:
            payload = json.load(handle)
        for event in payload["traceEvents"]:
            if event.get("ph") != "X":
                continue
            args = event["args"]
            span = Span(
                args["span_id"], args["trace_id"], args.get("parent_id"),
                event["name"], args.get("grid", ""), args.get("host", ""),
                args.get("agent", ""), args["t0"], args.get("detail", {}),
            )
            span.status = args.get("status", "ok")
            span.t_end = args.get("t1")
            span.links = tuple(
                (trace_id, span_id)
                for trace_id, span_id in args.get("links", ())
            )
            spans.append(span)
    # Long-open spans are exported after later-started ones: restore
    # allocation order so the rebuilt recorder matches the live one.
    spans.sort(key=lambda span: span.span_id)
    recorder.spans = spans
    recorder._by_id = {span.span_id: span for span in spans}
    recorder._next_span = spans[-1].span_id + 1 if spans else 1
    recorder._next_trace = manifest.get("trace_count", 0) + 1
    recorder.dropped = manifest.get("spans_dropped", 0)
    recorder.capacity = len(spans)
    return recorder, manifest


class KernelProfiler:
    """Per-callback-qualname time/count accounting for the simulator loop.

    Installed via :meth:`Simulator.set_profiler`; the run loop then wraps
    every event callback in a wall-clock measurement.  Off by default --
    the measurement itself (two ``perf_counter`` calls per event) is the
    dominant cost at kernel-microbench rates, so the profiler is a
    diagnosis tool, not an always-on metric.
    """

    __slots__ = ("stats",)

    def __init__(self):
        self.stats = {}  # qualname -> [count, total_seconds]

    def account(self, callback, elapsed):
        name = getattr(callback, "__qualname__", None)
        if name is None:
            name = type(callback).__name__
        entry = self.stats.get(name)
        if entry is None:
            self.stats[name] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed

    def top(self, limit=20):
        """``(qualname, count, total_seconds)`` rows, hottest first."""
        rows = [
            (name, count, total)
            for name, (count, total) in self.stats.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows[:limit]

    def snapshot(self):
        return {
            name: {"count": count, "total_seconds": total}
            for name, (count, total) in sorted(self.stats.items())
        }

    def __repr__(self):
        events = sum(count for count, _ in self.stats.values())
        return "KernelProfiler(callbacks=%d, events=%d)" % (
            len(self.stats), events)


class Telemetry:
    """The session flight recorder: spans + metrics + profiling, unified.

    Args:
        sim: the simulator.
        capacity: span-store bound (see :class:`SpanRecorder`).
        profile: install a :class:`KernelProfiler` on the simulator hot
            loop (off by default; expensive at microbench rates).
        stream_dir: when set, attach a :class:`StreamingTraceExporter`
            rotating closed spans to this directory (removes the capacity
            ceiling for week-long / 5000-device traced runs).  Call
            :meth:`finalize` when the run ends.
        stream_chunk_spans: closed spans per streamed chunk file.
        attribution: record a sim-time span per behaviour activation
            (trace ``"t-behaviours"``), so traces answer "which agent's
            behaviours occupy the timeline" -- see
            :meth:`repro.agents.behaviours.Behaviour.start`.

    Components *register sources* -- ``(labels, supplier)`` pairs where
    ``supplier()`` returns a flat name->number dict -- so one snapshot
    shows every counter in the deployment labelled by grid / host / agent.
    The session :attr:`registry` additionally holds metrics written
    directly by instrumented components (e.g. the reliable channel).
    """

    #: Reserved trace id grouping behaviour-attribution spans; fixed (not
    #: allocated) so enabling attribution never renumbers batch traces.
    BEHAVIOUR_TRACE = "t-behaviours"

    def __init__(self, sim, capacity=100_000, profile=False, stream_dir=None,
                 stream_chunk_spans=5000, attribution=False):
        from repro.simkernel.metrics import MetricRegistry

        self.sim = sim
        self.recorder = SpanRecorder(sim, capacity=capacity)
        self.registry = MetricRegistry()
        self.attribution = attribution
        self.exporter = None
        if stream_dir is not None:
            self.exporter = StreamingTraceExporter(
                self.recorder, stream_dir, chunk_spans=stream_chunk_spans)
        self.profiler = None
        if profile:
            self.profiler = KernelProfiler()
            sim.set_profiler(self.profiler)
        self._sources = []

    # -- metric sources ----------------------------------------------------

    def register_source(self, supplier, grid="", host="", agent=""):
        """Register a labelled metrics supplier (flat name->number dict)."""
        labels = {"grid": grid, "host": host, "agent": agent}
        self._sources.append((labels, supplier))

    def metrics_snapshot(self, series_window=None, series_max_points=None):
        """One labelled, JSON-ready view of every metric in the session."""
        sources = []
        for labels, supplier in self._sources:
            metrics = {
                name: value for name, value in supplier().items()
                if isinstance(value, (int, float))
            }
            sources.append({"labels": dict(labels), "metrics": metrics})
        payload = {
            "registry": self.registry.snapshot(
                series_window=series_window,
                series_max_points=series_max_points,
            ),
            "sources": sources,
            "spans": {
                "recorded": len(self.recorder),
                "dropped": self.recorder.dropped,
                "by_name": self.recorder.counts_by_name(),
            },
        }
        if self.exporter is not None:
            payload["spans"]["exported"] = self.exporter.spans_exported
        if self.profiler is not None:
            payload["kernel_profile"] = self.profiler.snapshot()
        return payload

    # -- export ------------------------------------------------------------

    def chrome_trace(self):
        return self.recorder.to_chrome_trace()

    def pipeline_report(self):
        return self.recorder.pipeline_report()

    def finalize(self):
        """Seal the streaming export, if one is attached (else a no-op)."""
        if self.exporter is not None:
            self.exporter.finalize()

    def __repr__(self):
        return "Telemetry(spans=%d, sources=%d, profile=%s)" % (
            len(self.recorder), len(self._sources),
            self.profiler is not None)


def wire_channel_tracing(recorder, channel):
    """Hook a :class:`~repro.network.reliable.ReliableChannel` into a recorder.

    Terminates in-flight spans when the channel gives up on an envelope --
    so no traced batch ever vanishes from the trace tree without an
    explicit ``dead-letter`` status -- and records a ``redeliver`` span
    each time the redelivery scheduler re-ships a parked envelope.  Any
    previously installed channel hooks keep firing after the tracing ones
    (the deployments chain their accounting hooks through here).
    """
    previous_dead = channel.on_dead_letter
    previous_redelivered = channel.on_redelivered
    previous_gave_up = channel.on_redelivery_gave_up

    def _trace_dead_letter(dead):
        context = getattr(dead.message.payload, "trace_context", None)
        if context is not None and dead.terminal:
            # Parked envelopes keep their ship span open -- the
            # redelivery scheduler will re-open the chain; only a
            # final loss (redelivery off, or budget exhausted at
            # park time) terminates it.
            recorder.end(context[1], status="dead-letter",
                         reason=dead.reason, attempts=dead.attempts)
        if previous_dead is not None:
            previous_dead(dead)

    def _trace_redelivered(dead):
        context = getattr(dead.message.payload, "trace_context", None)
        if context is not None:
            span = recorder.start(
                "redeliver", context[0], parent=context[1],
                grid="network", agent="reliable-channel",
                attempts=dead.attempts)
            recorder.end(span, status="ok")
        if previous_redelivered is not None:
            previous_redelivered(dead)

    def _trace_gave_up(dead):
        context = getattr(dead.message.payload, "trace_context", None)
        if context is not None:
            recorder.end(context[1], status="dead-letter",
                         reason="redelivery gave up: %s" % dead.reason,
                         attempts=dead.attempts)
        if previous_gave_up is not None:
            previous_gave_up(dead)

    channel.on_dead_letter = _trace_dead_letter
    channel.on_redelivered = _trace_redelivered
    channel.on_redelivery_gave_up = _trace_gave_up
