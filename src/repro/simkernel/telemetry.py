"""Causal tracing + unified telemetry: the pipeline flight recorder.

:mod:`repro.simkernel.trace` answers "what happened, in order?" with a flat
event log.  This module answers the harder operational question -- "where
did batch 17 spend its time, and why did it never reach a report?" -- by
recording **spans**: named intervals with a causal parent, grouped into
traces that follow one collector batch through the Figure-2 pipeline
(collect -> ship -> classify -> notify -> dispatch -> analyze -> report).

Three pieces:

* :class:`SpanRecorder` -- a bounded store of :class:`Span` objects with
  deterministic ids (two identical seeded runs produce identical span
  trees).  Exports a Chrome-trace/Perfetto JSON timeline
  (:meth:`SpanRecorder.to_chrome_trace`) that loads directly into
  ``chrome://tracing`` / https://ui.perfetto.dev.
* :class:`KernelProfiler` -- per-callback-qualname time/count accounting
  on the simulator hot loop (off by default; see
  :meth:`~repro.simkernel.simulator.Simulator.set_profiler`).
* :class:`Telemetry` -- the session facade: one recorder, one session-wide
  :class:`~repro.simkernel.metrics.MetricRegistry`, labelled metric
  *sources* (per grid / host / agent) and export helpers.

Everything here is passive Python bookkeeping: recording a span schedules
no events, draws no random numbers and charges no resources, so a run with
telemetry enabled is *simulation-identical* to the same run without it
(pinned by ``tests/test_telemetry.py``).

Span statuses form a small vocabulary:

``"open"``
    started, not yet ended (in flight, or leaked -- see orphan checks).
``"ok"``
    ended normally.
``"dead-letter"``
    the in-flight leg's envelope exhausted its retransmissions; terminal.
``"timeout"`` / ``"evicted"``
    a dispatch attempt retired by the Reaper / the heartbeat detector;
    non-terminal (a later attempt continues the chain).
``"abandoned"``
    the root gave up on a cluster/cross job; terminal for that cluster but
    the dataset still finalizes with an error finding.
"""

import collections


#: Spans whose status ends a chain without reaching the next stage.
TERMINAL_STATUSES = frozenset(("dead-letter", "abandoned"))

#: The Figure-2 pipeline stages, in causal order.
PIPELINE_STAGES = (
    "collect", "ship", "classify", "notify", "dispatch", "analyze", "report",
)


class Span:
    """One named interval with a causal parent.

    Attributes:
        span_id: recorder-unique integer (deterministic allocation order).
        trace_id: the trace (one per collector batch) this span belongs to.
        parent_id: causal parent span id, or ``None`` for roots.
        name: stage name ("collect", "ship", ... or anything else).
        grid: which grid did the work ("collector", "classifier",
            "processor", "interface", "network", "kernel").
        host / agent: where the work happened.
        t_start / t_end: simulated seconds (``t_end`` None while open).
        status: see module docstring.
        links: extra causal parents as ``(trace_id, span_id)`` tuples --
            used at merge points (many batches -> one dataset).
        detail: free-form dict of small JSON-able values.
    """

    __slots__ = ("span_id", "trace_id", "parent_id", "name", "grid", "host",
                 "agent", "t_start", "t_end", "status", "links", "detail")

    def __init__(self, span_id, trace_id, parent_id, name, grid, host, agent,
                 t_start, detail):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.grid = grid
        self.host = host
        self.agent = agent
        self.t_start = t_start
        self.t_end = None
        self.status = "open"
        self.links = ()
        self.detail = detail

    @property
    def duration(self):
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def key(self):
        """A comparable tuple capturing the whole span (determinism tests)."""
        return (
            self.span_id, self.trace_id, self.parent_id, self.name,
            self.grid, self.host, self.agent, self.t_start, self.t_end,
            self.status, tuple(self.links),
            tuple(sorted(self.detail.items())),
        )

    def __repr__(self):
        return "Span(#%d %s %s t=[%.3f, %s] %s)" % (
            self.span_id, self.trace_id, self.name, self.t_start,
            "%.3f" % self.t_end if self.t_end is not None else "...",
            self.status,
        )


class SpanRecorder:
    """A bounded, deterministic span store.

    Unlike the ring-buffer :class:`~repro.simkernel.trace.SimulationTracer`,
    a full recorder *rejects new spans* instead of evicting old ones:
    evicting a parent would orphan its whole subtree, while rejecting the
    tail keeps every stored span's causal chain intact.  Rejections are
    counted in :attr:`dropped`.

    Args:
        sim: the simulator (span times come from ``sim.now``).
        capacity: maximum stored spans.
    """

    def __init__(self, sim, capacity=100_000):
        self.sim = sim
        self.capacity = capacity
        self.spans = []
        self.dropped = 0
        self._by_id = {}
        self._next_span = 1
        self._next_trace = 1

    # -- recording ---------------------------------------------------------

    def new_trace(self):
        """Allocate a fresh trace id (one per collector batch)."""
        trace_id = "t-%d" % self._next_trace
        self._next_trace += 1
        return trace_id

    @property
    def trace_count(self):
        return self._next_trace - 1

    def start(self, name, trace_id, parent=None, grid="", host="", agent="",
              t_start=None, **detail):
        """Open a span; returns it (or ``None`` when at capacity).

        ``parent`` may be a :class:`Span` or a span id.  Callers must
        tolerate ``None`` -- at capacity the recorder refuses new spans so
        stored chains stay complete.
        """
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return None
        if isinstance(parent, Span):
            parent = parent.span_id
        span = Span(
            self._next_span, trace_id, parent, name, grid, host, agent,
            self.sim.now if t_start is None else t_start, detail,
        )
        self._next_span += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end(self, span, status="ok", **detail):
        """Close a span (or span id); the first end wins, later ends no-op.

        The first-end-wins rule absorbs the at-least-once seam in the
        reliable channel: a delivered-then-dead-lettered envelope ends its
        ship span once with the outcome that actually happened first.
        """
        if span is None:
            return None
        if not isinstance(span, Span):
            span = self._by_id.get(span)
            if span is None:
                return None
        if span.t_end is not None:
            return span
        span.t_end = self.sim.now
        span.status = status
        if detail:
            span.detail.update(detail)
        return span

    def link(self, span, contributors):
        """Attach extra causal parents (merge points)."""
        if span is not None:
            span.links = tuple(span.links) + tuple(contributors)

    def get(self, span_id):
        return self._by_id.get(span_id)

    # -- queries -----------------------------------------------------------

    def __len__(self):
        return len(self.spans)

    def find(self, name=None, trace_id=None, status=None):
        """Spans filtered by name / trace / status."""
        return [
            span for span in self.spans
            if (name is None or span.name == name)
            and (trace_id is None or span.trace_id == trace_id)
            and (status is None or span.status == status)
        ]

    def open_spans(self):
        return [span for span in self.spans if span.t_end is None]

    def orphan_spans(self):
        """Spans whose causal parent (or any link) is not in the store.

        A non-empty result means the trace tree is broken -- either a bug
        in context threading or capacity-dropped ancestors.
        """
        known = self._by_id
        orphans = []
        for span in self.spans:
            if span.parent_id is not None and span.parent_id not in known:
                orphans.append(span)
                continue
            for _, linked_id in span.links:
                if linked_id not in known:
                    orphans.append(span)
                    break
        return orphans

    def children_of(self, span):
        span_id = span.span_id if isinstance(span, Span) else span
        return [s for s in self.spans if s.parent_id == span_id]

    def end_children(self, span, status="ok", **detail):
        """Close any still-open direct children with the parent's outcome.

        Used when an attempt dies out from under its worker: the analyzer
        on a killed container never returns to close its analyze span, so
        whoever terminates the dispatch attempt closes the children too.
        """
        if span is None:
            return
        for child in self.children_of(span):
            if child.t_end is None:
                self.end(child, status=status, **detail)

    def counts_by_name(self):
        return dict(collections.Counter(span.name for span in self.spans))

    # -- pipeline chain validation ----------------------------------------

    def pipeline_report(self):
        """Audit every collector batch's span chain end to end.

        Returns a dict with:

        * ``batches`` -- number of shipped batches (ship spans);
        * ``complete`` -- batches whose chain reaches a report span or
          terminates in an explicitly-statused dead-letter span;
        * ``incomplete`` -- list of ``(trace_id, stage, why)`` for the rest;
        * ``orphans`` -- :meth:`orphan_spans` (must be empty);
        * ``open`` -- spans never closed (in-flight work at shutdown).

        The merge points (many classify spans -> one notify; one notify ->
        many dispatch attempts) are followed through span ``links``.
        """
        notifies = self.find(name="notify")
        notify_by_contributor = {}
        for notify in notifies:
            if notify.parent_id is not None:
                notify_by_contributor[notify.parent_id] = notify
            for _, linked_id in notify.links:
                notify_by_contributor[linked_id] = notify
        reports_by_parent = {}
        for report in self.find(name="report"):
            if report.parent_id is not None:
                reports_by_parent[report.parent_id] = report
        incomplete = []
        complete = 0
        ships = self.find(name="ship")
        for ship in ships:
            if ship.status in TERMINAL_STATUSES:
                complete += 1
                continue
            classifies = [
                span for span in self.children_of(ship)
                if span.name == "classify"
            ]
            if not classifies:
                incomplete.append((ship.trace_id, "ship",
                                   "no classify span (status %s)" % ship.status))
                continue
            notify = notify_by_contributor.get(classifies[0].span_id)
            if notify is None:
                incomplete.append((ship.trace_id, "classify",
                                   "dataset never published"))
                continue
            if notify.status in TERMINAL_STATUSES:
                complete += 1
                continue
            report = reports_by_parent.get(notify.span_id)
            if report is None:
                incomplete.append((ship.trace_id, "notify",
                                   "dataset never reported"))
                continue
            complete += 1
        return {
            "batches": len(ships),
            "complete": complete,
            "incomplete": incomplete,
            "orphans": self.orphan_spans(),
            "open": self.open_spans(),
        }

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self):
        """The stored spans as a Chrome-trace (Trace Event Format) dict.

        One complete ("X") event per span -- ``pid`` rows are hosts,
        ``tid`` rows are agents -- plus "M" metadata events naming them.
        Open spans are emitted with the recorder's current time as a
        provisional end and ``"status": "open"`` in args.  Times are
        microseconds (simulated seconds x 1e6), per the format.
        """
        pids = {}
        tids = {}
        events = []
        now = self.sim.now
        for span in self.spans:
            process = span.host or span.grid or "?"
            thread = span.agent or span.name
            pid = pids.setdefault(process, len(pids) + 1)
            tid = tids.setdefault((process, thread), len(tids) + 1)
            end = span.t_end if span.t_end is not None else max(now, span.t_start)
            args = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "status": span.status,
                "grid": span.grid,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.links:
                args["links"] = [list(link) for link in span.links]
            for key, value in span.detail.items():
                args[key] = value
            events.append({
                "name": span.name,
                "cat": span.grid or "span",
                "ph": "X",
                "ts": span.t_start * 1e6,
                "dur": (end - span.t_start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        for process, pid in sorted(pids.items(), key=lambda item: item[1]):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        for (process, thread), tid in sorted(tids.items(),
                                             key=lambda item: item[1]):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pids[process],
                "tid": tid, "args": {"name": thread},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "spans": len(self.spans),
                "dropped": self.dropped,
                "generator": "repro.simkernel.telemetry",
            },
        }

    def summary_rows(self):
        """``(name, count, open, total_duration)`` rows for CLI tables."""
        totals = {}
        for span in self.spans:
            entry = totals.setdefault(span.name, [0, 0, 0.0])
            entry[0] += 1
            if span.t_end is None:
                entry[1] += 1
            else:
                entry[2] += span.t_end - span.t_start
        return [
            (name, count, open_count, duration)
            for name, (count, open_count, duration) in sorted(totals.items())
        ]

    def __repr__(self):
        return "SpanRecorder(spans=%d, dropped=%d)" % (
            len(self.spans), self.dropped)


class KernelProfiler:
    """Per-callback-qualname time/count accounting for the simulator loop.

    Installed via :meth:`Simulator.set_profiler`; the run loop then wraps
    every event callback in a wall-clock measurement.  Off by default --
    the measurement itself (two ``perf_counter`` calls per event) is the
    dominant cost at kernel-microbench rates, so the profiler is a
    diagnosis tool, not an always-on metric.
    """

    __slots__ = ("stats",)

    def __init__(self):
        self.stats = {}  # qualname -> [count, total_seconds]

    def account(self, callback, elapsed):
        name = getattr(callback, "__qualname__", None)
        if name is None:
            name = type(callback).__name__
        entry = self.stats.get(name)
        if entry is None:
            self.stats[name] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed

    def top(self, limit=20):
        """``(qualname, count, total_seconds)`` rows, hottest first."""
        rows = [
            (name, count, total)
            for name, (count, total) in self.stats.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows[:limit]

    def snapshot(self):
        return {
            name: {"count": count, "total_seconds": total}
            for name, (count, total) in sorted(self.stats.items())
        }

    def __repr__(self):
        events = sum(count for count, _ in self.stats.values())
        return "KernelProfiler(callbacks=%d, events=%d)" % (
            len(self.stats), events)


class Telemetry:
    """The session flight recorder: spans + metrics + profiling, unified.

    Args:
        sim: the simulator.
        capacity: span-store bound (see :class:`SpanRecorder`).
        profile: install a :class:`KernelProfiler` on the simulator hot
            loop (off by default; expensive at microbench rates).

    Components *register sources* -- ``(labels, supplier)`` pairs where
    ``supplier()`` returns a flat name->number dict -- so one snapshot
    shows every counter in the deployment labelled by grid / host / agent.
    The session :attr:`registry` additionally holds metrics written
    directly by instrumented components (e.g. the reliable channel).
    """

    def __init__(self, sim, capacity=100_000, profile=False):
        from repro.simkernel.metrics import MetricRegistry

        self.sim = sim
        self.recorder = SpanRecorder(sim, capacity=capacity)
        self.registry = MetricRegistry()
        self.profiler = None
        if profile:
            self.profiler = KernelProfiler()
            sim.set_profiler(self.profiler)
        self._sources = []

    # -- metric sources ----------------------------------------------------

    def register_source(self, supplier, grid="", host="", agent=""):
        """Register a labelled metrics supplier (flat name->number dict)."""
        labels = {"grid": grid, "host": host, "agent": agent}
        self._sources.append((labels, supplier))

    def metrics_snapshot(self, series_window=None, series_max_points=None):
        """One labelled, JSON-ready view of every metric in the session."""
        sources = []
        for labels, supplier in self._sources:
            metrics = {
                name: value for name, value in supplier().items()
                if isinstance(value, (int, float))
            }
            sources.append({"labels": dict(labels), "metrics": metrics})
        payload = {
            "registry": self.registry.snapshot(
                series_window=series_window,
                series_max_points=series_max_points,
            ),
            "sources": sources,
            "spans": {
                "recorded": len(self.recorder),
                "dropped": self.recorder.dropped,
                "by_name": self.recorder.counts_by_name(),
            },
        }
        if self.profiler is not None:
            payload["kernel_profile"] = self.profiler.snapshot()
        return payload

    # -- export ------------------------------------------------------------

    def chrome_trace(self):
        return self.recorder.to_chrome_trace()

    def pipeline_report(self):
        return self.recorder.pipeline_report()

    def __repr__(self):
        return "Telemetry(spans=%d, sources=%d, profile=%s)" % (
            len(self.recorder), len(self._sources),
            self.profiler is not None)
