"""Simulation tracing: bounded, filterable event and message logs.

Debugging a distributed run means answering "what happened, in order?".
:class:`SimulationTracer` captures a bounded trace of kernel events plus
any domain events components record; :func:`trace_transport` additionally
logs every network message.  Traces render as aligned timelines and can be
filtered by time window and kind.
"""

import collections


class TraceRecord:
    """One trace entry."""

    __slots__ = ("time", "kind", "detail")

    def __init__(self, time, kind, detail):
        self.time = time
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "TraceRecord(t=%.3f %s: %s)" % (self.time, self.kind, self.detail)


class SimulationTracer:
    """A bounded in-memory trace.

    Args:
        sim: simulator to attach to (kernel events get recorded when
            ``capture_kernel`` is set).
        capacity: ring-buffer size; oldest entries are dropped.
        capture_kernel: record every scheduled-event execution (verbose;
            off by default -- domain events are usually what you want).
        kinds: when given, only these kinds are recorded.
    """

    def __init__(self, sim, capacity=10000, capture_kernel=False, kinds=None):
        self.sim = sim
        self.records = collections.deque(maxlen=capacity)
        self.kinds_filter = frozenset(kinds) if kinds is not None else None
        #: entries evicted by the capacity bound (they *were* recorded).
        self.dropped = 0
        #: entries rejected by the kind filter (never eligible for storage).
        self.filtered = 0
        if capture_kernel:
            sim.add_trace_hook(self._on_kernel_event)

    def _on_kernel_event(self, now, event):
        self.record("kernel", callback=getattr(
            event.callback, "__qualname__", repr(event.callback)))

    def record(self, kind, **detail):
        """Record a domain event at the current simulated time."""
        if self.kinds_filter is not None and kind not in self.kinds_filter:
            # Not eligible in the first place: count separately from
            # capacity evictions so "dropped" means lost data, not filters.
            self.filtered += 1
            return None
        if len(self.records) == self.records.maxlen:
            self.dropped += 1
        entry = TraceRecord(self.sim.now, kind, detail)
        self.records.append(entry)
        return entry

    def __len__(self):
        return len(self.records)

    def entries(self, kind=None, start=None, end=None):
        """Filtered view of the trace."""
        selected = []
        for entry in self.records:
            if kind is not None and entry.kind != kind:
                continue
            if start is not None and entry.time < start:
                continue
            if end is not None and entry.time > end:
                continue
            selected.append(entry)
        return selected

    def counts_by_kind(self):
        counter = collections.Counter(entry.kind for entry in self.records)
        return dict(counter)

    def render(self, kind=None, start=None, end=None, limit=None):
        """An aligned, human-readable timeline."""
        entries = self.entries(kind, start, end)
        if limit is not None:
            entries = entries[-limit:]
        lines = []
        for entry in entries:
            detail = " ".join(
                "%s=%s" % (key, value)
                for key, value in sorted(entry.detail.items())
            )
            lines.append("%10.3f  %-16s %s" % (entry.time, entry.kind, detail))
        return "\n".join(lines)

    def __repr__(self):
        return "SimulationTracer(entries=%d, dropped=%d, filtered=%d)" % (
            len(self.records), self.dropped, self.filtered)


def trace_transport(transport, tracer):
    """Log every message the transport delivers or drops.

    Wraps the transport's internal bookkeeping non-invasively: returns the
    transport for chaining.  Each delivery records kind ``"message"``;
    drops record kind ``"message-drop"``.
    """
    previous_hook = transport._delivered_hook
    original_drop = transport._drop

    def on_delivered(message):
        tracer.record(
            "message",
            src=str(message.sender), dst=str(message.dest),
            protocol=message.protocol,
            size=round(message.size_units, 3),
            latency=round(message.latency, 6)
            if message.latency is not None else None,
        )
        if previous_hook is not None:
            previous_hook(message)

    def traced_drop(message, sink, reason):
        tracer.record(
            "message-drop",
            src=str(message.sender), dst=str(message.dest),
            protocol=message.protocol, reason=reason,
        )
        original_drop(message, sink, reason)

    transport._delivered_hook = on_delivered
    transport._drop = traced_drop
    return transport
