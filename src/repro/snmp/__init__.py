"""SNMP-flavoured management-protocol substrate.

The paper's collector agents have protocol "interfaces" -- chiefly SNMP --
through which they extract managed-object values from network devices.
This package provides the whole stack in simulation:

* :mod:`oids <repro.snmp.oids>` -- object identifier algebra;
* :mod:`mib <repro.snmp.mib>` -- MIB trees with scalar and table objects,
  plus the standard object set the workloads poll (CPU, memory, disk,
  process table, interface counters);
* :mod:`device <repro.snmp.device>` -- managed devices (server / router /
  switch profiles) with stochastic metric dynamics and fault injection;
* :mod:`engine <repro.snmp.engine>` -- the device-side engine answering
  GET / GETNEXT / GETBULK / SET over the simulated network;
* :mod:`manager <repro.snmp.manager>` -- the manager-side client used by
  collector agents;
* :mod:`traps <repro.snmp.traps>` -- asynchronous trap channel.
"""

from repro.snmp.oids import OID
from repro.snmp.mib import MibObject, MibTree, StandardMib, std
from repro.snmp.device import DeviceProfile, ManagedDevice, PROFILES
from repro.snmp.engine import PduType, SnmpEngine, SnmpError, SnmpRequest, SnmpResponse, VarBind
from repro.snmp.manager import SnmpClient, SnmpTimeout
from repro.snmp.traps import Trap, TrapSink

__all__ = [
    "DeviceProfile",
    "ManagedDevice",
    "MibObject",
    "MibTree",
    "OID",
    "PROFILES",
    "PduType",
    "SnmpClient",
    "SnmpEngine",
    "SnmpError",
    "SnmpRequest",
    "SnmpResponse",
    "SnmpTimeout",
    "StandardMib",
    "Trap",
    "TrapSink",
    "VarBind",
    "std",
]
