"""Managed network devices with live, stochastic metric dynamics.

A :class:`ManagedDevice` wraps a simulated :class:`~repro.network.topology.Host`
(role ``"device"``), populates a MIB with callables that read its current
state, and runs a background process that evolves the state every tick.
Fault injection (used by the fault-management example and benches) switches
the dynamics into degraded regimes that the stock analysis rules detect.
"""

from repro.snmp.mib import MibObject, MibTree, std


class DeviceProfile:
    """Static parameters for a class of device.

    Args:
        name: profile name ("server", "router", "switch").
        interface_count: interfaces exposed in the MIB.
        process_slots: process-table entries exposed.
        cpu_mean / cpu_sigma: steady-state CPU-percent dynamics.
        mem_total_kb / disk_total_kb: capacities.
        traffic_rate: mean octets per second per interface.
    """

    def __init__(
        self,
        name,
        interface_count=2,
        process_slots=3,
        cpu_mean=35.0,
        cpu_sigma=10.0,
        mem_total_kb=1024 * 1024,
        disk_total_kb=8 * 1024 * 1024,
        traffic_rate=20000.0,
    ):
        self.name = name
        self.interface_count = interface_count
        self.process_slots = process_slots
        self.cpu_mean = cpu_mean
        self.cpu_sigma = cpu_sigma
        self.mem_total_kb = mem_total_kb
        self.disk_total_kb = disk_total_kb
        self.traffic_rate = traffic_rate

    def __repr__(self):
        return "DeviceProfile(%r)" % self.name


PROFILES = {
    "server": DeviceProfile(
        "server", interface_count=2, process_slots=6, cpu_mean=40.0,
        cpu_sigma=12.0, traffic_rate=30000.0,
    ),
    "router": DeviceProfile(
        "router", interface_count=8, process_slots=2, cpu_mean=25.0,
        cpu_sigma=8.0, traffic_rate=120000.0,
    ),
    "switch": DeviceProfile(
        "switch", interface_count=24, process_slots=1, cpu_mean=10.0,
        cpu_sigma=4.0, traffic_rate=250000.0,
    ),
}


class _Faults:
    """Active fault flags for a device."""

    def __init__(self):
        self.cpu_runaway = False
        self.memory_leak = False
        self.disk_filling = False
        self.down_interfaces = set()

    def any_active(self):
        return (
            self.cpu_runaway
            or self.memory_leak
            or self.disk_filling
            or bool(self.down_interfaces)
        )


class ManagedDevice:
    """A device whose MIB reflects continuously evolving metrics.

    Args:
        sim: the simulator.
        host: the device's host in the topology (provides identity; device
            metric values are *modelled state*, not derived from the host's
            simulated resources).
        profile: a :class:`DeviceProfile` or profile name.
        tick: seconds between dynamics updates.
        lazy: when True, no background dynamics process is spawned; the
            device replays its missed ticks on demand (:meth:`catch_up`,
            called by the SNMP engine before every read and by fault
            injection).  Values are identical to eager mode -- each tick
            draws from the device's own RNG stream in tick order -- but an
            idle device costs *zero* kernel events.  This is the
            big-topology win: at ``devices=5000, tick=1`` eager dynamics
            alone schedule 5000 events per simulated second.
    """

    def __init__(self, sim, host, profile="server", tick=1.0, lazy=False):
        if isinstance(profile, str):
            profile = PROFILES[profile]
        self.sim = sim
        self.host = host
        self.profile = profile
        self.tick = tick
        self.lazy = lazy
        self.rng = sim.rng("device/" + host.name)
        self.faults = _Faults()
        self.started_at = sim.now
        self._ticks_done = 0

        # Live state
        self.cpu_load = profile.cpu_mean
        self.load_avg = profile.cpu_mean / 25.0
        self.mem_available_kb = int(profile.mem_total_kb * 0.6)
        self.disk_free_kb = int(profile.disk_total_kb * 0.5)
        self.proc_count = 40 + profile.process_slots * 10
        self.if_in_octets = [0] * profile.interface_count
        self.if_out_octets = [0] * profile.interface_count
        self.process_names = [
            "proc-%s-%d" % (host.name, index)
            for index in range(profile.process_slots)
        ]

        if lazy:
            # MIB built on first read; dynamics replayed on demand.
            self._mib = None
            self._dynamics = None
        else:
            self._mib = MibTree()
            self._populate_mib()
            self._dynamics = sim.spawn(
                self._run_dynamics(), name="dyn:" + host.name,
            )

    # -- MIB ---------------------------------------------------------------

    @property
    def mib(self):
        mib = self._mib
        if mib is None:
            mib = self._mib = MibTree()
            self._populate_mib()
        return mib

    def _populate_mib(self):
        mib = self._mib
        mib.register_scalar(
            std.SYS_DESCR, "sysDescr",
            "repro %s device" % self.profile.name,
        )
        mib.register_scalar(
            std.SYS_UPTIME, "sysUpTime",
            lambda: int((self.sim.now - self.started_at) * 100), units="ticks",
        )
        mib.register_scalar(std.SYS_NAME, "sysName", self.host.name, writable=False)
        mib.register_scalar(
            std.CPU_LOAD, "ssCpuBusy", lambda: round(self.cpu_load, 1),
            units="percent",
        )
        mib.register_scalar(
            std.MEM_AVAIL, "memAvailReal", lambda: self.mem_available_kb, units="kB",
        )
        mib.register_scalar(
            std.LOAD_AVG_1MIN, "laLoad1", lambda: round(self.load_avg, 2),
        )
        mib.register_scalar(
            std.DISK_FREE, "dskAvail", lambda: self.disk_free_kb, units="kB",
        )
        mib.register_scalar(
            std.DISK_TOTAL, "dskTotal", self.profile.disk_total_kb, units="kB",
        )
        mib.register_scalar(
            std.PROC_COUNT, "hrSystemProcesses", lambda: self.proc_count,
        )
        mib.register_scalar(
            std.IF_COUNT, "ifNumber", self.profile.interface_count,
        )
        for index in range(1, self.profile.interface_count + 1):
            mib.register(MibObject(
                std.IF_IN_OCTETS.child(index), "ifInOctets.%d" % index,
                self._octet_reader(self.if_in_octets, index - 1), units="octets",
            ))
            mib.register(MibObject(
                std.IF_OUT_OCTETS.child(index), "ifOutOctets.%d" % index,
                self._octet_reader(self.if_out_octets, index - 1), units="octets",
            ))
            mib.register(MibObject(
                std.IF_OPER_STATUS.child(index), "ifOperStatus.%d" % index,
                self._status_reader(index),
            ))
        for slot, name in enumerate(self.process_names, start=1):
            mib.register_scalar(
                std.PROC_TABLE.child(slot), "hrSWRunName.%d" % slot, name,
            )

    def _octet_reader(self, counters, index):
        return lambda: counters[index]

    def _status_reader(self, if_index):
        # MIB interface indices are 1-based; fault indices are 0-based.
        return lambda: 2 if (if_index - 1) in self.faults.down_interfaces else 1

    # -- dynamics -----------------------------------------------------------

    def _run_dynamics(self):
        while True:
            yield self.tick
            self._advance()

    def catch_up(self):
        """Replay every tick a lazy device has missed up to ``sim.now``.

        Deterministically equivalent to eager dynamics: the same number of
        ticks have elapsed by any given time, each consuming the same
        draws from the device's private RNG stream in the same order, so a
        read observes identical values either way.  No-op on eager
        devices (their background process already did the work).
        """
        if self._dynamics is not None:
            return
        target = int((self.sim.now - self.started_at) / self.tick)
        while self._ticks_done < target:
            self._advance()

    def _advance(self):
        """One dynamics tick (shared by the eager loop and lazy replay)."""
        self._ticks_done += 1
        # Re-read the profile each tick: scenarios may swap it at
        # runtime (e.g. rerouted traffic multiplying the rate).
        profile = self.profile
        if self.faults.cpu_runaway:
            self.cpu_load = self.rng.bounded_gauss(97.0, 2.0, 90.0, 100.0)
        else:
            self.cpu_load = self.rng.bounded_gauss(
                profile.cpu_mean, profile.cpu_sigma, 0.0, 100.0
            )
        self.load_avg = max(0.0, self.cpu_load / 25.0 + self.rng.gauss(0, 0.1))
        if self.faults.memory_leak:
            self.mem_available_kb = max(
                0, int(self.mem_available_kb - profile.mem_total_kb * 0.02)
            )
        else:
            self.mem_available_kb = int(self.rng.bounded_gauss(
                profile.mem_total_kb * 0.6,
                profile.mem_total_kb * 0.1,
                profile.mem_total_kb * 0.2,
                profile.mem_total_kb * 0.95,
            ))
        if self.faults.disk_filling:
            self.disk_free_kb = max(
                0, int(self.disk_free_kb - profile.disk_total_kb * 0.03)
            )
        self.proc_count = max(
            1, int(self.proc_count + self.rng.randint(-3, 3))
        )
        for index in range(profile.interface_count):
            if index in self.faults.down_interfaces:
                continue
            delta = self.rng.bounded_gauss(
                profile.traffic_rate * self.tick,
                profile.traffic_rate * self.tick * 0.3,
                0.0,
                profile.traffic_rate * self.tick * 3.0,
            )
            self.if_in_octets[index] += int(delta)
            self.if_out_octets[index] += int(delta * self.rng.uniform(0.5, 1.0))

    # -- fault injection -------------------------------------------------

    def inject_fault(self, kind, interface=None):
        """Switch a metric into a degraded regime.

        ``kind`` is one of ``"cpu_runaway"``, ``"memory_leak"``,
        ``"disk_filling"``, ``"interface_down"`` (needs ``interface``).
        """
        self.catch_up()  # regime switches apply from a caught-up state
        if kind == "cpu_runaway":
            self.faults.cpu_runaway = True
        elif kind == "memory_leak":
            self.faults.memory_leak = True
        elif kind == "disk_filling":
            self.faults.disk_filling = True
        elif kind == "interface_down":
            if interface is None:
                raise ValueError("interface_down needs an interface index")
            if not 0 <= interface < self.profile.interface_count:
                raise ValueError("interface %r out of range" % interface)
            self.faults.down_interfaces.add(interface)
        else:
            raise ValueError("unknown fault kind %r" % kind)

    def clear_fault(self, kind, interface=None):
        """Return a metric to its healthy regime."""
        self.catch_up()
        if kind == "cpu_runaway":
            self.faults.cpu_runaway = False
        elif kind == "memory_leak":
            self.faults.memory_leak = False
            self.mem_available_kb = int(self.profile.mem_total_kb * 0.6)
        elif kind == "disk_filling":
            self.faults.disk_filling = False
            self.disk_free_kb = int(self.profile.disk_total_kb * 0.5)
        elif kind == "interface_down":
            self.faults.down_interfaces.discard(interface)
        else:
            raise ValueError("unknown fault kind %r" % kind)

    def stop(self):
        """Halt the background dynamics process (lets ``sim.run()`` drain)."""
        if self._dynamics is not None:
            self._dynamics.kill()

    @property
    def name(self):
        return self.host.name

    def __repr__(self):
        return "ManagedDevice(%r, profile=%r)" % (self.name, self.profile.name)
