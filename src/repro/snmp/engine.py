"""Device-side SNMP engine: answers GET / GETNEXT / GETBULK / SET.

The engine binds the ``"snmp"`` port on the device's host.  Handling a PDU
charges the device's CPU a small per-varbind cost (devices are cheap to
poll; the *management-side* costs come from the paper's Table 1 and are
charged by the collectors).  Responses travel back over the simulated
network to the requester's reply port.
"""

from repro.network.transport import DeliveryError, Message
from repro.snmp.oids import OID


class PduType:
    GET = "get"
    GETNEXT = "getnext"
    GETBULK = "getbulk"
    SET = "set"

    ALL = (GET, GETNEXT, GETBULK, SET)


class SnmpError:
    """Per-varbind error markers (subset of RFC 3416 semantics)."""

    NO_SUCH_OBJECT = "noSuchObject"
    END_OF_MIB = "endOfMibView"
    NOT_WRITABLE = "notWritable"
    BAD_VALUE = "badValue"


class VarBind:
    """An (oid, value) pair, optionally carrying an error marker."""

    __slots__ = ("oid", "value", "name", "error")

    def __init__(self, oid, value=None, name="", error=None):
        self.oid = OID(oid)
        self.value = value
        self.name = name
        self.error = error

    @property
    def ok(self):
        return self.error is None

    def __repr__(self):
        if self.error:
            return "VarBind(%s!%s)" % (self.oid, self.error)
        return "VarBind(%s=%r)" % (self.oid, self.value)


class SnmpRequest:
    """A request PDU.

    Args:
        pdu_type: one of :class:`PduType`.
        varbinds: list of :class:`VarBind` (values used only for SET).
        request_id: correlation id chosen by the client.
        reply_to: :class:`~repro.network.addressing.Address` for the response.
        max_repetitions: GETBULK repetition count.
        response_size_units: wire size of the response message; the client
            derives this from the management cost model so network ledgers
            match Table 1.
    """

    def __init__(
        self,
        pdu_type,
        varbinds,
        request_id,
        reply_to,
        max_repetitions=10,
        response_size_units=None,
    ):
        if pdu_type not in PduType.ALL:
            raise ValueError("unknown PDU type %r" % pdu_type)
        self.pdu_type = pdu_type
        self.varbinds = list(varbinds)
        self.request_id = request_id
        self.reply_to = reply_to
        self.max_repetitions = max_repetitions
        self.response_size_units = response_size_units

    def __repr__(self):
        return "SnmpRequest(%s, id=%s, n=%d)" % (
            self.pdu_type, self.request_id, len(self.varbinds),
        )


class SnmpResponse:
    """A response PDU mirroring the request id."""

    def __init__(self, request_id, varbinds, device_name):
        self.request_id = request_id
        self.varbinds = list(varbinds)
        self.device_name = device_name

    @property
    def ok(self):
        return all(varbind.ok for varbind in self.varbinds)

    def __repr__(self):
        return "SnmpResponse(id=%s, n=%d, ok=%s)" % (
            self.request_id, len(self.varbinds), self.ok,
        )


class SnmpEngine:
    """Binds a device's MIB to the network.

    Args:
        device: the :class:`~repro.snmp.device.ManagedDevice` served.
        transport: the network transport.
        cpu_cost_per_varbind: device CPU units charged per varbind handled.
        port: port name to bind (default ``"snmp"``).
    """

    PORT = "snmp"

    def __init__(self, device, transport, cpu_cost_per_varbind=0.2, port=PORT):
        self.device = device
        self.transport = transport
        self.sim = device.sim
        self.cpu_cost_per_varbind = cpu_cost_per_varbind
        self.port = port
        self.pdus_handled = 0
        device.host.bind(port, self._on_message)

    def _on_message(self, message):
        request = message.payload
        if not isinstance(request, SnmpRequest):
            return  # ignore junk traffic
        self.sim.spawn(
            self._handle(request),
            name="snmp@%s#%s" % (self.device.name, request.request_id),
        )

    def _handle(self, request):
        cpu_units = self.cpu_cost_per_varbind * max(1, len(request.varbinds))
        yield self.device.host.cpu.use(cpu_units, label="snmp-agent")
        # Lazy devices replay missed dynamics ticks before the read so
        # the response sees exactly the values an eager device would hold.
        self.device.catch_up()
        varbinds = self._evaluate(request)
        self.pdus_handled += 1
        size = request.response_size_units
        if size is None:
            size = 0.5 * len(varbinds)
        response = Message(
            sender=self.transport.address(self.device.host.name, self.port),
            dest=request.reply_to,
            payload=SnmpResponse(request.request_id, varbinds, self.device.name),
            size_units=size,
            protocol="snmp",
        )
        try:
            yield from self.transport.send_and_wait(response)
        except DeliveryError:
            pass  # UDP semantics: a lost response is the client's problem

    def _evaluate(self, request):
        mib = self.device.mib
        results = []
        if request.pdu_type == PduType.GET:
            for varbind in request.varbinds:
                obj = mib.get(varbind.oid)
                if obj is None:
                    results.append(VarBind(varbind.oid, error=SnmpError.NO_SUCH_OBJECT))
                else:
                    results.append(VarBind(obj.oid, obj.read(), obj.name))
        elif request.pdu_type == PduType.GETNEXT:
            for varbind in request.varbinds:
                obj = mib.get_next(varbind.oid)
                if obj is None:
                    results.append(VarBind(varbind.oid, error=SnmpError.END_OF_MIB))
                else:
                    results.append(VarBind(obj.oid, obj.read(), obj.name))
        elif request.pdu_type == PduType.GETBULK:
            for varbind in request.varbinds:
                cursor = varbind.oid
                for _ in range(request.max_repetitions):
                    obj = mib.get_next(cursor)
                    if obj is None:
                        results.append(VarBind(cursor, error=SnmpError.END_OF_MIB))
                        break
                    results.append(VarBind(obj.oid, obj.read(), obj.name))
                    cursor = obj.oid
        elif request.pdu_type == PduType.SET:
            for varbind in request.varbinds:
                obj = mib.get(varbind.oid)
                if obj is None:
                    results.append(VarBind(varbind.oid, error=SnmpError.NO_SUCH_OBJECT))
                    continue
                try:
                    obj.write(varbind.value)
                except PermissionError:
                    results.append(VarBind(varbind.oid, error=SnmpError.NOT_WRITABLE))
                else:
                    results.append(VarBind(obj.oid, obj.read(), obj.name))
        return results

    def __repr__(self):
        return "SnmpEngine(%s, handled=%d)" % (self.device.name, self.pdus_handled)
