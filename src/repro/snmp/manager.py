"""Manager-side SNMP client.

A :class:`SnmpClient` lives on a management host (a collector agent's
container host or the centralized manager) and issues request PDUs to
device engines, correlating responses by request id.  All calls are
*process generators*: use ``yield from client.get(...)`` inside a
simulation process.
"""

import itertools

from repro.network.transport import Message
from repro.snmp.engine import PduType, SnmpRequest, VarBind


class SnmpTimeout(Exception):
    """No response arrived within the timeout."""

    def __init__(self, device_name, request_id):
        super().__init__("SNMP timeout polling %s (request %s)" % (
            device_name, request_id))
        self.device_name = device_name
        self.request_id = request_id


class _Timeout:
    """Internal sentinel delivered when the timer beats the response."""

    __slots__ = ()


_TIMEOUT = _Timeout()


class SnmpClient:
    """Issues SNMP PDUs from a management host.

    Args:
        host: the host the client runs on (its NIC pays send costs).
        transport: the network transport.
        timeout: seconds to wait for each response.
        client_id: distinguishes multiple clients on one host.
    """

    _ids = itertools.count(1)

    def __init__(self, host, transport, timeout=5.0, client_id=None):
        self.host = host
        self.transport = transport
        self.sim = host.sim
        self.timeout = timeout
        if client_id is None:
            client_id = "snmpc%d" % next(SnmpClient._ids)
        self.port = "snmp-reply/" + client_id
        self.reply_address = transport.address(host.name, self.port)
        self._request_ids = itertools.count(1)
        self._pending = {}
        self.requests_sent = 0
        self.timeouts = 0
        host.bind(self.port, self._on_reply)

    def _on_reply(self, message):
        response = message.payload
        event = self._pending.pop(response.request_id, None)
        if event is not None and not event.triggered:
            event.trigger(response)

    def _expire(self, request_id):
        event = self._pending.pop(request_id, None)
        if event is not None and not event.triggered:
            event.trigger(_TIMEOUT)

    def request(
        self,
        device_name,
        pdu_type,
        varbinds,
        request_size_units=None,
        response_size_units=None,
        max_repetitions=10,
    ):
        """Send one PDU and wait for its response (process generator).

        Returns the :class:`~repro.snmp.engine.SnmpResponse`; raises
        :class:`SnmpTimeout` if the device never answers (down host, etc.).
        """
        request_id = "%s-%d" % (self.port, next(self._request_ids))
        request = SnmpRequest(
            pdu_type,
            varbinds,
            request_id,
            self.reply_address,
            max_repetitions=max_repetitions,
            response_size_units=response_size_units,
        )
        if request_size_units is None:
            request_size_units = 0.2 * max(1, len(request.varbinds))
        message = Message(
            sender=self.transport.address(self.host.name, self.port),
            dest=self.transport.address(device_name, "snmp"),
            payload=request,
            size_units=request_size_units,
            protocol="snmp",
        )
        event = self.sim.event("snmp-pending/" + request_id)
        self._pending[request_id] = event
        self.requests_sent += 1
        self.sim.schedule(self.timeout, self._expire, (request_id,))
        self.transport.post(message)  # delivery failures surface as timeout
        outcome = yield event
        if isinstance(outcome, _Timeout):
            self.timeouts += 1
            raise SnmpTimeout(device_name, request_id)
        return outcome

    def get(self, device_name, oids, **kwargs):
        """GET a list of scalar OIDs (process generator)."""
        varbinds = [VarBind(oid) for oid in oids]
        response = yield from self.request(device_name, PduType.GET, varbinds, **kwargs)
        return response

    def get_next(self, device_name, oids, **kwargs):
        varbinds = [VarBind(oid) for oid in oids]
        response = yield from self.request(
            device_name, PduType.GETNEXT, varbinds, **kwargs)
        return response

    def get_bulk(self, device_name, oids, max_repetitions=10, **kwargs):
        varbinds = [VarBind(oid) for oid in oids]
        response = yield from self.request(
            device_name, PduType.GETBULK, varbinds,
            max_repetitions=max_repetitions, **kwargs)
        return response

    def set(self, device_name, assignments, **kwargs):
        """SET ``{oid: value}`` assignments (process generator)."""
        varbinds = [VarBind(oid, value) for oid, value in assignments.items()]
        response = yield from self.request(device_name, PduType.SET, varbinds, **kwargs)
        return response

    def walk(self, device_name, prefix, max_steps=256, **kwargs):
        """Walk a subtree via repeated GETNEXT (process generator).

        Returns the list of in-subtree varbinds.
        """
        from repro.snmp.oids import OID

        prefix = OID(prefix)
        cursor = prefix
        collected = []
        for _ in range(max_steps):
            response = yield from self.get_next(device_name, [cursor], **kwargs)
            varbind = response.varbinds[0]
            if not varbind.ok or not prefix.is_prefix_of(varbind.oid):
                break
            collected.append(varbind)
            cursor = varbind.oid
        return collected

    def get_table(self, device_name, column_prefixes, max_steps=256,
                  **kwargs):
        """Walk several table columns and assemble rows by index.

        Args:
            device_name: device to query.
            column_prefixes: mapping of column name -> OID prefix (the
                per-row index is whatever follows the prefix).

        Returns ``{index_tuple: {column_name: value}}``; rows missing a
        column simply lack that key (sparse tables are normal in SNMP).
        """
        from repro.snmp.oids import OID

        rows = {}
        for column_name, prefix in column_prefixes.items():
            prefix = OID(prefix)
            varbinds = yield from self.walk(
                device_name, prefix, max_steps=max_steps, **kwargs)
            for varbind in varbinds:
                index = varbind.oid.parts[len(prefix.parts):]
                rows.setdefault(index, {})[column_name] = varbind.value
        return rows

    def __repr__(self):
        return "SnmpClient(%s, sent=%d, timeouts=%d)" % (
            self.host.name, self.requests_sent, self.timeouts,
        )
