"""MIB trees and the standard managed-object set.

A :class:`MibTree` is an ordered registry of :class:`MibObject` entries.
Objects can be static values or callables evaluated at read time, which is
how devices expose *live* metrics (the callable reads the device's current
state).  GETNEXT walks the tree in OID order, exactly like real SNMP.

:class:`StandardMib` collects the OIDs the paper's workload polls -- host
performance (CPU, memory), storage (disk, processes) and interface traffic
-- loosely modelled on MIB-2 / HOST-RESOURCES / UCD-SNMP subtrees.
"""

import bisect

from repro.snmp.oids import OID


class MibObject:
    """One managed object: an OID bound to a value or a value provider.

    Args:
        oid: the object's OID.
        name: symbolic name ("sysUpTime").
        value: static value, or a zero-argument callable producing it.
        writable: whether SET is allowed.
        units: free-form unit tag for reports ("percent", "kB", "octets").
    """

    def __init__(self, oid, name, value, writable=False, units=""):
        self.oid = OID(oid)
        self.name = name
        self._value = value
        self.writable = writable
        self.units = units

    def read(self):
        if callable(self._value):
            return self._value()
        return self._value

    def write(self, value):
        if not self.writable:
            raise PermissionError("object %s (%s) is read-only" % (self.oid, self.name))
        if callable(self._value):
            raise PermissionError("object %s is computed; cannot SET" % self.oid)
        self._value = value

    def __repr__(self):
        return "MibObject(%s=%s)" % (self.name, self.oid)


class MibTree:
    """An OID-ordered collection of :class:`MibObject`."""

    def __init__(self):
        self._objects = {}
        self._order = []

    def register(self, mib_object):
        """Add an object; OIDs must be unique."""
        oid = mib_object.oid
        if oid in self._objects:
            raise ValueError("OID %s already registered" % oid)
        self._objects[oid] = mib_object
        bisect.insort(self._order, oid)
        return mib_object

    def register_scalar(self, oid, name, value, writable=False, units=""):
        return self.register(MibObject(oid, name, value, writable, units))

    def __contains__(self, oid):
        return OID(oid) in self._objects

    def __len__(self):
        return len(self._objects)

    def get(self, oid):
        """The object at exactly ``oid``, or None."""
        return self._objects.get(OID(oid))

    def get_next(self, oid):
        """The first object with OID strictly greater than ``oid``, or None."""
        index = bisect.bisect_right(self._order, OID(oid))
        if index >= len(self._order):
            return None
        return self._objects[self._order[index]]

    def walk(self, prefix):
        """All objects within the subtree rooted at ``prefix``, in order."""
        prefix = OID(prefix)
        index = bisect.bisect_left(self._order, prefix)
        results = []
        while index < len(self._order):
            oid = self._order[index]
            if not prefix.is_prefix_of(oid):
                break
            results.append(self._objects[oid])
            index += 1
        return results

    def oids(self):
        return list(self._order)


class StandardMib:
    """Well-known OIDs used by the reproduction's workloads.

    Grouped the way the paper's Figure 3 splits analysis work: processing
    load (X), disk space (W-disk), interface traffic (W-traffic), plus
    bookkeeping scalars.
    """

    # MIB-2 system group
    SYS_DESCR = OID("1.3.6.1.2.1.1.1.0")
    SYS_UPTIME = OID("1.3.6.1.2.1.1.3.0")
    SYS_NAME = OID("1.3.6.1.2.1.1.5.0")

    # Performance (UCD-SNMP-ish + HOST-RESOURCES-ish)
    CPU_LOAD = OID("1.3.6.1.4.1.2021.11.9.0")        # percent busy
    MEM_AVAIL = OID("1.3.6.1.4.1.2021.4.6.0")        # kB available
    LOAD_AVG_1MIN = OID("1.3.6.1.4.1.2021.10.1.3.1")

    # Storage / processes
    DISK_FREE = OID("1.3.6.1.4.1.2021.9.1.7.1")      # kB free on /
    DISK_TOTAL = OID("1.3.6.1.4.1.2021.9.1.6.1")
    PROC_COUNT = OID("1.3.6.1.2.1.25.1.6.0")         # hrSystemProcesses

    # Interfaces (MIB-2 interfaces table; index appended per interface)
    IF_COUNT = OID("1.3.6.1.2.1.2.1.0")              # ifNumber
    IF_IN_OCTETS = OID("1.3.6.1.2.1.2.2.1.10")       # .index
    IF_OUT_OCTETS = OID("1.3.6.1.2.1.2.2.1.16")      # .index
    IF_OPER_STATUS = OID("1.3.6.1.2.1.2.2.1.8")      # .index (1=up, 2=down)

    # Process table (hrSWRunName-ish; index appended per slot)
    PROC_TABLE = OID("1.3.6.1.2.1.25.4.2.1.2")       # .index

    #: OID groups by request type (paper section 4.1's example workload):
    #: A = station performance, B = storage & processes, C = traffic.
    GROUP_PERFORMANCE = "performance"
    GROUP_STORAGE = "storage"
    GROUP_TRAFFIC = "traffic"

    @classmethod
    def group_oids(cls, group, interface_count=2, process_slots=3):
        """The scalar OIDs polled for a request of the given group."""
        if group == cls.GROUP_PERFORMANCE:
            return [cls.CPU_LOAD, cls.MEM_AVAIL, cls.LOAD_AVG_1MIN]
        if group == cls.GROUP_STORAGE:
            oids = [cls.DISK_FREE, cls.DISK_TOTAL, cls.PROC_COUNT]
            oids.extend(cls.PROC_TABLE.child(i + 1) for i in range(process_slots))
            return oids
        if group == cls.GROUP_TRAFFIC:
            oids = [cls.IF_COUNT]
            for index in range(1, interface_count + 1):
                oids.append(cls.IF_IN_OCTETS.child(index))
                oids.append(cls.IF_OUT_OCTETS.child(index))
                oids.append(cls.IF_OPER_STATUS.child(index))
            return oids
        raise ValueError("unknown OID group %r" % group)


#: Short alias used throughout the codebase.
std = StandardMib
