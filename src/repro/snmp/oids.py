"""Object identifiers.

An :class:`OID` is an immutable sequence of non-negative integers with the
ordering SNMP uses for GETNEXT traversal (lexicographic on the component
tuple).
"""


class OID:
    """An SNMP object identifier.

    Construct from a dotted string, another OID, or an iterable of ints::

        OID("1.3.6.1.2.1.1.3.0")
        OID((1, 3, 6, 1))
        OID("1.3.6").child(1, 2)
    """

    __slots__ = ("parts",)

    def __init__(self, value):
        if isinstance(value, OID):
            parts = value.parts
        elif isinstance(value, str):
            if not value:
                raise ValueError("empty OID string")
            try:
                parts = tuple(int(piece) for piece in value.split("."))
            except ValueError:
                raise ValueError("malformed OID string %r" % value) from None
        else:
            parts = tuple(int(piece) for piece in value)
        if not parts:
            raise ValueError("OID must have at least one component")
        if any(piece < 0 for piece in parts):
            raise ValueError("OID components must be non-negative: %r" % (parts,))
        object.__setattr__(self, "parts", parts)

    def __setattr__(self, name, value):
        raise AttributeError("OID is immutable")

    def child(self, *suffix):
        """This OID extended with extra components."""
        return OID(self.parts + tuple(int(piece) for piece in suffix))

    def is_prefix_of(self, other):
        """True when ``other`` lies in this OID's subtree (or equals it)."""
        other = OID(other)
        return other.parts[: len(self.parts)] == self.parts

    @property
    def parent(self):
        if len(self.parts) == 1:
            raise ValueError("root OID has no parent")
        return OID(self.parts[:-1])

    def __len__(self):
        return len(self.parts)

    def __getitem__(self, index):
        return self.parts[index]

    def __eq__(self, other):
        return isinstance(other, OID) and other.parts == self.parts

    def __lt__(self, other):
        return self.parts < OID(other).parts

    def __le__(self, other):
        return self.parts <= OID(other).parts

    def __gt__(self, other):
        return self.parts > OID(other).parts

    def __ge__(self, other):
        return self.parts >= OID(other).parts

    def __hash__(self):
        return hash(self.parts)

    def __str__(self):
        return ".".join(str(piece) for piece in self.parts)

    def __repr__(self):
        return "OID(%r)" % str(self)
