"""Asynchronous SNMP trap channel.

Devices push :class:`Trap` notifications toward a :class:`TrapSink` bound
on a management host; subscribers (collector agents, the interface grid)
receive them via callbacks.  Traps complement polling: the stock rule base
treats a trap as a high-priority fact.
"""

import itertools

from repro.network.transport import Message


class Trap:
    """An asynchronous device notification."""

    _ids = itertools.count(1)

    def __init__(self, device_name, kind, detail=None, severity="warning"):
        self.id = next(Trap._ids)
        self.device_name = device_name
        self.kind = kind
        self.detail = detail if detail is not None else {}
        self.severity = severity
        self.raised_at = None

    def __repr__(self):
        return "Trap(#%d %s/%s, %s)" % (
            self.id, self.device_name, self.kind, self.severity,
        )


class TrapSink:
    """Receives traps on a management host and fans them out.

    Args:
        host: management host the sink binds on.
        transport: the network transport.
        port: bound port name.
    """

    PORT = "snmp-trap"
    TRAP_SIZE_UNITS = 0.3

    def __init__(self, host, transport, port=PORT):
        self.host = host
        self.transport = transport
        self.sim = host.sim
        self.port = port
        self.address = transport.address(host.name, port)
        self.received = []
        self._subscribers = []
        host.bind(port, self._on_message)

    def subscribe(self, callback):
        """Register ``callback(trap)`` for every future trap."""
        self._subscribers.append(callback)

    def _on_message(self, message):
        trap = message.payload
        if not isinstance(trap, Trap):
            return
        trap.raised_at = self.sim.now
        self.received.append(trap)
        for callback in self._subscribers:
            callback(trap)

    def emit_from(self, device, kind, detail=None, severity="warning"):
        """Send a trap from ``device`` to this sink (fire-and-forget)."""
        trap = Trap(device.name, kind, detail, severity)
        message = Message(
            sender=self.transport.address(device.host.name, "snmp"),
            dest=self.address,
            payload=trap,
            size_units=self.TRAP_SIZE_UNITS,
            protocol="snmp-trap",
        )
        self.transport.post(message)
        return trap

    def __repr__(self):
        return "TrapSink(%s, received=%d)" % (self.host.name, len(self.received))
