"""Workload generation, scenarios and fault injection for experiments."""

from repro.workloads.generator import (
    RequestMix,
    WorkloadGenerator,
    goals_for_mix,
)
from repro.workloads.scenarios import (
    Scenario,
    chaos_scenario,
    crossover_scenarios,
    paper_scenario,
    scaling_scenario,
)
from repro.workloads.faults import (
    FaultEvent,
    FaultPlan,
    apply_fault_plan,
    chaos_plan,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "RequestMix",
    "Scenario",
    "WorkloadGenerator",
    "apply_fault_plan",
    "chaos_plan",
    "chaos_scenario",
    "crossover_scenarios",
    "goals_for_mix",
    "paper_scenario",
    "scaling_scenario",
]
