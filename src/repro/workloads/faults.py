"""Fault-injection plans and the chaos harness.

Faults injected in experiments fall into three families:

* **device faults** -- a managed device's metrics enter a degraded regime
  (CPU runaway, memory leak, disk filling, interface down); the analysis
  rules are expected to *detect* these.
* **infrastructure faults** -- a management container or host is killed
  mid-run (``container_down`` / ``agent_down`` / ``host_down``); the
  processor-grid root is expected to *tolerate* these by re-dispatching
  jobs (bench X4) or -- with heartbeats enabled -- evicting the dead
  container within the heartbeat timeout.  ``host_down`` may carry
  ``clear_after`` to model a reboot (:meth:`Host.recover`).
* **network faults** -- ``link_loss_burst`` spikes a LAN/WAN loss rate for
  a while; the reliable channel is expected to retransmit through it.
  ``site_partition`` severs every inter-site link touching one site (its
  hosts stay up and keep talking over the LAN); ``site_partition_heal``
  restores it.  The federation mesh is expected to *detect* the partition
  within its heartbeat timeout, degrade the peer's devices to offline,
  and converge back after the heal.  ``host_partition`` cuts a split-brain
  *island*: the listed hosts keep talking to each other, everyone else
  keeps talking to each other, and only cross-boundary traffic drops
  (``host_partition_heal`` dissolves it).  The analyzer gossip mesh is
  expected to converge on a suspicion view inside each half and reconcile
  on heal (see :mod:`repro.core.gossip`).

``container_down`` kills exactly one container (its agents stop; the host
and its other containers stay up).  Killing the whole machine is
``host_down``.
"""


class FaultEvent:
    """One scheduled fault.

    Args:
        at: simulated time to fire.
        kind: device fault kind ("cpu_runaway", "memory_leak",
            "disk_filling", "interface_down"), "container_down",
            "agent_down", "host_down" or "link_loss_burst".
        target: device / container / agent / host name, a site name for
            "site_partition"/"site_partition_heal", a list/tuple of host
            names (the island) for "host_partition", or -- for
            "link_loss_burst" -- "wan" or a site name.
        interface: interface index ("interface_down" only).
        clear_after: optional duration after which the fault self-clears
            (device faults, "host_down" recovery, burst end, partition
            auto-heal).  Rejected for "container_down"/"agent_down":
            killed containers and agents do not resurrect; deploy a new
            one instead.  Rejected for "site_partition_heal"/
            "host_partition_heal": a heal is instantaneous.
        loss_rate: the burst loss probability ("link_loss_burst" only).
    """

    DEVICE_KINDS = ("cpu_runaway", "memory_leak", "disk_filling",
                    "interface_down")
    CONTAINER_DOWN = "container_down"
    AGENT_DOWN = "agent_down"
    HOST_DOWN = "host_down"
    LINK_LOSS_BURST = "link_loss_burst"
    SITE_PARTITION = "site_partition"
    SITE_PARTITION_HEAL = "site_partition_heal"
    HOST_PARTITION = "host_partition"
    HOST_PARTITION_HEAL = "host_partition_heal"
    INFRA_KINDS = (CONTAINER_DOWN, AGENT_DOWN, HOST_DOWN)
    NETWORK_KINDS = (LINK_LOSS_BURST, SITE_PARTITION, SITE_PARTITION_HEAL,
                     HOST_PARTITION, HOST_PARTITION_HEAL)
    KINDS = DEVICE_KINDS + INFRA_KINDS + NETWORK_KINDS

    def __init__(self, at, kind, target, interface=None, clear_after=None,
                 loss_rate=None):
        if kind not in self.KINDS:
            raise ValueError("unknown fault kind %r" % kind)
        if at < 0:
            raise ValueError("fault time must be >= 0")
        if interface is not None and kind != "interface_down":
            raise ValueError(
                "interface= only applies to interface_down, not %r" % kind)
        if clear_after is not None:
            if kind in (self.CONTAINER_DOWN, self.AGENT_DOWN):
                raise ValueError(
                    "%s does not support clear_after (killed containers/"
                    "agents do not resurrect)" % kind)
            if kind in (self.SITE_PARTITION_HEAL, self.HOST_PARTITION_HEAL):
                raise ValueError(
                    "%s does not support clear_after (a heal is "
                    "instantaneous; schedule another partition instead)"
                    % kind)
            if clear_after <= 0:
                raise ValueError("clear_after must be > 0")
        if kind == self.HOST_PARTITION:
            if not isinstance(target, (list, tuple, set, frozenset)) \
                    or not target:
                raise ValueError(
                    "host_partition target must be a non-empty list of "
                    "host names (the island)")
            target = tuple(sorted(target))
        if kind == self.LINK_LOSS_BURST:
            if loss_rate is None:
                raise ValueError("link_loss_burst requires loss_rate=")
            if not 0.0 <= loss_rate < 1.0:
                raise ValueError("loss_rate must be within [0, 1)")
        elif loss_rate is not None:
            raise ValueError(
                "loss_rate= only applies to link_loss_burst, not %r" % kind)
        self.at = at
        self.kind = kind
        self.target = target
        self.interface = interface
        self.clear_after = clear_after
        self.loss_rate = loss_rate

    def __repr__(self):
        return "FaultEvent(t=%g, %s -> %s)" % (self.at, self.kind, self.target)


class FaultPlan:
    """A list of fault events applied to a running system.

    The plan validates *kill-window coherence* on construction and on
    every :meth:`add`: two ``host_down`` events on the same host whose
    down-windows overlap must agree on when the host comes back.
    Overlapping windows with incompatible ``clear_after`` would race the
    scheduled :meth:`Host.recover` calls -- the earlier recovery would
    resurrect the host in the middle of the later window, silently
    turning a designed outage into a flap.  Sequential (non-overlapping)
    windows on the same host are fine: that is exactly the
    rolling-upgrade pattern.
    """

    def __init__(self, events=()):
        self.events = sorted(events, key=lambda event: event.at)
        self._validate_kill_windows(self.events)

    def add(self, event):
        self._validate_kill_windows(self.events + [event])
        self.events.append(event)
        self.events.sort(key=lambda item: item.at)
        return event

    @staticmethod
    def _validate_kill_windows(events):
        windows = {}  # host -> [(start, end_or_None)]
        for event in events:
            if event.kind != FaultEvent.HOST_DOWN:
                continue
            start = event.at
            end = None if event.clear_after is None \
                else event.at + event.clear_after
            for other_start, other_end in windows.get(event.target, ()):
                latest_start = max(start, other_start)
                earliest_end = min(
                    end if end is not None else float("inf"),
                    other_end if other_end is not None else float("inf"),
                )
                if latest_start >= earliest_end:
                    continue  # disjoint (or merely touching) windows
                if end != other_end:
                    raise ValueError(
                        "overlapping host_down windows on %r with "
                        "incompatible clear_after: [%g, %s) vs [%g, %s) -- "
                        "the earlier recovery would resurrect the host "
                        "inside the later window" % (
                            event.target,
                            other_start, _window_end(other_end),
                            start, _window_end(end)))
            windows.setdefault(event.target, []).append((start, end))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


def _window_end(end):
    return "inf" if end is None else "%g" % end


def chaos_plan(container="analysis-1", collector_host=None,
               burst_target="wan", burst_loss=0.05, burst_at=5.0,
               burst_duration=20.0, kill_at=8.0, host_down_at=12.0,
               host_down_duration=10.0):
    """The standard chaos mix: loss burst + container kill + host bounce.

    Exercises all three tolerance mechanisms at once: the reliable channel
    (burst), heartbeat eviction (container kill) and retransmission across
    an outage window (collector host down + recovery).  ``collector_host``
    is optional; without it the plan contains only the burst and the kill.
    """
    events = [
        FaultEvent(burst_at, FaultEvent.LINK_LOSS_BURST, burst_target,
                   loss_rate=burst_loss, clear_after=burst_duration),
        FaultEvent(kill_at, FaultEvent.CONTAINER_DOWN, container),
    ]
    if collector_host is not None:
        events.append(FaultEvent(
            host_down_at, FaultEvent.HOST_DOWN, collector_host,
            clear_after=host_down_duration,
        ))
    return FaultPlan(events)


def storage_blip_plan(storage_host, blip_at=20.0, blip_duration=4.0):
    """A transient storage-host outage aimed at the analyzer fetch window.

    The blip is short (a reboot, a failing switch port): shorter than one
    job timeout, long enough to swallow a QUERY_REF or its INFORM reply.
    Pre-retry analyzers returned a 0-record job from this; with bounded
    fetch retries the second attempt lands after the heal.
    """
    return FaultPlan([
        FaultEvent(blip_at, FaultEvent.HOST_DOWN, storage_host,
                   clear_after=blip_duration),
    ])


def dead_letter_heal_plan(dest_host, down_at=10.0, down_duration=30.0):
    """An outage long enough to exhaust retransmissions, then a heal.

    With default channel parameters (``ack_timeout=2``, ``backoff=2``,
    ``max_attempts=6``) a sender gives up after ~62s; pass a shorter
    ladder (e.g. ``max_attempts=4`` -> ~14s) so envelopes dead-letter
    *inside* ``down_duration`` and only a redelivery scheduler -- not a
    retransmission -- can get them across after the heal.
    """
    return FaultPlan([
        FaultEvent(down_at, FaultEvent.HOST_DOWN, dest_host,
                   clear_after=down_duration),
    ])


def site_partition_plan(site, partition_at=15.0, heal_after=25.0):
    """Sever one site from the rest of the mesh, then heal it.

    The window should comfortably exceed the mesh heartbeat timeout so
    detection (partition Finding, devices marked offline) is observable,
    and the run should extend well past the heal so redelivery drains
    parked envelopes back to ``classified == shipped``.
    """
    return FaultPlan([
        FaultEvent(partition_at, FaultEvent.SITE_PARTITION, site,
                   clear_after=heal_after),
    ])


def split_brain_plan(island_hosts, partition_at=15.0, heal_after=30.0):
    """Cut a split-brain island (e.g. the root's host plus half the
    analyzer hosts) out of the network, then heal it.

    Both halves stay internally healthy -- every host is ``up`` -- so
    only detection layered above the transport (gossip suspicion,
    heartbeat eviction) can observe the cut.  The window should exceed
    the gossip mesh's ``suspect_after + confirm_after`` so both halves
    converge on their suspicion views before the heal.
    """
    return FaultPlan([
        FaultEvent(partition_at, FaultEvent.HOST_PARTITION,
                   tuple(island_hosts), clear_after=heal_after),
    ])


def cascade_plan(hosts, start_at=10.0, stagger=6.0, down_duration=15.0):
    """Rolling host failures correlated with load: each host fails
    ``stagger`` after the previous one, so the down-windows *overlap* --
    at the cascade's peak several hosts are dark at once and the
    survivors absorb the load.  Windows on different hosts may overlap
    freely; the plan validator only rejects incoherent windows on the
    same host.
    """
    if stagger <= 0:
        raise ValueError("stagger must be > 0")
    return FaultPlan([
        FaultEvent(start_at + index * stagger, FaultEvent.HOST_DOWN, host,
                   clear_after=down_duration)
        for index, host in enumerate(hosts)
    ])


def rolling_upgrade_plan(hosts, start_at=10.0, wave_gap=None,
                         restart_duration=5.0, waves=1):
    """Staggered restart waves: each wave bounces every host once
    (``host_down`` + recovery models the reboot, as in the robustness
    scorecard), waiting for one restart to finish before the next
    begins -- the disciplined upgrade that never takes two hosts down
    together, in contrast to :func:`cascade_plan`.
    """
    if restart_duration <= 0:
        raise ValueError("restart_duration must be > 0")
    if waves < 1:
        raise ValueError("waves must be >= 1")
    if wave_gap is None:
        wave_gap = 2.0 * restart_duration
    if wave_gap <= restart_duration:
        raise ValueError(
            "wave_gap (%g) must exceed restart_duration (%g): the next "
            "restart must not begin until the previous host is back"
            % (wave_gap, restart_duration))
    events = []
    at = start_at
    for _ in range(waves):
        for host in hosts:
            events.append(FaultEvent(
                at, FaultEvent.HOST_DOWN, host,
                clear_after=restart_duration))
            at += wave_gap
    return FaultPlan(events)


def apply_fault_plan(system, plan):
    """Schedule every fault in ``plan`` on a built grid system.

    Device faults resolve against ``system.devices``; container faults
    against ``system.platform.containers``; agent faults against the
    platform's agent registry; host faults against ``system.network``;
    loss bursts against the WAN or a site LAN; partitions against a site.
    Unknown targets raise immediately (misconfigured experiments should
    fail loudly).
    """
    for event in plan:
        if event.kind == FaultEvent.CONTAINER_DOWN:
            if event.target not in system.platform.containers:
                raise KeyError("unknown container %r" % event.target)
            system.sim.schedule(
                event.at, _kill_container, (system, event.target),
            )
        elif event.kind == FaultEvent.AGENT_DOWN:
            if system.platform.agent(event.target) is None:
                raise KeyError("unknown agent %r" % event.target)
            system.sim.schedule(
                event.at, _kill_agent, (system, event.target),
            )
        elif event.kind == FaultEvent.HOST_DOWN:
            host = system.network.hosts.get(event.target)
            if host is None:
                raise KeyError("unknown host %r" % event.target)
            system.sim.schedule(event.at, host.fail, ())
            if event.clear_after is not None:
                system.sim.schedule(
                    event.at + event.clear_after, host.recover, ())
        elif event.kind in (FaultEvent.SITE_PARTITION,
                            FaultEvent.SITE_PARTITION_HEAL):
            if event.target not in system.network.sites:
                raise KeyError("unknown site %r" % event.target)
            if event.kind == FaultEvent.SITE_PARTITION:
                system.sim.schedule(
                    event.at, system.network.partition_site, (event.target,))
                if event.clear_after is not None:
                    system.sim.schedule(
                        event.at + event.clear_after,
                        system.network.heal_site, (event.target,))
            else:
                system.sim.schedule(
                    event.at, system.network.heal_site, (event.target,))
        elif event.kind == FaultEvent.HOST_PARTITION:
            unknown = set(event.target) - set(system.network.hosts)
            if unknown:
                raise KeyError("unknown hosts %s" % sorted(unknown))
            system.sim.schedule(
                event.at, system.network.partition_hosts, (event.target,))
            if event.clear_after is not None:
                system.sim.schedule(
                    event.at + event.clear_after,
                    system.network.heal_hosts, ())
        elif event.kind == FaultEvent.HOST_PARTITION_HEAL:
            system.sim.schedule(event.at, system.network.heal_hosts, ())
        elif event.kind == FaultEvent.LINK_LOSS_BURST:
            _resolve_link(system.network, event.target)  # fail loudly now
            system.sim.schedule(
                event.at, _start_loss_burst,
                (system, event.target, event.loss_rate, event.clear_after),
            )
        else:
            device = system.devices.get(event.target)
            if device is None:
                raise KeyError("unknown device %r" % event.target)
            system.sim.schedule(
                event.at, device.inject_fault, (event.kind, event.interface),
            )
            if event.clear_after is not None:
                system.sim.schedule(
                    event.at + event.clear_after,
                    device.clear_fault,
                    (event.kind, event.interface),
                )


def _kill_container(system, container_name):
    """Kill one container; the host (and its other containers) stay up."""
    container = system.platform.containers.get(container_name)
    if container is not None:
        container.shutdown()


def _kill_agent(system, agent_name):
    """Kill one agent; its container keeps running."""
    agent = system.platform.agent(agent_name)
    if agent is not None and agent.container is not None:
        agent.container.remove(agent)


def _resolve_link(network, target):
    """The link a burst targets: "wan" or a site name (-> its LAN)."""
    if target == "wan":
        return network.wan
    site = network.sites.get(target)
    if site is None:
        raise KeyError("unknown link target %r (use \"wan\" or a site name)"
                       % target)
    return site.lan


def _start_loss_burst(system, target, loss_rate, clear_after):
    """Swap in a lossier LinkSpec; restore the original when it clears.

    The spec object is *replaced*, never mutated: default LAN/WAN specs
    are shared module-level singletons, and traffic already in flight
    keeps the loss rate it was launched with.
    """
    from repro.network.topology import LinkSpec

    network = system.network
    original = _resolve_link(network, target)
    burst = LinkSpec(original.latency, original.bandwidth, loss_rate)
    _install_link(network, target, burst)
    if clear_after is not None:
        system.sim.schedule(
            clear_after, _install_link, (network, target, original))


def _install_link(network, target, spec):
    if target == "wan":
        network.wan = spec
    else:
        network.sites[target].lan = spec
