"""Fault-injection plans.

Two kinds of faults are injected in experiments:

* **device faults** -- a managed device's metrics enter a degraded regime
  (CPU runaway, memory leak, disk filling, interface down); the analysis
  rules are expected to *detect* these.
* **infrastructure faults** -- a management container is killed mid-run;
  the processor-grid root is expected to *tolerate* these by re-dispatching
  jobs (bench X4).
"""


class FaultEvent:
    """One scheduled fault.

    Args:
        at: simulated time to fire.
        kind: device fault kind ("cpu_runaway", "memory_leak",
            "disk_filling", "interface_down") or "container_down".
        target: device name or container name.
        interface: interface index for "interface_down".
        clear_after: optional duration after which the fault self-clears
            (device faults only).
    """

    DEVICE_KINDS = ("cpu_runaway", "memory_leak", "disk_filling",
                    "interface_down")
    CONTAINER_DOWN = "container_down"

    def __init__(self, at, kind, target, interface=None, clear_after=None):
        if kind not in self.DEVICE_KINDS and kind != self.CONTAINER_DOWN:
            raise ValueError("unknown fault kind %r" % kind)
        if at < 0:
            raise ValueError("fault time must be >= 0")
        self.at = at
        self.kind = kind
        self.target = target
        self.interface = interface
        self.clear_after = clear_after

    def __repr__(self):
        return "FaultEvent(t=%g, %s -> %s)" % (self.at, self.kind, self.target)


class FaultPlan:
    """A list of fault events applied to a running system."""

    def __init__(self, events=()):
        self.events = sorted(events, key=lambda event: event.at)

    def add(self, event):
        self.events.append(event)
        self.events.sort(key=lambda item: item.at)
        return event

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


def apply_fault_plan(system, plan):
    """Schedule every fault in ``plan`` on a built grid system.

    Device faults resolve against ``system.devices``; container faults
    against ``system.platform.containers``.  Unknown targets raise
    immediately (misconfigured experiments should fail loudly).
    """
    for event in plan:
        if event.kind == FaultEvent.CONTAINER_DOWN:
            if event.target not in system.platform.containers:
                raise KeyError("unknown container %r" % event.target)
            system.sim.schedule(
                event.at, _kill_container, (system, event.target),
            )
        else:
            device = system.devices.get(event.target)
            if device is None:
                raise KeyError("unknown device %r" % event.target)
            system.sim.schedule(
                event.at, device.inject_fault, (event.kind, event.interface),
            )
            if event.clear_after is not None:
                system.sim.schedule(
                    event.at + event.clear_after,
                    device.clear_fault,
                    (event.kind, event.interface),
                )


def _kill_container(system, container_name):
    container = system.platform.containers.get(container_name)
    if container is not None:
        container.shutdown()
        container.host.fail()
