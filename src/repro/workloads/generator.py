"""Collection-workload generation.

A workload is a set of :class:`~repro.core.records.CollectionGoal` objects.
:class:`RequestMix` describes *how many* requests of each type to issue;
:class:`WorkloadGenerator` turns a mix plus a device population into goals,
either deterministic (evenly spread, as the paper's evaluation) or
stochastic (Poisson-spaced polls for long-running monitoring scenarios).
"""

from repro.core.records import CollectionGoal
from repro.simkernel.rng import RngStream


class RequestMix:
    """How many requests of each type a scenario issues.

    The paper's evaluation mix is 10/10/10.
    """

    def __init__(self, type_a=10, type_b=10, type_c=10):
        if min(type_a, type_b, type_c) < 0:
            raise ValueError("request counts must be >= 0")
        self.counts = {"A": type_a, "B": type_b, "C": type_c}

    @property
    def total(self):
        return sum(self.counts.values())

    def scaled(self, factor):
        """The mix with every count multiplied (rounded) by ``factor``."""
        return RequestMix(*(max(0, round(self.counts[t] * factor))
                            for t in ("A", "B", "C")))

    def __getitem__(self, request_type):
        return self.counts[request_type]

    def __repr__(self):
        return "RequestMix(A=%d, B=%d, C=%d)" % (
            self.counts["A"], self.counts["B"], self.counts["C"],
        )


def goals_for_mix(mix, device_names, interval=1.0, stagger=0.1):
    """Deterministic goals: request *i* of each type polls device ``i mod n``.

    This is the paper-evaluation layout (the same one
    ``GridManagementSystem.make_paper_goals`` builds), exposed standalone
    for baseline and sweep drivers.
    """
    if not device_names:
        raise ValueError("need at least one device")
    device_names = sorted(device_names)
    goals = []
    for type_index, request_type in enumerate(("A", "B", "C")):
        for poll_index in range(mix[request_type]):
            goals.append(CollectionGoal(
                device_names[poll_index % len(device_names)],
                request_type,
                count=1,
                interval=interval,
                start_after=stagger * (poll_index * 3 + type_index),
            ))
    return goals


class WorkloadGenerator:
    """Stochastic workload generation for monitoring-style scenarios."""

    def __init__(self, seed=0, stream_name="workload"):
        self.rng = RngStream(seed, stream_name)

    def poisson_goals(self, mix, device_names, horizon, rate=None):
        """Goals whose start times are exponentially spaced over a horizon.

        Args:
            mix: :class:`RequestMix` -- total requests per type.
            device_names: polled devices (chosen uniformly per request).
            horizon: all goals start within [0, horizon).
            rate: arrival rate; default chosen so the expected arrivals in
                the horizon match the mix totals.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        device_names = sorted(device_names)
        goals = []
        for request_type in ("A", "B", "C"):
            count = mix[request_type]
            if count == 0:
                continue
            type_rate = rate if rate is not None else count / horizon
            clock = 0.0
            for _ in range(count):
                clock += self.rng.expovariate(type_rate)
                goals.append(CollectionGoal(
                    self.rng.choice(device_names),
                    request_type,
                    count=1,
                    interval=1.0,
                    start_after=min(clock, horizon),
                ))
        goals.sort(key=lambda goal: goal.start_after)
        return goals

    def periodic_goals(self, device_names, polls_per_device, interval,
                       types=("A", "B", "C")):
        """Continuous monitoring: every device polled repeatedly per type."""
        goals = []
        for device_name in sorted(device_names):
            for type_index, request_type in enumerate(types):
                goals.append(CollectionGoal(
                    device_name,
                    request_type,
                    count=polls_per_device,
                    interval=interval,
                    start_after=self.rng.uniform(0, interval)
                    + 0.01 * type_index,
                ))
        return goals

    def diurnal_goals(self, mix, device_names, day_length,
                      peak_fraction=0.7, peak_start=0.25, peak_end=0.75,
                      spike_multiplier=1.0, spike_start=0.5,
                      spike_length=0.05):
        """A day/night pattern: most requests land in the busy window.

        Args:
            mix: total requests per type over the whole day.
            device_names: polled devices (round-robin per type).
            day_length: simulated seconds in one day.
            peak_fraction: share of requests inside the peak window.
            peak_start / peak_end: peak window as fractions of the day.
            spike_multiplier: flash-crowd factor.  1.0 (default) is the
                plain diurnal curve; above 1.0, ``(multiplier - 1) x``
                the mix's per-type count of *extra* requests lands
                uniformly inside the spike window -- traffic through
                that window is roughly ``spike_multiplier`` times the
                baseline.  The capacity-study knob for 10-100x crowds.
            spike_start / spike_length: spike window as fractions of the
                day (only consulted when ``spike_multiplier > 1``).

        Off-peak requests spread uniformly over the remaining hours.
        Useful for capacity studies: the grid must absorb the peak without
        provisioning for it all day.  At the default multiplier the spike
        branch draws **zero** RNG samples, so pre-existing diurnal runs
        replay byte-identically.
        """
        if day_length <= 0:
            raise ValueError("day_length must be positive")
        if not 0.0 <= peak_fraction <= 1.0:
            raise ValueError("peak_fraction must be within [0, 1]")
        if not 0.0 <= peak_start < peak_end <= 1.0:
            raise ValueError("peak window fractions out of order")
        if spike_multiplier < 1.0:
            raise ValueError("spike_multiplier must be >= 1")
        if spike_multiplier > 1.0:
            if not 0.0 <= spike_start < spike_start + spike_length <= 1.0:
                raise ValueError("spike window out of range")
        device_names = sorted(device_names)
        goals = []
        for request_type in ("A", "B", "C"):
            count = mix[request_type]
            peak_count = round(count * peak_fraction)
            for index in range(count):
                if index < peak_count:
                    start = self.rng.uniform(
                        peak_start * day_length, peak_end * day_length)
                else:
                    # uniform over the two off-peak segments
                    off = self.rng.uniform(
                        0, day_length * (1 - (peak_end - peak_start)))
                    start = off if off < peak_start * day_length else \
                        off + (peak_end - peak_start) * day_length
                goals.append(CollectionGoal(
                    device_names[index % len(device_names)],
                    request_type,
                    count=1,
                    interval=1.0,
                    start_after=start,
                ))
            if spike_multiplier > 1.0:
                extra = round(count * (spike_multiplier - 1.0))
                for index in range(extra):
                    start = self.rng.uniform(
                        spike_start * day_length,
                        (spike_start + spike_length) * day_length)
                    goals.append(CollectionGoal(
                        device_names[index % len(device_names)],
                        request_type,
                        count=1,
                        interval=1.0,
                        start_after=start,
                    ))
        goals.sort(key=lambda goal: goal.start_after)
        return goals
