"""Named experiment scenarios.

A :class:`Scenario` bundles a device population, a request mix and pacing
parameters; the experiment runners in :mod:`repro.evaluation.experiments`
and the benches execute scenarios against architecture specs.
"""

from repro.core.system import DeviceSpec
from repro.workloads.generator import RequestMix


class Scenario:
    """A reproducible experiment workload.

    ``fault_plan`` optionally attaches a
    :class:`~repro.workloads.faults.FaultPlan` so a scenario is a complete
    chaos experiment in one object (workload + failures); runners apply it
    with :func:`~repro.workloads.faults.apply_fault_plan` after build.
    """

    def __init__(self, name, devices, mix, interval=1.0, stagger=0.1,
                 description="", fault_plan=None):
        if not devices:
            raise ValueError("scenario needs at least one device")
        self.name = name
        self.devices = list(devices)
        self.mix = mix
        self.interval = interval
        self.stagger = stagger
        self.description = description
        self.fault_plan = fault_plan

    @property
    def total_requests(self):
        return self.mix.total

    def device_names(self):
        return [device.name for device in self.devices]

    def __repr__(self):
        return "Scenario(%r, devices=%d, requests=%d)" % (
            self.name, len(self.devices), self.total_requests,
        )


def _device_population(count, site_count=1):
    """A mixed device population spread over sites."""
    profiles = ("server", "router", "server", "switch")
    devices = []
    for index in range(count):
        site = "site%d" % (index % site_count + 1)
        devices.append(DeviceSpec(
            "dev%d" % (index + 1), profiles[index % len(profiles)], site,
        ))
    return devices


def paper_scenario(seed=0):
    """Section 4.1's evaluation: 3 devices, 10 requests of each type."""
    return Scenario(
        "paper-figure6",
        devices=_device_population(3),
        mix=RequestMix(10, 10, 10),
        description="10 requests of each type over 3 devices (Figure 6)",
    )


def scaling_scenario(device_count, requests_per_type, site_count=1):
    """Parametric scenario for the scalability sweep (X3)."""
    return Scenario(
        "scale-d%d-r%d" % (device_count, requests_per_type),
        devices=_device_population(device_count, site_count),
        mix=RequestMix(requests_per_type, requests_per_type, requests_per_type),
        description="%d devices, %d requests/type" % (
            device_count, requests_per_type,
        ),
    )


def chaos_scenario(requests_per_type=8, device_count=4, site_count=2):
    """A two-site workload for the chaos-fault harness.

    Cross-site WAN traffic is what loss bursts and the reliable channel
    act on; pair with a :class:`~repro.workloads.faults.FaultPlan` (e.g.
    :func:`~repro.workloads.faults.chaos_plan`) and
    ``GridTopologySpec(reliability=True, heartbeat_interval=...)``.
    """
    return Scenario(
        "chaos-d%d-r%d" % (device_count, requests_per_type),
        devices=_device_population(device_count, site_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="%d devices over %d sites under injected faults" % (
            device_count, site_count,
        ),
    )


def partition_scenario(site_count=4, devices_per_site=2,
                       requests_per_type=8, partitioned_site=None,
                       partition_at=15.0, heal_after=25.0):
    """A multi-site mesh workload with one site partitioned mid-run.

    The first entry in the scenario catalog of compound failures (ROADMAP
    item 4): ``site_count`` sites of ``devices_per_site`` devices each,
    with ``partitioned_site`` (default: the last site) severed at
    ``partition_at`` and healed ``heal_after`` later via the attached
    :attr:`Scenario.fault_plan`.  Pair with
    ``FederatedTopologySpec(mode=MESH, federation_reliability=True)`` --
    the mesh must detect the partition within its heartbeat timeout,
    degrade the severed site's devices to offline, and drain back to
    heal-complete afterwards.
    """
    from repro.workloads.faults import site_partition_plan

    if site_count < 2:
        raise ValueError("a partition needs at least 2 sites")
    if partitioned_site is None:
        partitioned_site = "site%d" % site_count
    return Scenario(
        "partition-s%d-d%d" % (site_count, devices_per_site),
        devices=_device_population(site_count * devices_per_site,
                                   site_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="%d sites, %s partitioned at t=%g for %gs" % (
            site_count, partitioned_site, partition_at, heal_after,
        ),
        fault_plan=site_partition_plan(
            partitioned_site, partition_at=partition_at,
            heal_after=heal_after,
        ),
    )


def crossover_scenarios(points=(1, 2, 5, 10, 20, 50), device_count=3):
    """Scenarios for the crossover sweep (X1): growing request volume."""
    return [
        Scenario(
            "crossover-r%d" % requests,
            devices=_device_population(device_count),
            mix=RequestMix(requests, requests, requests),
            description="%d requests/type" % requests,
        )
        for requests in points
    ]
