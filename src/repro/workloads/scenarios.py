"""Named experiment scenarios and the compound-failure catalog.

A :class:`Scenario` bundles a device population, a request mix and pacing
parameters; the experiment runners in :mod:`repro.evaluation.experiments`
and the benches execute scenarios against architecture specs.

The **scenario catalog** (:data:`SCENARIO_CATALOG`) adds declarative,
composable compound-failure experiments in the style of the smart-grid
MAS scenario libraries (blackout / storm / high-demand as named configs):
each catalog entry is a complete chaos experiment -- overlapping
:class:`~repro.workloads.faults.FaultEvent` windows, optional traffic
shaping on the diurnal generator, the
:class:`~repro.core.system.GridTopologySpec` overrides the scenario
needs, and the **invariant tier** the run is expected to uphold.  The
tier ladder (weakest to strongest):

========================================  ==================================
tier                                      guarantee asserted by its cell
========================================  ==================================
:data:`TIER_SILENT_LOSS`                  none -- the documented baseline
                                          failure mode (fire-and-forget
                                          transports lose records silently)
:data:`TIER_NO_SILENT_LOSS`               every loss is *accounted*:
                                          ``classified + dead >= shipped``
:data:`TIER_HEAL_COMPLETE`                after the faults clear and
                                          redelivery drains,
                                          ``classified == shipped``
:data:`TIER_DETECTION_SURVIVES`           heal-complete **plus** failure
                                          detection kept working with the
                                          root unreachable (gossip
                                          suspicion converged during the
                                          outage window)
========================================  ==================================

Every catalog scenario registers a cell in the
``tests/test_robustness_scenarios.py`` chaos matrix asserting exactly its
tier, and a gated row in ``BENCH_robustness.json``.
"""

from repro.core.system import DeviceSpec
from repro.workloads.faults import FaultPlan
from repro.workloads.generator import RequestMix, WorkloadGenerator

#: The invariant-tier ladder, weakest to strongest (see module docstring).
TIER_SILENT_LOSS = "silent-loss"
TIER_NO_SILENT_LOSS = "no-silent-loss"
TIER_HEAL_COMPLETE = "heal-complete"
TIER_DETECTION_SURVIVES = "detection-survives-root-outage"
INVARIANT_TIERS = (
    TIER_SILENT_LOSS,
    TIER_NO_SILENT_LOSS,
    TIER_HEAL_COMPLETE,
    TIER_DETECTION_SURVIVES,
)


class TrafficShape:
    """Declarative traffic shaping for a scenario: the diurnal curve plus
    an optional flash-crowd spike, mapped onto
    :meth:`~repro.workloads.generator.WorkloadGenerator.diurnal_goals`.

    Args:
        day_length: simulated seconds in the scenario's "day".
        peak_fraction / peak_start / peak_end: the diurnal busy window.
        spike_multiplier: flash-crowd factor (1.0 = plain diurnal curve;
            the catalog's ``flash_crowd`` uses 10-100x).
        spike_start / spike_length: spike window as day fractions.
    """

    def __init__(self, day_length, peak_fraction=0.7, peak_start=0.25,
                 peak_end=0.75, spike_multiplier=1.0, spike_start=0.5,
                 spike_length=0.05):
        if day_length <= 0:
            raise ValueError("day_length must be positive")
        self.day_length = day_length
        self.peak_fraction = peak_fraction
        self.peak_start = peak_start
        self.peak_end = peak_end
        self.spike_multiplier = spike_multiplier
        self.spike_start = spike_start
        self.spike_length = spike_length

    def goals(self, mix, device_names, seed=0):
        """Generate the shaped goals (deterministic under ``seed``)."""
        return WorkloadGenerator(seed=seed).diurnal_goals(
            mix, device_names, self.day_length,
            peak_fraction=self.peak_fraction,
            peak_start=self.peak_start,
            peak_end=self.peak_end,
            spike_multiplier=self.spike_multiplier,
            spike_start=self.spike_start,
            spike_length=self.spike_length,
        )

    def __repr__(self):
        return "TrafficShape(day=%g, spike=%gx)" % (
            self.day_length, self.spike_multiplier)


class Scenario:
    """A reproducible experiment workload.

    ``fault_plan`` optionally attaches a
    :class:`~repro.workloads.faults.FaultPlan` so a scenario is a complete
    chaos experiment in one object (workload + failures); runners apply it
    with :func:`~repro.workloads.faults.apply_fault_plan` after build.

    Catalog scenarios carry three further declarative pieces:

    * ``traffic`` -- a :class:`TrafficShape`; :meth:`build_goals` then
      generates the shaped diurnal workload instead of the evenly-paced
      default.
    * ``expected_tier`` -- the invariant tier (one of
      :data:`INVARIANT_TIERS`) this scenario's chaos-matrix cell asserts.
    * ``spec_overrides`` -- :class:`~repro.core.system.GridTopologySpec`
      keyword overrides the scenario requires (e.g. ``split_brain`` needs
      ``gossip=`` and a reliability ladder); runners and the
      ``repro-sim chaos`` drill merge these into the spec they build.
    """

    def __init__(self, name, devices, mix, interval=1.0, stagger=0.1,
                 description="", fault_plan=None, traffic=None,
                 expected_tier=None, spec_overrides=None):
        if not devices:
            raise ValueError("scenario needs at least one device")
        if expected_tier is not None and expected_tier not in INVARIANT_TIERS:
            raise ValueError(
                "unknown invariant tier %r (ladder: %s)"
                % (expected_tier, ", ".join(INVARIANT_TIERS)))
        self.name = name
        self.devices = list(devices)
        self.mix = mix
        self.interval = interval
        self.stagger = stagger
        self.description = description
        self.fault_plan = fault_plan
        self.traffic = traffic
        self.expected_tier = expected_tier
        self.spec_overrides = dict(spec_overrides or {})

    @property
    def total_requests(self):
        return self.mix.total

    def device_names(self):
        return [device.name for device in self.devices]

    def build_goals(self, seed=0):
        """The scenario's collection goals: shaped when ``traffic`` is
        declared, the evenly-paced paper layout otherwise."""
        from repro.workloads.generator import goals_for_mix

        if self.traffic is not None:
            return self.traffic.goals(
                self.mix, self.device_names(), seed=seed)
        return goals_for_mix(self.mix, self.device_names(),
                             interval=self.interval, stagger=self.stagger)

    def compose(self, other):
        """Overlay another scenario's failure modes onto this workload.

        Composition keeps *this* scenario's devices, mix, traffic shape
        and tier floor, merges both fault plans (re-validated, so
        incoherent overlapping kill windows are rejected at composition
        time, not at run time) and both spec-override dicts
        (conflicting overrides are rejected -- composition must not
        silently reconfigure the stack).  The composed expected tier is
        the *weaker* of the two: overlaying extra failures can only
        lower the guarantee.
        """
        if not isinstance(other, Scenario):
            raise TypeError("can only compose with another Scenario")
        mine = list(self.fault_plan) if self.fault_plan is not None else []
        theirs = list(other.fault_plan) if other.fault_plan is not None \
            else []
        merged_plan = FaultPlan(mine + theirs) if mine or theirs else None
        overrides = dict(self.spec_overrides)
        for key, value in other.spec_overrides.items():
            if key in overrides and overrides[key] != value:
                raise ValueError(
                    "conflicting spec override %r while composing %r x %r "
                    "(%r vs %r)" % (key, self.name, other.name,
                                    overrides[key], value))
            overrides[key] = value
        tiers = [tier for tier in (self.expected_tier, other.expected_tier)
                 if tier is not None]
        composed_tier = min(
            tiers, key=INVARIANT_TIERS.index) if tiers else None
        return Scenario(
            "%s+%s" % (self.name, other.name),
            devices=self.devices,
            mix=self.mix,
            interval=self.interval,
            stagger=self.stagger,
            description="%s overlaid with %s" % (
                self.description or self.name,
                other.description or other.name),
            fault_plan=merged_plan,
            traffic=self.traffic,
            expected_tier=composed_tier,
            spec_overrides=overrides,
        )

    def __repr__(self):
        return "Scenario(%r, devices=%d, requests=%d)" % (
            self.name, len(self.devices), self.total_requests,
        )


def _device_population(count, site_count=1):
    """A mixed device population spread over sites."""
    profiles = ("server", "router", "server", "switch")
    devices = []
    for index in range(count):
        site = "site%d" % (index % site_count + 1)
        devices.append(DeviceSpec(
            "dev%d" % (index + 1), profiles[index % len(profiles)], site,
        ))
    return devices


def paper_scenario(seed=0):
    """Section 4.1's evaluation: 3 devices, 10 requests of each type."""
    return Scenario(
        "paper-figure6",
        devices=_device_population(3),
        mix=RequestMix(10, 10, 10),
        description="10 requests of each type over 3 devices (Figure 6)",
    )


def scaling_scenario(device_count, requests_per_type, site_count=1):
    """Parametric scenario for the scalability sweep (X3)."""
    return Scenario(
        "scale-d%d-r%d" % (device_count, requests_per_type),
        devices=_device_population(device_count, site_count),
        mix=RequestMix(requests_per_type, requests_per_type, requests_per_type),
        description="%d devices, %d requests/type" % (
            device_count, requests_per_type,
        ),
    )


def chaos_scenario(requests_per_type=8, device_count=4, site_count=2):
    """A two-site workload for the chaos-fault harness.

    Cross-site WAN traffic is what loss bursts and the reliable channel
    act on; pair with a :class:`~repro.workloads.faults.FaultPlan` (e.g.
    :func:`~repro.workloads.faults.chaos_plan`) and
    ``GridTopologySpec(reliability=True, heartbeat_interval=...)``.
    """
    return Scenario(
        "chaos-d%d-r%d" % (device_count, requests_per_type),
        devices=_device_population(device_count, site_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="%d devices over %d sites under injected faults" % (
            device_count, site_count,
        ),
    )


def partition_scenario(site_count=4, devices_per_site=2,
                       requests_per_type=8, partitioned_site=None,
                       partition_at=15.0, heal_after=25.0):
    """A multi-site mesh workload with one site partitioned mid-run.

    The first entry in the scenario catalog of compound failures (ROADMAP
    item 4): ``site_count`` sites of ``devices_per_site`` devices each,
    with ``partitioned_site`` (default: the last site) severed at
    ``partition_at`` and healed ``heal_after`` later via the attached
    :attr:`Scenario.fault_plan`.  Pair with
    ``FederatedTopologySpec(mode=MESH, federation_reliability=True)`` --
    the mesh must detect the partition within its heartbeat timeout,
    degrade the severed site's devices to offline, and drain back to
    heal-complete afterwards.
    """
    from repro.workloads.faults import site_partition_plan

    if site_count < 2:
        raise ValueError("a partition needs at least 2 sites")
    if partitioned_site is None:
        partitioned_site = "site%d" % site_count
    return Scenario(
        "partition-s%d-d%d" % (site_count, devices_per_site),
        devices=_device_population(site_count * devices_per_site,
                                   site_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="%d sites, %s partitioned at t=%g for %gs" % (
            site_count, partitioned_site, partition_at, heal_after,
        ),
        fault_plan=site_partition_plan(
            partitioned_site, partition_at=partition_at,
            heal_after=heal_after,
        ),
    )


def crossover_scenarios(points=(1, 2, 5, 10, 20, 50), device_count=3):
    """Scenarios for the crossover sweep (X1): growing request volume."""
    return [
        Scenario(
            "crossover-r%d" % requests,
            devices=_device_population(device_count),
            mix=RequestMix(requests, requests, requests),
            description="%d requests/type" % requests,
        )
        for requests in points
    ]


# -- the compound-failure catalog -----------------------------------------
#
# Each constructor returns a complete declarative experiment; defaults
# target the chaos-matrix topology (collector host "col1", analysis hosts
# "inf1"/"inf2", storage host "stor") so the catalog, the matrix cells,
# the benches and the ``repro-sim chaos`` drill all run the same config.

#: Reliability ladder shared by the catalog's heal-complete scenarios:
#: fast retransmissions, give-up inside the outage window, redelivery
#: scheduler to drain dead letters after the heal.
CATALOG_RELIABILITY = {
    "ack_timeout": 1.0,
    "backoff": 2.0,
    "max_attempts": 4,
    "redelivery": True,
    "redelivery_interval": 2.0,
    "redelivery_max_interval": 8.0,
    "redelivery_give_up_after": None,
}


def split_brain_scenario(island_hosts=("stor", "inf1"), partition_at=15.0,
                         heal_after=30.0, requests_per_type=8,
                         device_count=4, gossip_interval=1.0):
    """The root's host plus half the analyzer hosts cut into an island.

    Both halves stay internally healthy; only the gossip mesh
    (``gossip=``) lets the severed analyzers converge on the root's
    death, elect a stand-in dispatcher and reconcile on heal -- the
    catalog's only :data:`TIER_DETECTION_SURVIVES` entry.
    """
    from repro.workloads.faults import split_brain_plan

    return Scenario(
        "split_brain",
        devices=_device_population(device_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="island %s severed at t=%g for %gs; gossip keeps "
                    "detection alive without the root" % (
                        ",".join(island_hosts), partition_at, heal_after),
        fault_plan=split_brain_plan(island_hosts,
                                    partition_at=partition_at,
                                    heal_after=heal_after),
        expected_tier=TIER_DETECTION_SURVIVES,
        spec_overrides={
            "reliability": dict(CATALOG_RELIABILITY),
            "heartbeat_interval": 2.0,
            "gossip": {"interval": gossip_interval},
        },
    )


def cascade_scenario(hosts=("inf1", "inf2"), start_at=10.0, stagger=6.0,
                     down_duration=15.0, requests_per_type=10,
                     device_count=4, day_length=60.0):
    """Rolling host failures correlated with load.

    The diurnal peak and the cascade window coincide: hosts start
    failing just as the busy window opens, with overlapping down-windows
    (``stagger < down_duration``), so the surviving analyzers absorb
    both the load and the re-dispatched jobs.  Heal-complete: every
    record is accounted once the cascade clears and redelivery drains.
    """
    from repro.workloads.faults import cascade_plan

    return Scenario(
        "cascade",
        devices=_device_population(device_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="%d hosts fail rolling from t=%g (stagger %gs, "
                    "down %gs) under the diurnal peak" % (
                        len(hosts), start_at, stagger, down_duration),
        fault_plan=cascade_plan(hosts, start_at=start_at, stagger=stagger,
                                down_duration=down_duration),
        traffic=TrafficShape(day_length=day_length, peak_fraction=0.7,
                             peak_start=0.15, peak_end=0.6),
        expected_tier=TIER_HEAL_COMPLETE,
        spec_overrides={
            "reliability": dict(CATALOG_RELIABILITY),
            "heartbeat_interval": 2.0,
        },
    )


def flash_crowd_scenario(spike_multiplier=20.0, requests_per_type=6,
                         device_count=4, day_length=60.0,
                         spike_start=0.4, spike_length=0.1):
    """A 10-100x request spike on the diurnal curve -- no faults at all.

    The failure mode is *overload*, not breakage: the grid must absorb
    the crowd without losing records (heal-complete -- with nothing to
    heal, that is plain completeness) while the benches gate how far the
    ship-stage p99 degrades relative to the unspiked curve
    (``flash_crowd_p99_ratio``).
    """
    if spike_multiplier < 10.0 or spike_multiplier > 100.0:
        raise ValueError(
            "flash_crowd spike_multiplier must be within [10, 100]")
    return Scenario(
        "flash_crowd",
        devices=_device_population(device_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="%gx flash crowd inside %.0f%% of the day" % (
            spike_multiplier, spike_length * 100),
        traffic=TrafficShape(day_length=day_length,
                             spike_multiplier=spike_multiplier,
                             spike_start=spike_start,
                             spike_length=spike_length),
        expected_tier=TIER_HEAL_COMPLETE,
        spec_overrides={
            "reliability": dict(CATALOG_RELIABILITY),
        },
    )


def rolling_upgrade_scenario(hosts=("inf1", "inf2"), start_at=10.0,
                             restart_duration=5.0, wave_gap=12.0, waves=1,
                             requests_per_type=8, device_count=4):
    """Staggered restart waves: every analysis host bounces once per
    wave, one at a time (the next restart waits for the previous host to
    come back).  The disciplined counterpart of :func:`cascade_scenario`:
    the grid re-dispatches around each bounce and ends heal-complete.
    """
    from repro.workloads.faults import rolling_upgrade_plan

    return Scenario(
        "rolling_upgrade",
        devices=_device_population(device_count),
        mix=RequestMix(requests_per_type, requests_per_type,
                       requests_per_type),
        description="%d hosts restarted in %d wave(s) of %gs bounces "
                    "from t=%g" % (len(hosts), waves, restart_duration,
                                   start_at),
        fault_plan=rolling_upgrade_plan(
            hosts, start_at=start_at, wave_gap=wave_gap,
            restart_duration=restart_duration, waves=waves),
        expected_tier=TIER_HEAL_COMPLETE,
        spec_overrides={
            "reliability": dict(CATALOG_RELIABILITY),
            "heartbeat_interval": 2.0,
        },
    )


#: The compound-failure catalog: name -> zero-config constructor.
SCENARIO_CATALOG = {
    "split_brain": split_brain_scenario,
    "cascade": cascade_scenario,
    "flash_crowd": flash_crowd_scenario,
    "rolling_upgrade": rolling_upgrade_scenario,
}


def catalog_scenario(name, **overrides):
    """Instantiate a catalog scenario by name (constructor kwargs pass
    through); unknown names list the catalog, loudly."""
    try:
        constructor = SCENARIO_CATALOG[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (catalog: %s)"
            % (name, ", ".join(sorted(SCENARIO_CATALOG)))) from None
    return constructor(**overrides)
