"""Shared fixtures for the test suite."""

import pytest

from repro.agents.platform import AgentPlatform
from repro.network.topology import Network
from repro.network.transport import Transport
from repro.simkernel.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1234)


@pytest.fixture
def network(sim):
    return Network(sim)


@pytest.fixture
def transport(network):
    return Transport(network)


@pytest.fixture
def platform(sim, network, transport):
    return AgentPlatform(sim, network, transport)


@pytest.fixture
def two_hosts(network):
    """Two hosts on one site, default capacities."""
    return (
        network.add_host("alpha", "site1"),
        network.add_host("beta", "site1"),
    )


def run_process(sim, generator, until=1000.0):
    """Spawn a process and run the simulation; returns the process."""
    process = sim.spawn(generator)
    sim.run(until=until)
    return process
