"""Unit tests for ACL messages, templates and ontologies."""

import pytest

from repro.agents.acl import (
    ACLMessage,
    AgentId,
    MessageTemplate,
    Performative,
)
from repro.agents import ontology


class TestAgentId:
    def test_equality_with_strings(self):
        assert AgentId("a") == AgentId("a")
        assert AgentId("a") == "a"
        assert AgentId("a") != AgentId("b")

    def test_immutable_and_hashable(self):
        aid = AgentId("a")
        with pytest.raises(AttributeError):
            aid.name = "b"
        assert hash(AgentId("a")) == hash(AgentId("a"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AgentId("")


class TestACLMessage:
    def test_basic_slots(self):
        message = ACLMessage(
            Performative.INFORM, "a", "b", content={"x": 1},
            ontology="data-ready", protocol="p",
        )
        assert message.sender == "a"
        assert message.receiver == "b"
        assert message.conversation_id.startswith("conv-")

    def test_unknown_performative_rejected(self):
        with pytest.raises(ValueError):
            ACLMessage("gossip", "a", "b")

    def test_reply_swaps_endpoints_and_keeps_conversation(self):
        message = ACLMessage(
            Performative.REQUEST, "a", "b", reply_with="rw-1",
            conversation_id="c-9", ontology="o",
        )
        reply = message.make_reply(Performative.AGREE, content=5)
        assert reply.sender == "b"
        assert reply.receiver == "a"
        assert reply.conversation_id == "c-9"
        assert reply.in_reply_to == "rw-1"
        assert reply.ontology == "o"

    def test_size_defaults_and_content_override(self):
        small = ACLMessage(Performative.INFORM, "a", "b")
        assert small.size_units == pytest.approx(0.3)

        class Sized:
            size_units = 7.5

        sized = ACLMessage(Performative.INFORM, "a", "b", content=Sized())
        assert sized.size_units == 7.5
        explicit = ACLMessage(Performative.INFORM, "a", "b", size_units=2.0)
        assert explicit.size_units == 2.0


class TestMessageTemplate:
    def _message(self, **kwargs):
        defaults = dict(
            performative=Performative.INFORM, sender="s", receiver="r",
        )
        defaults.update(kwargs)
        performative = defaults.pop("performative")
        sender = defaults.pop("sender")
        receiver = defaults.pop("receiver")
        return ACLMessage(performative, sender, receiver, **defaults)

    def test_empty_template_matches_everything(self):
        assert MessageTemplate().match(self._message())

    def test_each_slot_filters(self):
        message = self._message(
            ontology="o", protocol="p", conversation_id="c",
        )
        assert MessageTemplate(performative=Performative.INFORM).match(message)
        assert not MessageTemplate(performative=Performative.CFP).match(message)
        assert MessageTemplate(sender="s").match(message)
        assert not MessageTemplate(sender="other").match(message)
        assert MessageTemplate(ontology="o").match(message)
        assert not MessageTemplate(ontology="x").match(message)
        assert MessageTemplate(protocol="p").match(message)
        assert MessageTemplate(conversation_id="c").match(message)
        assert not MessageTemplate(conversation_id="z").match(message)

    def test_in_reply_to_matching(self):
        message = self._message(in_reply_to="q1")
        assert MessageTemplate(in_reply_to="q1").match(message)
        assert not MessageTemplate(in_reply_to="q2").match(message)

    def test_conjunction(self):
        message = self._message(ontology="o")
        template = MessageTemplate(
            performative=Performative.INFORM, ontology="o",
        )
        assert template.match(message)
        template = MessageTemplate(
            performative=Performative.INFORM, ontology="wrong",
        )
        assert not template.match(message)


class TestOntology:
    def test_validate_accepts_conforming(self):
        content = ontology.DATA_READY.make(
            dataset="ds-1", record_count=3, clusters=["a"],
            storage_host="h1",
        )
        assert content["dataset"] == "ds-1"

    def test_missing_field_rejected(self):
        with pytest.raises(ontology.OntologyError):
            ontology.DATA_READY.validate({"dataset": "x"})

    def test_wrong_type_rejected(self):
        with pytest.raises(ontology.OntologyError):
            ontology.DATA_READY.make(
                dataset="d", record_count="three", clusters=[],
                storage_host="h",
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(ontology.OntologyError):
            ontology.JOB_CFP.make(
                job_id="j", cluster="c", record_count=1,
                required_service="analysis", surprise=True,
            )

    def test_optional_fields_may_be_absent(self):
        content = ontology.ANALYSIS_JOB.make(
            job_id="j", dataset="d", cluster="c", record_count=1,
            level=1, storage_host="h",
        )
        assert "problems" not in content

    def test_non_dict_content_rejected(self):
        with pytest.raises(ontology.OntologyError):
            ontology.DATA_READY.validate("a string")

    def test_lookup_registry(self):
        assert ontology.lookup("data-ready") is ontology.DATA_READY
        with pytest.raises(KeyError):
            ontology.lookup("astrology")

    def test_unknown_optional_declaration_rejected(self):
        with pytest.raises(ValueError):
            ontology.Ontology("bad", fields={"a": str}, optional=("b",))
